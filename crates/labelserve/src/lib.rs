//! # labelserve — sharded, cache-aware distance-label serving
//!
//! The paper's headline application is build-once / query-many: after the
//! O(tw)-round construction, any s–t distance is answered from two node
//! labels alone. `distlabel` builds those labels; this crate **serves**
//! them — the query-side subsystem of the workspace's north star.
//!
//! * [`store`] — [`StoreBuilder`] compacts per-node [`distlabel::Label`]s
//!   (one heap `Vec` each) into a [`LabelStore`]: hub/distance arenas
//!   sharded by node-id range, hub ids globalized per connected component
//!   so cross-component pairs decode to [`twgraph::INF`] by construction.
//!   [`StoreLayout`] picks the physical form — `Flat` CSR lanes (fastest
//!   decode, 20 bytes/entry) or `Packed` delta-coded bit-packed block streams
//!   (~4–5x smaller, served by block-skip + in-block decode).
//! * [`file`](mod@crate::file) — store persistence: [`LabelStore::write_to`] serializes a
//!   store (either layout) into the `LWLSTOR1` container;
//!   [`LabelStore::open_mmap`] maps it read-only and serves packed shards
//!   zero-copy, so a store is built once and served by fresh processes.
//! * [`engine`] — [`QueryEngine`] answers single, paired, and batched
//!   queries over a shared store, with a per-shard LRU hot-pair cache
//!   ([`lru`]) and rayon-parallel batch execution. Thread-safe by
//!   construction; answers are bit-identical with the cache on or off.
//! * [`versioned`] — [`VersionedEngine`] serves epoch-stamped snapshots:
//!   queries keep flowing off epoch N while an updated labeling compacts
//!   into epoch N+1 (clean shards shared by `Arc`, hot cache pairs carried
//!   when both endpoints are untouched), then a single pointer swap
//!   publishes.
//! * [`workload`] — seeded, replayable skewed query streams for the
//!   scenario harness and the `serve` bench.
//! * [`error`] — typed [`ServeError`]s (unknown node, store-partitioning
//!   violations), consistent with the workspace Result sweep. A
//!   cross-component query is **not** an error: it answers the oracle's
//!   unreachable value, [`twgraph::INF`].
//!
//! ```
//! use distlabel::Label;
//! use labelserve::{QueryEngine, ServeConfig, StoreBuilder};
//!
//! // Two vertices on a weight-3 edge; hubs are global vertex ids.
//! let mut l0 = Label::new(0);
//! l0.merge(0, 0, 0);
//! l0.merge(1, 3, 3);
//! let mut l1 = Label::new(1);
//! l1.merge(1, 0, 0);
//!
//! let mut b = StoreBuilder::new(2);
//! b.add_component(&[l0, l1], &[0, 1]).unwrap();
//! let store = b.build(ServeConfig::default().shard_size).unwrap();
//! let engine = QueryEngine::new(store, ServeConfig::default());
//! assert_eq!(engine.distance(0, 1).unwrap(), 3);
//! assert_eq!(engine.batch(&[(0, 1), (1, 1)]).unwrap(), vec![3, 0]);
//! ```

pub mod engine;
pub mod error;
pub mod file;
pub mod lru;
mod packed;
pub mod store;
pub mod versioned;
pub mod workload;

pub use engine::{CacheStats, QueryEngine, ServeConfig};
pub use error::ServeError;
pub use file::StoreFileError;
pub use lru::Lru;
pub use store::{LabelStore, StoreBuilder, StoreLayout};
pub use versioned::{Epoch, PublishStats, VersionedEngine};
pub use workload::{seeded_queries, WorkloadSpec};
