//! The graph families themselves.

use crate::ugraph::{UGraph, UGraphBuilder};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Path on `n` vertices (treewidth 1, diameter n−1).
pub fn path(n: usize) -> UGraph {
    assert!(n >= 1);
    UGraph::from_edges(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
}

/// Cycle on `n ≥ 3` vertices (treewidth 2, diameter ⌊n/2⌋).
pub fn cycle(n: usize) -> UGraph {
    assert!(n >= 3);
    UGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// `rows × cols` grid (treewidth min(rows, cols), diameter rows+cols−2).
pub fn grid(rows: usize, cols: usize) -> UGraph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = UGraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// The `k`-banded path: vertices 0..n, edge {i, j} iff |i−j| ≤ k.
/// Treewidth exactly k (for n ≥ k+1), diameter ⌈(n−1)/k⌉ — the family the
/// D-scaling experiments use, since D = Θ(n/k) can be made large at fixed τ.
pub fn banded_path(n: usize, k: usize) -> UGraph {
    assert!(k >= 1);
    let mut b = UGraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..(i + k + 1).min(n) {
            b.add_edge(i as u32, j as u32);
        }
    }
    b.build()
}

/// Random `k`-tree on `n ≥ k+1` vertices: start from a (k+1)-clique and
/// attach each new vertex to a uniformly random existing k-clique.
/// Treewidth is exactly k (for n ≥ k+2); diameter is typically Θ(log n).
pub fn ktree(n: usize, k: usize, seed: u64) -> UGraph {
    assert!(n >= k + 1, "ktree needs n ≥ k+1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = UGraphBuilder::new(n);
    // Seed clique.
    for i in 0..=k {
        for j in i + 1..=k {
            b.add_edge(i as u32, j as u32);
        }
    }
    // All k-subsets of the seed clique are attachment cliques.
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let seed_vertices: Vec<u32> = (0..=k as u32).collect();
    for skip in 0..=k {
        let mut c = seed_vertices.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let attach = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &attach {
            b.add_edge(v as u32, u);
        }
        // New k-cliques: v plus each (k−1)-subset of `attach`.
        for skip in 0..attach.len() {
            let mut c = attach.clone();
            c[skip] = v as u32;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    b.build()
}

/// Random connected partial `k`-tree: a [`ktree`] with each non-backbone
/// edge kept independently with probability `keep_prob`. The attachment
/// backbone (one edge per added vertex, plus a seed-clique spanning path)
/// is always kept, so the result is connected. Treewidth ≤ k.
pub fn partial_ktree(n: usize, k: usize, keep_prob: f64, seed: u64) -> UGraph {
    assert!((0.0..=1.0).contains(&keep_prob));
    assert!(n >= k + 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = UGraphBuilder::new(n);
    for i in 0..k {
        b.add_edge(i as u32, i as u32 + 1); // spanning path through the seed clique
    }
    for i in 0..=k {
        for j in i + 1..=k {
            if j != i + 1 && rng.gen_bool(keep_prob) {
                b.add_edge(i as u32, j as u32);
            }
        }
    }
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let seed_vertices: Vec<u32> = (0..=k as u32).collect();
    for skip in 0..=k {
        let mut c = seed_vertices.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let attach = cliques[rng.gen_range(0..cliques.len())].clone();
        // Keep one backbone edge unconditionally for connectivity.
        let backbone = *attach.choose(&mut rng).unwrap();
        b.add_edge(v as u32, backbone);
        for &u in &attach {
            if u != backbone && rng.gen_bool(keep_prob) {
                b.add_edge(v as u32, u);
            }
        }
        for skip in 0..attach.len() {
            let mut c = attach.clone();
            c[skip] = v as u32;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    b.build()
}

/// Uniform random recursive tree on `n` vertices (treewidth 1).
pub fn random_tree(n: usize, seed: u64) -> UGraph {
    assert!(n >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = UGraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_edge(v as u32, p as u32);
    }
    b.build()
}

/// Erdős–Rényi G(n, p) — the *un*structured control family (treewidth is
/// typically Θ(n) once p ≫ 1/n).
pub fn gnp(n: usize, p: f64, seed: u64) -> UGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = UGraphBuilder::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            if rng.gen_bool(p) {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// The \[ACK16\]-flavoured bit-gadget family: constant diameter, logarithmic
/// treewidth (paper §1.2 uses such instances to separate girth from
/// diameter). Layout with `m = 2^bits` pair vertices per side:
///
/// * `a_0..a_{m-1}` and `b_0..b_{m-1}` — the two "word" sides;
/// * bit vertices `x_j` / `x̄_j` for each bit position `j`;
/// * one hub `c` adjacent to every bit vertex.
///
/// `a_i` (resp. `b_i`) connects to `x_j` if bit `j` of `i` is set, else to
/// `x̄_j`. Removing the `2·bits + 1` bit/hub vertices isolates everything, so
/// treewidth ≤ 2·bits + 1, while the diameter is ≤ 4.
pub fn bit_gadget(bits: usize) -> UGraph {
    assert!(bits >= 1 && bits < 20);
    let m = 1usize << bits;
    let a0 = 0u32;
    let b0 = m as u32;
    let x0 = 2 * m as u32; // x_j at x0 + 2j, x̄_j at x0 + 2j + 1
    let hub = x0 + 2 * bits as u32;
    let n = hub as usize + 1;
    let mut b = UGraphBuilder::new(n);
    for j in 0..bits as u32 {
        b.add_edge(hub, x0 + 2 * j);
        b.add_edge(hub, x0 + 2 * j + 1);
    }
    for i in 0..m {
        for j in 0..bits {
            let bitv = if (i >> j) & 1 == 1 {
                x0 + 2 * j as u32
            } else {
                x0 + 2 * j as u32 + 1
            };
            b.add_edge(a0 + i as u32, bitv);
            b.add_edge(b0 + i as u32, bitv);
        }
    }
    b.build()
}

/// Random bipartite graph with banded structure: left vertices `0..nl`,
/// right vertices `nl..nl+nr`; left `i` may connect to right `j` only when
/// `|i·nr/nl − j| ≤ band`, each allowed edge kept with probability `p`, and
/// a deterministic backbone keeps the graph connected. Low treewidth
/// (≤ 2·band + 2) because it embeds in a banded path.
///
/// Returns the graph and the side assignment (`true` = left).
pub fn bipartite_banded(
    nl: usize,
    nr: usize,
    band: usize,
    p: f64,
    seed: u64,
) -> (UGraph, Vec<bool>) {
    assert!(nl >= 1 && nr >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = nl + nr;
    let mut b = UGraphBuilder::new(n);
    let right = |j: usize| (nl + j) as u32;
    for i in 0..nl {
        let center = (i * nr / nl).min(nr - 1);
        let lo = center.saturating_sub(band);
        let hi = (center + band).min(nr - 1);
        // Zigzag backbone keeps the whole graph connected: left i and
        // left i+1 share the right vertex at i's center.
        b.add_edge(i as u32, right(center));
        if i + 1 < nl {
            b.add_edge((i + 1) as u32, right(center));
        }
        for j in lo..=hi {
            if rng.gen_bool(p) {
                b.add_edge(i as u32, right(j));
            }
        }
    }
    // Attach any right vertex that ended up isolated.
    let g0 = b.clone().build();
    for j in 0..nr {
        if g0.degree(right(j)) == 0 {
            let i = (j * nl / nr).min(nl - 1);
            b.add_edge(i as u32, right(j));
        }
    }
    let mut side = vec![false; n];
    for s in side.iter_mut().take(nl) {
        *s = true;
    }
    (b.build(), side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{diameter_exact, is_connected};
    use crate::tw::{elimination_width, min_degree_order};

    #[test]
    fn banded_path_params() {
        let g = banded_path(20, 3);
        assert!(is_connected(&g));
        assert_eq!(elimination_width(&g, &min_degree_order(&g)), 3);
        assert_eq!(diameter_exact(&g), (20 - 1 + 2) / 3); // ⌈19/3⌉ = 7
    }

    #[test]
    fn ktree_width_is_k() {
        for k in 1..=4 {
            let g = ktree(40, k, 11 + k as u64);
            assert!(is_connected(&g));
            let w = elimination_width(&g, &min_degree_order(&g));
            assert_eq!(w, k, "k-tree width must equal k (k = {k})");
        }
    }

    #[test]
    fn partial_ktree_connected_and_bounded() {
        for seed in 0..5 {
            let g = partial_ktree(60, 3, 0.6, seed);
            assert!(is_connected(&g), "seed {seed}");
            let w = elimination_width(&g, &min_degree_order(&g));
            assert!(w <= 3, "width {w} exceeds k");
        }
    }

    #[test]
    fn grid_properties() {
        let g = grid(3, 5);
        assert_eq!(g.n(), 15);
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), 6);
        let w = elimination_width(&g, &min_degree_order(&g));
        assert!((3..=4).contains(&w));
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(50, 3);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 49);
        assert_eq!(elimination_width(&g, &min_degree_order(&g)), 1);
    }

    #[test]
    fn bit_gadget_shape() {
        let bits = 4;
        let g = bit_gadget(bits);
        assert!(is_connected(&g));
        assert!(diameter_exact(&g) <= 4);
        // Width bounded by 2·bits + 1 (delete bit vertices + hub).
        let w = elimination_width(&g, &min_degree_order(&g));
        assert!(w <= 2 * bits + 1, "width {w}");
        // and n is exponential in bits: separation family's point.
        assert_eq!(g.n(), 2 * (1 << bits) + 2 * bits + 1);
    }

    #[test]
    fn bipartite_banded_is_bipartite() {
        let (g, side) = bipartite_banded(30, 30, 2, 0.5, 9);
        assert!(is_connected(&g));
        for (u, v) in g.edges() {
            assert_ne!(side[u as usize], side[v as usize], "edge within one side");
        }
    }

    #[test]
    fn cycle_and_path_degenerate_sizes() {
        assert_eq!(path(1).n(), 1);
        assert_eq!(cycle(3).m(), 3);
    }

    #[test]
    fn gnp_determinism() {
        assert_eq!(gnp(20, 0.2, 5), gnp(20, 0.2, 5));
    }
}
