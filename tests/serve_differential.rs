//! The serve-vs-oracle differential suite: `labelserve::QueryEngine`
//! answers against the centralized APSP oracle (`baselines::oracles`
//! Dijkstra rows) on every cell of the scenario matrix — exhaustive pairs
//! for n ≤ 200, a seeded sample otherwise — plus the cross-component ∞
//! semantics and the cache on/off identity on live corpus stores.
//!
//! The scenario matrix (`scenario_matrix::matrix_serve`) runs the same
//! comparison through the distributed label build; this suite pins the
//! serving layer in isolation (centralized build), so a failure here
//! localizes to compaction/sharding/caching rather than the CONGEST path.

use lowtw::labelserve::{self, QueryEngine, ServeConfig, ServeError, StoreBuilder, StoreLayout};
use lowtw::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenarios::{corpus, runner, split_components, Scenario};
use twgraph::INF;

/// Build a serving engine for one scenario the way the harness does —
/// split components, label each (centralized), compact — with shard/cache
/// parameters small enough to exercise multi-shard layouts and eviction.
fn engine_for(sc: &Scenario, cache_capacity: usize, layout: StoreLayout) -> QueryEngine {
    let g = sc.graph();
    let inst = sc.instance();
    let parts = split_components(&g, &inst);
    let mut builder = StoreBuilder::new(g.n());
    for (ci, part) in parts.iter().enumerate() {
        if part.graph.n() == 1 {
            builder.add_singleton(part.old_of[0]).unwrap();
            continue;
        }
        let out = runner::decompose_part(part, sc.t0, sc.seed, ci)
            .unwrap_or_else(|e| panic!("{}: decomposition failed: {e}", sc.name));
        let labels = distlabel::build_labels_centralized(&part.inst, &out.td, &out.info);
        builder.add_component(&labels, &part.old_of).unwrap();
    }
    let cfg = ServeConfig {
        shard_size: (g.n() / 5).max(1),
        cache_capacity,
        layout,
    };
    QueryEngine::new(builder.build_layout(cfg.shard_size, layout).unwrap(), cfg)
}

/// Exhaustive (n ≤ 200) or seeded-sample comparison of one engine against
/// per-source Dijkstra rows; returns the number of verified pairs.
fn check_against_oracle(sc: &Scenario, engine: &QueryEngine) -> usize {
    let inst = sc.instance();
    let n = engine.store().n();
    let sources: Vec<u32> = if n <= 200 {
        (0..n as u32).collect()
    } else {
        let mut rng = SmallRng::seed_from_u64(sc.seed ^ 0xD1FF);
        (0..24).map(|_| rng.gen_range(0..n as u32)).collect()
    };
    let mut checked = 0;
    for &u in &sources {
        let oracle = baselines::sssp_oracle(&inst, u);
        let row: Vec<(u32, u32)> = (0..n as u32).map(|v| (u, v)).collect();
        let got = engine.batch(&row).unwrap();
        for (v, &d) in got.iter().enumerate() {
            assert_eq!(d, oracle[v], "{}: serve({u} → {v}) != oracle", sc.name);
            checked += 1;
        }
    }
    checked
}

#[test]
fn serve_matches_apsp_oracle_on_every_corpus_cell() {
    // Alternate store layouts across cells so both the flat SoA arena and
    // the packed block arena face the oracle (the packed==flat corpus
    // differential lives in tests/packed_differential.rs).
    for (i, sc) in corpus().into_iter().enumerate() {
        let layout = if i % 2 == 0 {
            StoreLayout::Flat
        } else {
            StoreLayout::Packed
        };
        let engine = engine_for(&sc, 64, layout);
        let checked = check_against_oracle(&sc, &engine);
        assert!(
            checked >= engine.store().n(),
            "{}: nothing verified",
            sc.name
        );
        assert!(
            engine.store().shard_count() >= 4,
            "{}: sharding not exercised",
            sc.name
        );
    }
}

#[test]
fn cross_component_pairs_answer_infinity() {
    let sc = corpus()
        .into_iter()
        .find(|s| s.family.tag() == "multi_component")
        .expect("corpus lost its multi_component scenario");
    // The packed layout must route cross-component pairs to ∞ exactly like
    // the flat one; serve the stress case through the compressed store.
    let engine = engine_for(&sc, 64, StoreLayout::Packed);
    let store = engine.store();
    assert!(store.components() >= 4, "multi_component became connected");
    let n = store.n() as u32;
    let mut cross = 0u64;
    for s in 0..n {
        for t in 0..n {
            if store.comp_of(s).unwrap() != store.comp_of(t).unwrap() {
                assert_eq!(engine.distance(s, t).unwrap(), INF, "({s}, {t})");
                cross += 1;
            }
        }
    }
    assert!(cross > 0, "no cross-component pair exercised");
}

#[test]
fn sampled_mode_on_a_large_graph() {
    // n > 200 flips the suite (and the serve pipeline) into sampled mode;
    // verify it against full Dijkstra rows on a session-built engine.
    let n = 600;
    let g = twgraph::gen::partial_ktree(n, 2, 0.7, 9);
    let inst = twgraph::gen::with_random_weights(&g, 40, 9);
    let session = Session::decompose(&g, 3, 9).unwrap();
    let engine = session
        .serve(
            &inst,
            ServeConfig {
                shard_size: 128,
                cache_capacity: 256,
                ..ServeConfig::default()
            },
        )
        .unwrap();
    let mut rng = SmallRng::seed_from_u64(0x5A);
    for _ in 0..12 {
        let u = rng.gen_range(0..n as u32);
        let oracle = baselines::sssp_oracle(&inst, u);
        let row: Vec<(u32, u32)> = (0..n as u32).map(|v| (u, v)).collect();
        assert_eq!(engine.batch(&row).unwrap(), oracle, "source {u}");
    }
    assert_eq!(
        engine.distance(n as u32, 0),
        Err(ServeError::UnknownNode { node: n as u32, n })
    );
}

#[test]
fn cache_toggle_is_invisible_on_corpus_stores() {
    for sc in corpus().into_iter().take(4) {
        let cached = engine_for(&sc, 64, StoreLayout::Flat);
        let raw = engine_for(&sc, 0, StoreLayout::Flat);
        let qs = labelserve::seeded_queries(
            cached.store().n(),
            &labelserve::WorkloadSpec {
                queries: 2_000,
                hot_pairs: 16,
                hot_fraction: 0.8,
            },
            sc.seed,
        );
        assert_eq!(
            cached.batch(&qs).unwrap(),
            raw.batch(&qs).unwrap(),
            "{}: cache changed answers",
            sc.name
        );
        assert!(cached.stats().hits > 0, "{}: cache never hit", sc.name);
        assert_eq!(raw.stats(), labelserve::CacheStats::default());
    }
}
