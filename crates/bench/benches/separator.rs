//! Criterion: the centralized `Sep` kernel (Lemma 1's workhorse) across
//! graph families and treewidths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treedec::sep::sep_doubling;
use treedec::SepConfig;

fn bench_sep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sep_doubling");
    group.sample_size(10);
    for (name, g, t0) in [
        ("banded_k2_n512", twgraph::gen::banded_path(512, 2), 3u64),
        ("ktree_k3_n512", twgraph::gen::ktree(512, 3, 1), 4),
        ("grid_8x64", twgraph::gen::grid(8, 64), 9),
    ] {
        let n = g.n();
        let cfg = SepConfig::practical(n);
        let members = vec![true; n];
        let mu = vec![1u64; n];
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(5);
                sep_doubling(g, &members, &mu, t0, &cfg, &mut rng)
                    .expect("mincut invariant")
                    .separator
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose_centralized");
    group.sample_size(10);
    for n in [256usize, 512] {
        let g = twgraph::gen::banded_path(n, 2);
        let cfg = SepConfig::practical(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(3);
                treedec::decompose_centralized(g, 3, &cfg, &mut rng)
                    .unwrap()
                    .td
                    .width()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sep, bench_decompose);
criterion_main!(benches);
