//! The `tables` driver: the per-claim paper tables (see
//! `docs/EXPERIMENTS.md` for the experiment map), one lab variant per
//! table. Each function prints its human-readable table exactly as the
//! old `tables` bin did and records every charged quantity as a
//! deterministic gate metric keyed `<row-label>/<metric>`.

use super::RowBuilder;
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use crate::{fmt, ratio, table};
use congest_sim::{Network, NetworkConfig};
use lowtw::Session;
use lowtw::{baselines, bmatch, distlabel, girth, stateful_walks, treedec, twgraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treedec::sep::SepPath;
use treedec::SepConfig;

pub fn run(trial: &Trial) -> TrialRow {
    let mut row = RowBuilder::new(trial);
    match trial.variant.as_str() {
        "e1" => e1_headline(&mut row),
        "e2" => e2_separator(&mut row),
        "e3" => e3_decomposition(&mut row),
        "e4" => e4_labeling(&mut row),
        "e5" => e5_sssp(&mut row),
        "e6" => e6_cdl_q(&mut row),
        "e7" => e7_matching(&mut row),
        "e8" => e8_girth(&mut row),
        "e9" => e9_primitives(&mut row),
        "a1" => a1_pa_ablation(&mut row),
        "a2" => a2_pair_sampling(&mut row),
        "a3" => a3_constants(&mut row),
        other => panic!("unknown tables variant {other:?}"),
    }
    row.finish()
}

/// Stable numeric code of a separator path for exact gating.
fn path_code(p: &SepPath) -> u64 {
    match p {
        SepPath::Small => 0,
        SepPath::Roots(_) => 1,
        SepPath::Cuts => 2,
        SepPath::Union => 3,
    }
}

/// E1 — the headline table of §1.2: measured rounds of the three
/// pipelines on one family as n grows.
fn e1_headline(row: &mut RowBuilder) {
    let mut rows = Vec::new();
    for &n in &[128usize, 256, 512] {
        let g = twgraph::gen::partial_ktree(n, 3, 0.7, 1);
        let d = twgraph::alg::diameter_exact(&g);
        let inst = twgraph::gen::with_random_weights(&g, 50, 1);
        let (session, td_rounds) = Session::decompose_distributed(&g, 4, 1).unwrap();
        let (labels, dl_rounds) = session.labels_distributed(&inst).unwrap();
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, q_rounds) = distlabel::sssp_distributed(&mut net, &labels, 0).unwrap();
        let directed = twgraph::gen::random_orientation(&g, 50, 0.4, 1);
        let dl2 = session.labels(&directed);
        let mut net2 = Network::new(g.clone(), NetworkConfig::default());
        let (_, girth_rounds) =
            girth::girth_directed_distributed(&mut net2, &directed, &dl2).unwrap();
        row.det(format!("n{n}/diameter"), d as u64);
        row.det(format!("n{n}/treedec_rounds"), td_rounds);
        row.det(format!("n{n}/dl_rounds"), dl_rounds);
        row.det(format!("n{n}/sssp_query_rounds"), q_rounds);
        row.det(format!("n{n}/girth_dir_rounds"), girth_rounds);
        rows.push((
            vec![
                n.to_string(),
                d.to_string(),
                fmt(td_rounds),
                fmt(dl_rounds),
                fmt(q_rounds),
                fmt(girth_rounds),
            ],
            serde_json::json!({"exp": "e1", "n": n, "td": td_rounds, "dl": dl_rounds}),
        ));
    }
    table(
        "E1 headline (partial 3-trees): rounds of decomposition / labeling / SSSP query / directed girth",
        &["n", "D", "treedec", "DL", "SSSP-q", "girth-dir"],
        &rows,
    );
}

/// E2 — Lemma 1: separator size vs the O(t²) bound, balance, and the
/// distributed cost.
fn e2_separator(row: &mut RowBuilder) {
    use treedec::sep::sep_doubling;
    let mut rows = Vec::new();
    for (name, g, t0) in [
        ("banded_k2", twgraph::gen::banded_path(512, 2), 3u64),
        ("banded_k4", twgraph::gen::banded_path(512, 4), 5),
        ("ktree_k3", twgraph::gen::ktree(512, 3, 2), 4),
        ("grid_8x64", twgraph::gen::grid(8, 64), 9),
    ] {
        let n = g.n();
        let cfg = SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(7);
        let members = vec![true; n];
        let mu = vec![1u64; n];
        let out = sep_doubling(&g, &members, &mu, t0, &cfg, &mut rng).expect("mincut invariant");
        row.det(format!("{name}/sep"), out.separator.len() as u64);
        row.det(format!("{name}/bound"), cfg.size_bound(out.t_used) as u64);
        row.det(format!("{name}/t_used"), out.t_used);
        row.det(format!("{name}/path"), path_code(&out.path));
        rows.push((
            vec![
                name.to_string(),
                n.to_string(),
                out.t_used.to_string(),
                out.separator.len().to_string(),
                cfg.size_bound(out.t_used).to_string(),
                format!("{}", path_code(&out.path)),
            ],
            serde_json::json!({"exp": "e2", "family": name, "sep": out.separator.len()}),
        ));
    }
    table(
        "E2 Lemma 1: separator size ≤ O(t²) bound (centralized quality)",
        &["family", "n", "t", "|S|", "bound", "path"],
        &rows,
    );
}

/// E3 — Theorem 1: width / (τ² log n), depth / log n, rounds scaling.
fn e3_decomposition(row: &mut RowBuilder) {
    let mut rows = Vec::new();
    for (k, n) in [(2usize, 256usize), (2, 512), (2, 1024), (4, 512)] {
        let g = twgraph::gen::banded_path(n, k);
        let d = twgraph::alg::diameter_exact(&g);
        let (session, rounds) = Session::decompose_distributed(&g, k as u64 + 1, 3).unwrap();
        let stats = session.td.stats();
        let logn = (n as f64).ln();
        let key = format!("k{k}_n{n}");
        row.det(format!("{key}/diameter"), d as u64);
        row.det(format!("{key}/width"), stats.width as u64);
        row.det(format!("{key}/depth"), stats.depth as u64);
        row.det(format!("{key}/rounds"), rounds);
        row.info(
            format!("{key}/width_norm"),
            stats.width as f64 / (k as f64 * k as f64 * logn),
        );
        row.info(format!("{key}/depth_norm"), stats.depth as f64 / logn);
        rows.push((
            vec![
                format!("banded(k={k})"),
                n.to_string(),
                d.to_string(),
                stats.width.to_string(),
                format!("{:.2}", stats.width as f64 / (k as f64 * k as f64 * logn)),
                stats.depth.to_string(),
                format!("{:.2}", stats.depth as f64 / logn),
                fmt(rounds),
            ],
            serde_json::json!({"exp": "e3", "n": n, "width": stats.width, "depth": stats.depth}),
        ));
    }
    table(
        "E3 Theorem 1: decomposition width/(τ²ln n), depth/ln n, distributed rounds",
        &[
            "family",
            "n",
            "D",
            "width",
            "w/(τ²ln n)",
            "depth",
            "dep/ln n",
            "rounds",
        ],
        &rows,
    );
}

/// E4 — Theorem 2: label sizes vs O(τ² log² n) and construction rounds.
fn e4_labeling(row: &mut RowBuilder) {
    let mut rows = Vec::new();
    for &n in &[128usize, 256, 512] {
        let k = 3usize;
        let g = twgraph::gen::partial_ktree(n, k, 0.7, 5);
        let inst = twgraph::gen::with_random_weights(&g, 30, 5);
        let session = Session::decompose(&g, k as u64 + 1, 5).unwrap();
        let (labels, rounds) = session.labels_distributed(&inst).unwrap();
        let max_w = labels.iter().map(|l| l.words()).max().unwrap() as u64;
        let avg_w: f64 = labels.iter().map(|l| l.words() as f64).sum::<f64>() / labels.len() as f64;
        let log2n = (n as f64).log2();
        // Exactness spot check.
        let truth = twgraph::alg::dijkstra(&inst, 0).dist;
        let ok = (0..n).all(|v| decode(&labels[0], &labels[v]) == truth[v]);
        assert!(ok, "decoder must be exact");
        row.det(format!("n{n}/max_words"), max_w);
        row.det(format!("n{n}/rounds"), rounds);
        row.info(format!("n{n}/avg_words"), avg_w);
        row.info(
            format!("n{n}/max_norm"),
            max_w as f64 / (k as f64 * k as f64 * log2n * log2n),
        );
        rows.push((
            vec![
                n.to_string(),
                format!("{avg_w:.0}"),
                max_w.to_string(),
                format!(
                    "{:.2}",
                    max_w as f64 / (k as f64 * k as f64 * log2n * log2n)
                ),
                fmt(rounds),
                "exact".into(),
            ],
            serde_json::json!({"exp": "e4", "n": n, "max_words": max_w}),
        ));
    }
    table(
        "E4 Theorem 2: label size (words) vs τ²log²n and construction rounds",
        &[
            "n",
            "avg|la|",
            "max|la|",
            "max/(τ²log²n)",
            "rounds",
            "check",
        ],
        &rows,
    );
}

/// E5 — fully polynomial SSSP vs Bellman–Ford: amortization over queries.
fn e5_sssp(row: &mut RowBuilder) {
    let mut rows = Vec::new();
    for &n in &[256usize, 512, 1024] {
        let g = twgraph::gen::banded_path(n, 2);
        let d = twgraph::alg::diameter_exact(&g);
        let inst = twgraph::gen::with_random_weights(&g, 40, 9);
        let session = Session::decompose(&g, 3, 9).unwrap();
        let (labels, dl_rounds) = session.labels_distributed(&inst).unwrap();
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, q_rounds) = distlabel::sssp_distributed(&mut net, &labels, 0).unwrap();
        let mut net2 = Network::new(g.clone(), NetworkConfig::default());
        let (_, bf_rounds) = baselines::bellman_ford_distributed(&mut net2, &inst, 0).unwrap();
        // Queries needed before the labeling pays off.
        let breakeven = if bf_rounds > q_rounds {
            (dl_rounds / (bf_rounds - q_rounds)).saturating_add(1)
        } else {
            u64::MAX
        };
        row.det(format!("n{n}/dl_rounds"), dl_rounds);
        row.det(format!("n{n}/query_rounds"), q_rounds);
        row.det(format!("n{n}/bellman_ford_rounds"), bf_rounds);
        row.det(format!("n{n}/breakeven_queries"), breakeven);
        rows.push((
            vec![
                n.to_string(),
                d.to_string(),
                fmt(dl_rounds),
                fmt(q_rounds),
                fmt(bf_rounds),
                if breakeven == u64::MAX {
                    "-".into()
                } else {
                    breakeven.to_string()
                },
            ],
            serde_json::json!({"exp": "e5", "n": n, "dl": dl_rounds, "bford": bf_rounds}),
        ));
    }
    table(
        "E5 SSSP: one-time labeling + per-query broadcast vs per-source Bellman–Ford",
        &[
            "n",
            "D",
            "DL once",
            "per-query",
            "B-F per-source",
            "break-even q",
        ],
        &rows,
    );
}

/// E6 — Theorem 3: CDL rounds vs |Q| (count-c walks).
fn e6_cdl_q(row: &mut RowBuilder) {
    use stateful_walks::{CdlLabeling, CountWalk};
    let n = 96usize;
    let g = twgraph::gen::banded_path(n, 2);
    let mut rng = SmallRng::seed_from_u64(4);
    use rand::Rng;
    let inst = twgraph::MultiDigraph::from_undirected_labeled(
        n,
        g.edges().map(|(u, v)| (u, v, 1, rng.gen_range(0..2))),
    );
    let session = Session::decompose(&g, 3, 4).unwrap();
    let mut rows = Vec::new();
    let mut prev: Option<(usize, u64)> = None;
    for c in [1u32, 2, 4, 8] {
        let constraint = CountWalk { c };
        let q = constraint.c as usize + 3;
        let (_, metrics) = CdlLabeling::build_distributed(
            &inst,
            &constraint,
            &session.td,
            &session.info,
            NetworkConfig::default(),
        )
        .unwrap();
        let exp = prev.map_or("-".into(), |(q0, r0)| {
            format!(
                "{:.2}",
                (metrics.rounds as f64 / r0 as f64).ln() / (q as f64 / q0 as f64).ln()
            )
        });
        row.det(format!("c{c}/q"), q as u64);
        row.det(format!("c{c}/rounds"), metrics.rounds);
        rows.push((
            vec![c.to_string(), q.to_string(), fmt(metrics.rounds), exp],
            serde_json::json!({"exp": "e6", "c": c, "rounds": metrics.rounds}),
        ));
        prev = Some((q, metrics.rounds));
    }
    table(
        "E6 Theorem 3: CDL(count-c) rounds vs |Q| = c+3 (fitted local exponent)",
        &["c", "|Q|", "rounds", "exp vs prev"],
        &rows,
    );
}

/// E7 — Theorem 4: matching correctness + rounds vs the Õ(s_max) baseline.
fn e7_matching(row: &mut RowBuilder) {
    let mut rows = Vec::new();
    for &n_side in &[32usize, 64, 128] {
        let (g, side) = twgraph::gen::bipartite_banded(n_side, n_side, 2, 0.5, 3);
        let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
        let session = Session::decompose(&g, 3, 3).unwrap();
        let ours = session
            .max_matching(&inst, bmatch::MatchMode::Centralized)
            .unwrap();
        let hk = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
        assert_eq!(ours.size(), hk);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, base_rounds) =
            baselines::matching_distributed_baseline(&mut net, &g, &side).unwrap();
        // Faithful distributed Theorem-4 run only at the small size (it
        // rebuilds a CDL per augmentation).
        let t4_rounds = if n_side <= 32 {
            session
                .max_matching(&inst, bmatch::MatchMode::Distributed)
                .unwrap()
                .rounds
        } else {
            0
        };
        let n = 2 * n_side;
        row.det(format!("n{n}/matching"), ours.size() as u64);
        row.det(format!("n{n}/augmentations"), ours.augmentations as u64);
        row.det(format!("n{n}/attempts"), ours.attempts as u64);
        row.det(format!("n{n}/baseline_rounds"), base_rounds);
        row.det(format!("n{n}/thm4_rounds"), t4_rounds);
        rows.push((
            vec![
                n.to_string(),
                ours.size().to_string(),
                ours.augmentations.to_string(),
                ours.attempts.to_string(),
                fmt(base_rounds),
                if t4_rounds > 0 {
                    fmt(t4_rounds)
                } else {
                    "-".into()
                },
            ],
            serde_json::json!({"exp": "e7", "n": n, "size": ours.size()}),
        ));
    }
    table(
        "E7 Theorem 4: exact matching (== Hopcroft–Karp) vs alternating-BFS baseline",
        &["n", "|M|", "augs", "attempts", "baseline rnds", "thm4 rnds"],
        &rows,
    );
}

/// E8 — Theorem 5 + the girth/diameter separation family.
fn e8_girth(row: &mut RowBuilder) {
    let mut rows = Vec::new();
    for bits in [3usize, 4, 5] {
        let g = twgraph::gen::bit_gadget(bits);
        let n = g.n();
        let inst = twgraph::gen::with_unit_weights(&g);
        let truth = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 2 * bits as u64 + 2, 6).unwrap();
        let cfg = girth::GirthConfig {
            trials_per_c: 4,
            seed: 8,
            measure_distributed: true,
        };
        let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
        assert_eq!(run.girth, truth);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, apsp_rounds) = baselines::apsp_pipelined_distributed(&mut net).unwrap();
        let key = format!("gadget{bits}");
        row.det(format!("{key}/girth"), run.girth);
        row.det(format!("{key}/rounds_per_trial"), run.rounds_per_trial);
        row.det(format!("{key}/trials"), run.trials as u64);
        row.det(format!("{key}/apsp_rounds"), apsp_rounds);
        rows.push((
            vec![
                format!("gadget({bits})"),
                n.to_string(),
                run.girth.to_string(),
                fmt(run.rounds_per_trial),
                fmt(apsp_rounds),
                ratio(apsp_rounds, n as u64),
            ],
            serde_json::json!({"exp": "e8", "bits": bits, "girth": run.girth}),
        ));
    }
    table(
        "E8 Theorem 5: girth per-trial rounds vs APSP(diameter) rounds on the constant-D family",
        &[
            "family",
            "n",
            "girth",
            "girth rnds/trial",
            "APSP rnds",
            "APSP/n",
        ],
        &rows,
    );

    // (b) fixed τ, growing n: the separation *trend* — the diameter
    // baseline is forced to Θ(n) while the girth pipeline's per-trial
    // cost follows Õ(τ²D + τ⁵) with D = Θ(log n).
    let mut rows = Vec::new();
    for &n in &[48usize, 96, 192] {
        let g = twgraph::gen::partial_ktree(n, 2, 0.8, 2);
        let d = twgraph::alg::diameter_exact(&g);
        let inst = twgraph::gen::with_random_weights(&g, 5, 2);
        let truth = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 3, 2).unwrap();
        let cfg = girth::GirthConfig {
            trials_per_c: 3,
            seed: 21,
            measure_distributed: true,
        };
        let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
        assert_eq!(run.girth, truth);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, apsp_rounds) = baselines::apsp_pipelined_distributed(&mut net).unwrap();
        row.det(format!("trend_n{n}/diameter"), d as u64);
        row.det(format!("trend_n{n}/rounds_per_trial"), run.rounds_per_trial);
        row.det(format!("trend_n{n}/apsp_rounds"), apsp_rounds);
        rows.push((
            vec![
                n.to_string(),
                d.to_string(),
                fmt(run.rounds_per_trial),
                fmt(apsp_rounds),
                ratio(run.rounds_per_trial, apsp_rounds),
            ],
            serde_json::json!({"exp": "e8b", "n": n}),
        ));
    }
    table(
        "E8b separation trend at fixed τ = 2: girth rnds/trial vs APSP rnds as n grows",
        &["n", "D", "girth rnds/trial", "APSP rnds", "girth/APSP"],
        &rows,
    );
}

/// E9 — the primitive layer: PA congestion vs τ, MVC vs t, BCT vs h.
fn e9_primitives(row: &mut RowBuilder) {
    use subgraph_ops::global::build_global_tree;
    use subgraph_ops::mvc::{batch_min_vertex_cut, CutInstance};
    use subgraph_ops::{pa, Parts};

    // (a) PA congestion vs k on banded paths with interleaved parts.
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let n = 512usize;
        let g = twgraph::gen::banded_path(n, k);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_global_tree(&mut net).unwrap();
        let labels: Vec<Option<u32>> = (0..n).map(|v| Some((v / 16) as u32)).collect();
        let parts = Parts::from_labels(&labels);
        let roles = pa::steiner_roles(&tree, &parts);
        let before = *net.metrics();
        let _ =
            pa::aggregate_and_share(&mut net, &roles, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
        let delta = net.metrics().since(&before);
        row.det(format!("pa_k{k}/rounds"), delta.rounds);
        row.det(
            format!("pa_k{k}/congestion"),
            net.metrics().max_edge_words_in_superstep,
        );
        rows.push((
            vec![
                k.to_string(),
                fmt(delta.rounds),
                fmt(net.metrics().max_edge_words_in_superstep),
            ],
            serde_json::json!({"exp": "e9a", "k": k, "rounds": delta.rounds}),
        ));
    }
    table(
        "E9a Lemma 9: PA rounds and peak edge congestion vs τ (32 parts on banded paths)",
        &["k", "PA rounds", "peak congestion"],
        &rows,
    );

    // (b) MVC rounds vs t on grids.
    let mut rows = Vec::new();
    for rows_dim in [3usize, 5, 7] {
        let g = twgraph::gen::grid(rows_dim, 24);
        let mut net = Network::new(g, NetworkConfig::default());
        let xs: Vec<u32> = (0..rows_dim as u32).map(|r| r * 24).collect();
        let ys: Vec<u32> = (0..rows_dim as u32).map(|r| r * 24 + 23).collect();
        let before = *net.metrics();
        let res = batch_min_vertex_cut(
            &mut net,
            &[CutInstance {
                members: None,
                sources: xs,
                sinks: ys,
            }],
            rows_dim + 1,
        )
        .unwrap();
        let delta = net.metrics().since(&before);
        let cut = match &res[0] {
            subgraph_ops::mvc::CutResult::Cut(c) => c.len(),
            subgraph_ops::mvc::CutResult::TooBig => usize::MAX,
        };
        row.det(format!("mvc_r{rows_dim}/cut"), cut as u64);
        row.det(format!("mvc_r{rows_dim}/rounds"), delta.rounds);
        rows.push((
            vec![rows_dim.to_string(), cut.to_string(), fmt(delta.rounds)],
            serde_json::json!({"exp": "e9b", "rows": rows_dim, "cut": cut}),
        ));
    }
    table(
        "E9b Corollary 2: MVC rounds vs cut size t (grid columns)",
        &["grid rows (=cut)", "|cut|", "rounds"],
        &rows,
    );

    // (c) BCT(h) vs h.
    let mut rows = Vec::new();
    let n = 256usize;
    for h in [1usize, 4, 16, 64] {
        let g = twgraph::gen::banded_path(n, 2);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_global_tree(&mut net).unwrap();
        let parts = Parts::from_labels(&vec![Some(0u32); n]);
        let roles = pa::steiner_roles(&tree, &parts);
        let before = *net.metrics();
        let _ = pa::broadcast(&mut net, &roles, |v, _p| {
            if (v as usize) < h {
                vec![v as u64]
            } else {
                Vec::new()
            }
        })
        .unwrap();
        let delta = net.metrics().since(&before);
        row.det(format!("bct_h{h}/rounds"), delta.rounds);
        rows.push((
            vec![h.to_string(), fmt(delta.rounds)],
            serde_json::json!({"exp": "e9c", "h": h, "rounds": delta.rounds}),
        ));
    }
    table(
        "E9c Corollary 3: BCT(h) rounds vs message count h",
        &["h", "rounds"],
        &rows,
    );
}

/// A1 — Steiner-PA vs naive within-part flooding on parts whose own
/// diameter exceeds D.
fn a1_pa_ablation(row: &mut RowBuilder) {
    use subgraph_ops::bfs::part_bfs_trees;
    use subgraph_ops::flow::{downflow, upflow};
    use subgraph_ops::global::build_global_tree;
    use subgraph_ops::{pa, Parts};
    // Comb-like grid: rows are parts; the grid's diameter is rows+cols,
    // while a row's internal diameter is cols.
    let (r, c) = (16usize, 64usize);
    let g = twgraph::gen::grid(r, c);
    let labels: Vec<Option<u32>> = (0..r * c).map(|v| Some((v / c) as u32)).collect();
    let parts = Parts::from_labels(&labels);

    // Steiner.
    let mut net1 = Network::new(g.clone(), NetworkConfig::default());
    let tree = build_global_tree(&mut net1).unwrap();
    let roles = pa::steiner_roles(&tree, &parts);
    let before = *net1.metrics();
    let _ = pa::aggregate_and_share(&mut net1, &roles, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
    let steiner = net1.metrics().since(&before).rounds;

    // Naive: per-part BFS trees + up/down flow on them.
    let mut net2 = Network::new(g.clone(), NetworkConfig::default());
    let roots: Vec<(u32, u32)> = (0..r as u32).map(|p| (p, p * c as u32)).collect();
    let before = *net2.metrics();
    let ptrees = part_bfs_trees(&mut net2, &parts, &roots).unwrap();
    let up = upflow(&mut net2, &ptrees, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
    let totals: std::collections::HashMap<u32, u64> = up.roots.into_iter().collect();
    let _ = downflow(&mut net2, &ptrees, |p, _| {
        totals.get(&p).copied().into_iter().collect::<Vec<u64>>()
    })
    .unwrap();
    let naive = net2.metrics().since(&before).rounds;

    row.det("steiner/rounds", steiner);
    row.det("naive/rounds", naive);
    table(
        "A1 ablation: Steiner-restricted PA vs naive within-part flooding (16×64 grid, rows as parts)",
        &["engine", "rounds"],
        &[
            (
                vec!["steiner".into(), fmt(steiner)],
                serde_json::json!({"exp": "a1", "engine": "steiner", "rounds": steiner}),
            ),
            (
                vec!["naive".into(), fmt(naive)],
                serde_json::json!({"exp": "a1", "engine": "naive", "rounds": naive}),
            ),
        ],
    );
}

/// A2 — step-4 pair sampling width: success path and separator size as the
/// sample count shrinks/grows.
fn a2_pair_sampling(row: &mut RowBuilder) {
    use treedec::sep::sep_doubling;
    let g = twgraph::gen::banded_path(768, 3);
    let n = g.n();
    let mut rows = Vec::new();
    for pairs in [2usize, 12, 48] {
        let mut cfg = SepConfig::practical(n);
        cfg.sampled_pairs = pairs;
        let mut rng = SmallRng::seed_from_u64(11);
        let out = sep_doubling(&g, &vec![true; n], &vec![1u64; n], 4, &cfg, &mut rng)
            .expect("mincut invariant");
        row.det(format!("pairs{pairs}/sep"), out.separator.len() as u64);
        row.det(format!("pairs{pairs}/t_used"), out.t_used);
        row.det(format!("pairs{pairs}/path"), path_code(&out.path));
        rows.push((
            vec![
                pairs.to_string(),
                out.separator.len().to_string(),
                format!("{:?}", out.path),
                out.t_used.to_string(),
            ],
            serde_json::json!({"exp": "a2", "pairs": pairs, "sep": out.separator.len()}),
        ));
    }
    table(
        "A2 ablation: sampled pair count in Sep step 4",
        &["pairs", "|S|", "path", "t"],
        &rows,
    );
}

/// A3 — paper vs practical constants.
fn a3_constants(row: &mut RowBuilder) {
    use treedec::sep::sep_doubling;
    let g = twgraph::gen::banded_path(600, 2);
    let n = g.n();
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("paper", SepConfig::paper(n)),
        ("practical", SepConfig::practical(n)),
    ] {
        let mut rng = SmallRng::seed_from_u64(13);
        let out = sep_doubling(&g, &vec![true; n], &vec![1u64; n], 3, &cfg, &mut rng)
            .expect("mincut invariant");
        row.det(format!("{name}/sep"), out.separator.len() as u64);
        row.det(format!("{name}/t_used"), out.t_used);
        row.det(format!("{name}/path"), path_code(&out.path));
        rows.push((
            vec![
                name.to_string(),
                out.separator.len().to_string(),
                format!("{:?}", out.path),
                out.t_used.to_string(),
            ],
            serde_json::json!({"exp": "a3", "cfg": name, "sep": out.separator.len()}),
        ));
    }
    table(
        "A3 ablation: paper constants vs practical constants (n = 600, k = 2)",
        &["constants", "|S|", "path", "t"],
        &rows,
    );
}

/// Decode helper re-exported for the e4 exactness check.
use lowtw::prelude::decode;
