//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! Supports the shape the workspace's property suite uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(12))]
//!     #[test]
//!     fn invariant(n in 10usize..50, seed in 0u64..1000) {
//!         prop_assert!(n < 50);
//!     }
//! }
//! ```
//!
//! Each case deterministically samples every `x in range` strategy from a
//! per-test, per-case SplitMix64 stream (so failures reproduce across runs),
//! executes the body, and panics with the case inputs on `prop_assert!`
//! failure. No shrinking — the deterministic seed plus the printed inputs
//! stand in for it.

/// Execution configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case randomness source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream keyed by the test name and the case index, so every case is
    /// reproducible and distinct tests draw unrelated values.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32 | 0x9E37),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one `x in strategy` binding.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// The error a failed `prop_assert!` propagates.
pub type TestCaseError = String;

/// Everything the `proptest!` blocks need in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Soft assertion: fails the current case without aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)*)
            ));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Declare deterministic property tests (see the crate docs for the
/// supported grammar).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed [{}]: {}",
                            case + 1, config.cases, inputs.trim_end_matches(", "), e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(
            n in 5usize..20,
            w in 1u64..=4,
            p in 0.25f64..0.75,
        ) {
            prop_assert!((5..20).contains(&n));
            prop_assert!((1..=4).contains(&w));
            prop_assert!((0.25..0.75).contains(&p), "p was {p}");
            prop_assert_eq!(n + 1, n + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 3);
            (0..5).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 3);
            (0..5).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x too small: {x}");
            }
        }
        always_fails();
    }
}
