//! # bmatch — exact bipartite maximum matching (paper §6, Theorem 4)
//!
//! Divide and conquer over the separator hierarchy that the tree
//! decomposition already provides: every vertex belongs to exactly one
//! leaf subgraph or to exactly one internal node's separator `S'_x`.
//! Leaves are matched locally (gathered subgraphs); then, walking the
//! decomposition bottom-up, each separator vertex is activated one at a
//! time and a single augmenting path from it is sought
//! (Proposition 1 / \[IOO18\]: that is the only place an augmenting path
//! can start).
//!
//! An augmenting path is a shortest **2-colored walk** (Example 1) from
//! the new vertex to any unmatched vertex — colors are "matched" /
//! "unmatched" edge states, and in bipartite graphs the shortest such walk
//! is simple. Deactivated vertices are excluded the paper's way: their
//! incident edges get cost ∞ while the graph (and hence the decomposition)
//! stays fixed.
//!
//! The distributed mode executes a CDL(C_col(2)) construction per
//! augmentation through the virtual-network machinery and accumulates the
//! measured rounds — the Õ(τ⁴D + τ⁷) pipeline of Theorem 4.

pub mod matcher;

pub use matcher::{max_matching, MatchMode, MatchingOutcome};
