//! # servd — the socketed label-serving front-end
//!
//! `labelserve` answers s–t distance queries in-process at millions of
//! QPS; this crate puts that engine behind a wire so the build-once /
//! query-many split actually serves remote callers. It is deliberately
//! dependency-free systems Rust: `std::net` sockets, a thread per
//! connection, and a compact varint-framed binary protocol.
//!
//! * [`proto`] — the wire format: LEB128 varint framing, request opcodes
//!   (single query / batch / epoch / repin), typed response statuses,
//!   and a total, panic-free decoder for untrusted bytes.
//! * [`server`] — [`Server`]: accept loop + per-connection reader/worker
//!   pairs over a shared [`labelserve::VersionedEngine`]. Bounded
//!   per-connection queues give admission control (`OVERLOADED` /
//!   `TOO_LARGE` / `MALFORMED` are answers, not hangups), connections pin
//!   their serving epoch at accept, and shutdown drains every admitted
//!   request before joining.
//! * [`client`] — [`Client`]: a blocking counterpart with split
//!   send/recv for pipelining; what the load generator and the
//!   differential suites drive.
//! * [`stats`] — nearest-rank percentile digests for the SLO report.
//!
//! ```
//! use distlabel::Label;
//! use labelserve::{ServeConfig, StoreBuilder, VersionedEngine};
//! use servd::{Client, ServdConfig, Server};
//! use std::sync::Arc;
//!
//! // A two-vertex store: one weight-3 edge.
//! let mut l0 = Label::new(0);
//! l0.merge(0, 0, 0);
//! l0.merge(1, 3, 3);
//! let mut l1 = Label::new(1);
//! l1.merge(1, 0, 0);
//! let mut b = StoreBuilder::new(2);
//! b.add_component(&[l0, l1], &[0, 1]).unwrap();
//! let store = b.build(ServeConfig::default().shard_size).unwrap();
//! let engine = Arc::new(VersionedEngine::new(store, ServeConfig::default()));
//!
//! // Serve it on an ephemeral loopback port and query over the wire.
//! let server = Server::spawn(engine, ("127.0.0.1", 0), ServdConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! assert_eq!(client.distance(0, 1).unwrap(), 3);
//! assert_eq!(client.batch(&[(1, 0), (0, 0)]).unwrap(), vec![3, 0]);
//! assert_eq!(client.epoch().unwrap(), 0);
//! let stats = server.shutdown(); // drains in-flight work, joins threads
//! assert_eq!(stats.queries, 3);
//! ```

pub mod client;
pub mod proto;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError};
pub use proto::{ProtoError, Request, Response, WireError};
pub use server::{ServdConfig, Server, ServerStats};
pub use stats::{percentile_us, LatencySummary};
