//! The `servd` driver: the store served over a real loopback socket. One
//! differential pass (every wire answer checked against the in-process
//! engine), then an open-loop run from several client connections with
//! latency charged from each request's *scheduled* send time — no
//! coordinated omission. Counts are schedule-determined and gated
//! exactly; latencies and throughput are host-dependent context.

use super::{gen_instance, RowBuilder};
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use crate::rate_per_sec;
use labelserve::{
    seeded_queries, ServeConfig, StoreBuilder, StoreLayout, VersionedEngine, WorkloadSpec,
};
use lowtw::servd::{Client, Request, Response, ServdConfig, Server};
use lowtw::{distlabel, treedec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every 64th scheduled request ships as one batch of this many pairs.
const BATCH_EVERY: usize = 64;
const BATCH_LEN: usize = 32;

/// One connection's share of the open-loop run.
struct ConnReport {
    samples_us: Vec<u64>,
    requests: u64,
    queries: u64,
}

/// Drive `requests` scheduled sends at `interval_us` spacing over one
/// connection; a synchronous round trip per request, latency charged
/// from the scheduled instant.
fn drive_connection(
    addr: std::net::SocketAddr,
    queries: &[(u32, u32)],
    requests: usize,
    interval_us: u64,
) -> ConnReport {
    let mut client = Client::connect(addr).expect("client connect failed");
    let mut samples_us = Vec::with_capacity(requests);
    let mut qcount = 0u64;
    let mut qi = 0usize;
    let next = |qi: &mut usize| {
        let q = queries[*qi % queries.len()];
        *qi += 1;
        q
    };
    let start = Instant::now();
    for i in 0..requests {
        let sched = Duration::from_micros(i as u64 * interval_us);
        let elapsed = start.elapsed();
        if sched > elapsed {
            std::thread::sleep(sched - elapsed);
        }
        if i % BATCH_EVERY == BATCH_EVERY - 1 {
            let pairs: Vec<(u32, u32)> = (0..BATCH_LEN).map(|_| next(&mut qi)).collect();
            let got = client.batch(&pairs).expect("batch over the wire failed");
            assert_eq!(got.len(), BATCH_LEN);
            qcount += BATCH_LEN as u64;
        } else {
            let (s, t) = next(&mut qi);
            client.distance(s, t).expect("query over the wire failed");
            qcount += 1;
        }
        samples_us.push((start.elapsed() - sched).as_micros() as u64);
    }
    ConnReport {
        samples_us,
        requests: requests as u64,
        queries: qcount,
    }
}

/// Check a slice of the workload over the wire against the in-process
/// engine, answer by answer; returns how many pairs were verified.
fn differential(addr: std::net::SocketAddr, engine: &VersionedEngine, pairs: &[(u32, u32)]) -> u64 {
    let mut client = Client::connect(addr).expect("differential connect failed");
    for &(s, t) in pairs.iter().take(pairs.len() / 4) {
        assert_eq!(
            client.distance(s, t).expect("wire query failed"),
            engine.distance(s, t).expect("in-process query failed"),
            "wire({s}, {t}) diverged from the in-process engine"
        );
    }
    assert_eq!(
        client.batch(pairs).expect("wire batch failed"),
        engine.batch(pairs).expect("in-process batch failed"),
        "batched wire answers diverged from the in-process engine"
    );
    match client.call(&Request::Epoch).expect("epoch call failed") {
        Response::Epoch(e) => assert_eq!(e, engine.epoch()),
        other => panic!("unexpected epoch response {other:?}"),
    }
    (pairs.len() + pairs.len() / 4) as u64
}

pub fn run(trial: &Trial) -> TrialRow {
    let inst = gen_instance(trial, 4_000, 1);
    let layout = match trial.params.str("layout", "flat") {
        "flat" => StoreLayout::Flat,
        "packed" => StoreLayout::Packed,
        other => panic!("unknown layout {other:?} (expected \"flat\" or \"packed\")"),
    };
    let conns = trial.params.usize("conns", 2);
    let per_conn_rate = trial.params.u64("rate_per_conn", 10_000);
    let per_conn_requests = trial.params.usize("requests_per_conn", 4_000);
    let mut row = RowBuilder::new(trial);
    let n = inst.n;

    let serve_cfg = ServeConfig::default().with_layout(layout);
    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(inst.seed);
    let t = Instant::now();
    let out = treedec::decompose_centralized(&inst.g, inst.k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    let labels = distlabel::build_labels_centralized(&inst.inst, &out.td, &out.info);
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut builder = StoreBuilder::new(n);
    builder
        .add_component(&labels, &ids)
        .expect("store compaction failed");
    let store = builder
        .build_layout(serve_cfg.shard_size, layout)
        .expect("store build failed");
    row.wall("build", t.elapsed());
    row.det("n", n as u64);
    row.det("m", inst.g.m() as u64);
    row.det("width", out.td.width() as u64);
    row.det("store_entries", store.entries() as u64);
    row.det("store_shards", store.shard_count() as u64);
    let engine = Arc::new(VersionedEngine::new(store, serve_cfg));

    let server = Server::spawn(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServdConfig::default(),
    )
    .expect("server spawn failed");
    let addr = server.local_addr();

    // Differential gate before timing.
    let diff_pairs = seeded_queries(
        n,
        &WorkloadSpec {
            queries: trial.params.usize("diff_pairs", 2_000),
            hot_pairs: 128,
            hot_fraction: 0.75,
        },
        inst.seed ^ 0xD1FF,
    );
    row.det(
        "differential_pairs",
        differential(addr, &engine, &diff_pairs),
    );

    // The open-loop run.
    let spec = WorkloadSpec {
        queries: trial.params.usize("queries", 50_000),
        hot_pairs: trial.params.usize("hot_pairs", 4096),
        hot_fraction: trial.params.f64("hot_fraction", 0.75),
    };
    let interval_us = 1_000_000 / per_conn_rate;
    let t = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let queries = seeded_queries(n, &spec, inst.seed.wrapping_add(c as u64));
            std::thread::spawn(move || {
                drive_connection(addr, &queries, per_conn_requests, interval_us)
            })
        })
        .collect();
    let reports: Vec<ConnReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = t.elapsed();
    row.wall("open_loop", wall);

    let mut samples: Vec<u64> = reports.iter().flat_map(|r| r.samples_us.clone()).collect();
    let requests: u64 = reports.iter().map(|r| r.requests).sum();
    let queries: u64 = reports.iter().map(|r| r.queries).sum();
    let summary = lowtw::servd::LatencySummary::from_samples(&mut samples);
    row.det("requests", requests);
    row.det("queries", queries);
    row.info("sustained_rps", rate_per_sec(requests, wall) as f64);
    row.info("sustained_qps", rate_per_sec(queries, wall) as f64);
    row.info("latency_p50_us", summary.p50_us as f64);
    row.info("latency_p90_us", summary.p90_us as f64);
    row.info("latency_p99_us", summary.p99_us as f64);
    row.info("latency_p999_us", summary.p999_us as f64);
    row.info("latency_max_us", summary.max_us as f64);

    let stats = server.shutdown();
    assert_eq!(
        (stats.malformed, stats.overloads, stats.rejected_batches),
        (0, 0, 0),
        "protocol errors during a clean benchmark run"
    );
    // Connection and request counts are fixed by the schedule.
    row.det("server_connections", stats.connections);
    row.det("server_requests", stats.requests);
    row.det("server_queries", stats.queries);
    row.finish()
}
