//! The `engine` driver: one full distributed SSSP pipeline — tree
//! decomposition → distance labeling → label-broadcast query — with every
//! stage's charged costs taken from the engine's phase log and the
//! distributed answers spot-checked against centralized Dijkstra.

use super::{gen_instance, RowBuilder};
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use congest_sim::{Network, NetworkConfig, PhaseSnapshot};
use lowtw::{distlabel, treedec, twgraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

pub fn run(trial: &Trial) -> TrialRow {
    let inst = gen_instance(trial, 4_000, 1);
    let mut row = RowBuilder::new(trial);
    let n = inst.n;
    let m = inst.g.m();
    let mut net = Network::new(inst.g.clone(), NetworkConfig::default());
    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(inst.seed);

    let t = Instant::now();
    let out = treedec::decompose_distributed(&mut net, inst.k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    row.wall("decompose", t.elapsed());

    let t = Instant::now();
    let (labels, _) = distlabel::build_labels_distributed(&mut net, &inst.inst, &out.td, &out.info)
        .expect("label build failed");
    row.wall("label", t.elapsed());

    let t = Instant::now();
    let (dists, _) = distlabel::sssp_distributed(&mut net, &labels, 0).expect("sssp failed");
    row.wall("query", t.elapsed());

    // Spot-check correctness against the centralized oracle.
    let truth = twgraph::alg::dijkstra(&inst.inst, 0);
    let mut checked = 0u64;
    for v in (0..n).step_by((n / 64).max(1)) {
        assert_eq!(dists[v], truth.dist[v], "sssp mismatch at {v}");
        checked += 1;
    }

    row.det("n", n as u64);
    row.det("m", m as u64);
    row.det("width", out.td.width() as u64);
    row.det("depth", out.td.stats().depth as u64);
    row.det("checked", checked);
    let total = net.metrics();
    row.det("rounds", total.rounds);
    row.det("supersteps", total.supersteps);
    row.det("messages", total.messages);
    row.det("words", total.words);
    row.det("charged_rounds", total.charged_rounds);
    row.det("congestion", total.max_edge_words_in_superstep);
    // Per-phase charged costs, index-prefixed: phase names repeat in the
    // log (e.g. "primitives/backbone" appears once per stage).
    let phases: Vec<PhaseSnapshot> = net.phase_log().to_vec();
    for (i, p) in phases.iter().enumerate() {
        let pre = format!("p{i:02}/{}", p.phase);
        row.det(format!("{pre}/rounds"), p.rounds);
        row.det(format!("{pre}/messages"), p.messages);
        row.det(format!("{pre}/words"), p.words);
        row.det(format!("{pre}/charged_rounds"), p.charged_rounds);
        row.det(format!("{pre}/congestion"), p.max_edge_words_in_superstep);
    }
    row.finish()
}
