//! Packed-vs-flat store differential over the whole scenario corpus.
//!
//! The packed block layout (`labelserve::StoreLayout::Packed`) is a pure
//! re-encoding of the flat SoA arena: same entries, same merge-join
//! semantics, ~4-5x fewer bytes. This suite pins that contract corpus-wide:
//!
//! 1. **Bit-identical answers** — for every scenario family (including the
//!    multi-component cells, so cross-component ∞ flows through the packed
//!    decoder), one label accumulation compacted into both layouts must
//!    answer every checked pair identically — exhaustive for n ≤ 200, a
//!    seeded sample otherwise.
//! 2. **Strictly smaller** — the packed arena must always be smaller than
//!    the flat one on corpus stores (they carry real hub sets, not
//!    degenerate empties).
//! 3. **Shard-file round-trip** — `write_to` → `open_mmap` must reproduce
//!    each layout exactly: same shape, same bytes-per-node class, and a
//!    full differential against the in-memory store that produced it.

use lowtw::labelserve::{QueryEngine, ServeConfig, StoreBuilder, StoreLayout};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenarios::{corpus, runner, split_components, Scenario};
use twgraph::INF;

/// Split components, label each (centralized), and hand back the loaded
/// builder — one accumulation that both layouts compact from.
fn builder_for(sc: &Scenario) -> StoreBuilder {
    let g = sc.graph();
    let inst = sc.instance();
    let parts = split_components(&g, &inst);
    let mut builder = StoreBuilder::new(g.n());
    for (ci, part) in parts.iter().enumerate() {
        if part.graph.n() == 1 {
            builder.add_singleton(part.old_of[0]).unwrap();
            continue;
        }
        let out = runner::decompose_part(part, sc.t0, sc.seed, ci)
            .unwrap_or_else(|e| panic!("{}: decomposition failed: {e}", sc.name));
        let labels = distlabel::build_labels_centralized(&part.inst, &out.td, &out.info);
        builder.add_component(&labels, &part.old_of).unwrap();
    }
    builder
}

/// The pair set a differential walks: exhaustive n×n for n ≤ 200, else a
/// seeded sample plus the diagonal.
fn pairs_for(n: usize, seed: u64) -> Vec<(u32, u32)> {
    if n <= 200 {
        (0..n as u32)
            .flat_map(|s| (0..n as u32).map(move |t| (s, t)))
            .collect()
    } else {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xACED);
        let mut qs: Vec<(u32, u32)> = (0..20_000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        qs.extend((0..n as u32).map(|v| (v, v)));
        qs
    }
}

#[test]
fn packed_store_matches_flat_on_every_corpus_cell() {
    for sc in corpus() {
        let builder = builder_for(&sc);
        let shard_size = (sc.graph().n() / 5).max(1);
        let flat = builder.build_layout(shard_size, StoreLayout::Flat).unwrap();
        let packed = builder
            .build_layout(shard_size, StoreLayout::Packed)
            .unwrap();
        assert_eq!(packed.entries(), flat.entries(), "{}", sc.name);
        assert_eq!(packed.components(), flat.components(), "{}", sc.name);
        assert!(
            packed.bytes() < flat.bytes(),
            "{}: packed {} >= flat {}",
            sc.name,
            packed.bytes(),
            flat.bytes()
        );
        let mut cross_inf = 0u64;
        for (s, t) in pairs_for(flat.n(), sc.seed) {
            let d = flat.distance(s, t).unwrap();
            assert_eq!(
                packed.distance(s, t).unwrap(),
                d,
                "{}: packed({s} → {t}) diverged",
                sc.name
            );
            if flat.comp_of(s).unwrap() != flat.comp_of(t).unwrap() {
                assert_eq!(d, INF, "{}: cross-component ({s}, {t}) finite", sc.name);
                cross_inf += 1;
            }
        }
        if sc.family.tag() == "multi_component" {
            assert!(cross_inf > 0, "{}: no ∞ pair exercised", sc.name);
        }
    }
}

#[test]
fn shard_files_round_trip_on_corpus_stores() {
    let dir = std::env::temp_dir();
    for (i, sc) in corpus().into_iter().enumerate().take(6) {
        let builder = builder_for(&sc);
        let shard_size = (sc.graph().n() / 4).max(1);
        for layout in [StoreLayout::Flat, StoreLayout::Packed] {
            let store = builder.build_layout(shard_size, layout).unwrap();
            let path = dir.join(format!(
                "lowtw_packed_diff_{}_{i}_{layout:?}.lbl",
                std::process::id()
            ));
            store.write_to(&path).unwrap();
            let opened = lowtw::labelserve::LabelStore::open_mmap(&path).unwrap();
            assert_eq!(opened.layout(), layout, "{}", sc.name);
            assert_eq!(opened.n(), store.n(), "{}", sc.name);
            assert_eq!(opened.entries(), store.entries(), "{}", sc.name);
            assert_eq!(opened.components(), store.components(), "{}", sc.name);
            for (s, t) in pairs_for(store.n(), sc.seed ^ i as u64) {
                assert_eq!(
                    opened.distance(s, t).unwrap(),
                    store.distance(s, t).unwrap(),
                    "{}: reopened({s} → {t}) diverged",
                    sc.name
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn packed_engine_serves_workloads_identically() {
    // Same check one level up: the QueryEngine (cache, batching, stats)
    // over a packed store replays a hot workload bit-identically to the
    // flat engine, and the cache still functions over packed shards.
    for sc in corpus().into_iter().take(4) {
        let builder = builder_for(&sc);
        let n = sc.graph().n();
        let mk = |layout: StoreLayout| {
            let cfg = ServeConfig {
                shard_size: (n / 5).max(1),
                cache_capacity: 64,
                layout,
            };
            QueryEngine::new(builder.build_layout(cfg.shard_size, layout).unwrap(), cfg)
        };
        let flat = mk(StoreLayout::Flat);
        let packed = mk(StoreLayout::Packed);
        let qs = lowtw::labelserve::seeded_queries(
            n,
            &lowtw::labelserve::WorkloadSpec {
                queries: 2_000,
                hot_pairs: 16,
                hot_fraction: 0.8,
            },
            sc.seed,
        );
        assert_eq!(
            flat.batch(&qs).unwrap(),
            packed.batch(&qs).unwrap(),
            "{}: engines diverged",
            sc.name
        );
        assert!(
            packed.stats().hits > 0,
            "{}: packed cache never hit",
            sc.name
        );
    }
}
