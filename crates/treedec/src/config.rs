//! Tunable constants of the `Sep` algorithm (paper §3.3).

/// How the distributed recursion schedules the *local* (charge-free) work
/// of sibling subproblems within one level: split-tree carving, component
/// materialization, boundary extraction. The charged CONGEST schedule is
/// identical either way — sibling subgraphs are vertex disjoint, their
/// flows already share supersteps, and the per-item charging order is
/// fixed — so both schedules must produce bit-identical decompositions and
/// metrics (locked by the `branch_schedules_agree` proptest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BranchSchedule {
    /// Fan sibling branches out over rayon in weight-balanced chunks (the
    /// engine's edge-balanced partitioning idiom).
    #[default]
    Parallel,
    /// Process siblings one after another on the calling thread.
    Sequential,
}

/// Constants steering `Sep`. All ratios are kept as integer fractions so the
/// paper's values are representable exactly.
#[derive(Clone, Copy, Debug)]
pub struct SepConfig {
    /// Step 1 cutoff: output X whole when µ(G) ≤ `small_cutoff`·t².
    /// Paper: 200.
    pub small_cutoff: u64,
    /// Split-tree minimum size denominator: sizes ≥ µ(G)/(`split_lo`·t).
    /// Paper: 12.
    pub split_lo: u64,
    /// Split-tree "stay in T" threshold denominator: trees > µ(G)/(`split_hi`·t)
    /// keep being split. Paper: 4.
    pub split_hi: u64,
    /// Balance target α = `balance_num`/`balance_den`: a separator is
    /// accepted when every remaining component has µ ≤ α·µ(G).
    /// Paper: 14399/14400. Practical: 7/8.
    pub balance_num: u64,
    /// See [`Self::balance_num`].
    pub balance_den: u64,
    /// Iteration count ĉ = ⌈`iters_num`·t/`iters_den`⌉. Paper: 301/300.
    /// Practical: 2/1.
    pub iters_num: u64,
    /// See [`Self::iters_num`].
    pub iters_den: u64,
    /// Ordered tree pairs sampled per iteration at step 4. Paper: 95.
    pub sampled_pairs: usize,
    /// Step-4 retries before concluding t < τ+1 and doubling t.
    /// Paper: 5·log n (pass the evaluated value).
    pub trials: usize,
    /// Practical extension: accept R* ∪ Z as the separator when Z alone is
    /// not balanced (strict superset of the paper's acceptance; same O(t²)
    /// size bound). Paper behaviour: false.
    pub union_fallback: bool,
    /// Scheduling of sibling-branch local work in the distributed
    /// recursion (never affects outputs or charged metrics).
    pub branch_schedule: BranchSchedule,
}

impl SepConfig {
    /// The verbatim constants of §3.3 (use only on small instances: the
    /// 1−1/14400 balance makes recursion depth ≈ 14400·ln n).
    pub fn paper(n: usize) -> Self {
        SepConfig {
            small_cutoff: 200,
            split_lo: 12,
            split_hi: 4,
            balance_num: 14399,
            balance_den: 14400,
            iters_num: 301,
            iters_den: 300,
            sampled_pairs: 95,
            trials: 5 * n.max(2).ilog2() as usize,
            union_fallback: false,
            branch_schedule: BranchSchedule::default(),
        }
    }

    /// Laptop-scale constants with the same algorithm structure
    /// (DESIGN.md §4.3). Default everywhere.
    pub fn practical(n: usize) -> Self {
        SepConfig {
            small_cutoff: 2,
            split_lo: 12,
            split_hi: 4,
            balance_num: 7,
            balance_den: 8,
            iters_num: 2,
            iters_den: 1,
            sampled_pairs: 12,
            trials: 2 + n.max(2).ilog2() as usize / 2,
            union_fallback: true,
            branch_schedule: BranchSchedule::default(),
        }
    }

    /// ĉ(t): the number of harvest iterations.
    pub fn iterations(&self, t: u64) -> u64 {
        (self.iters_num * t).div_ceil(self.iters_den).max(1)
    }

    /// Whether a component-measure profile is α-balanced w.r.t. total `mu_g`:
    /// every component's measure must be ≤ α·µ(G).
    pub fn is_balanced(&self, largest_component_mu: u64, mu_g: u64) -> bool {
        largest_component_mu * self.balance_den <= self.balance_num * mu_g
    }

    /// The guaranteed separator size bound for this configuration,
    /// `O(t²)` with the config's constants made explicit — used by tests
    /// and experiment tables. Conservative: covers both the R* and the Z
    /// output paths (and their union when `union_fallback`).
    pub fn size_bound(&self, t: u64) -> u64 {
        let iters = self.iterations(t);
        // R* ≤ iters · (split_lo·t + 1); Z ≤ iters · sampled_pairs · t.
        let r_star = iters * (self.split_lo * t + t / 10 + 2);
        let z = iters * self.sampled_pairs as u64 * t;
        let small = self.small_cutoff * t * t;
        if self.union_fallback {
            (r_star + z).max(small)
        } else {
            r_star.max(z).max(small)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = SepConfig::paper(1024);
        assert_eq!(c.small_cutoff, 200);
        assert_eq!(c.iterations(300), 301);
        assert_eq!(c.trials, 50);
        assert!(!c.union_fallback);
    }

    #[test]
    fn balance_check() {
        let c = SepConfig::practical(100);
        // 7/8 balance: 87/100 ok, 88/100 not.
        assert!(c.is_balanced(87, 100));
        assert!(!c.is_balanced(88, 100));
    }

    #[test]
    fn iterations_round_up() {
        let c = SepConfig::paper(16);
        assert_eq!(c.iterations(1), 2); // ⌈301/300⌉
        let p = SepConfig::practical(16);
        assert_eq!(p.iterations(3), 6);
    }

    #[test]
    fn size_bound_quadratic() {
        let c = SepConfig::practical(1000);
        assert!(c.size_bound(4) < c.size_bound(8));
        // Bound is O(t²): ratio between t and 2t stays below ~4.5.
        let r = c.size_bound(16) as f64 / c.size_bound(8) as f64;
        assert!(r < 4.5, "ratio {r}");
    }
}
