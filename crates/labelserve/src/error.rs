//! Typed failures of the serving layer.
//!
//! Consistent with the workspace-wide Result sweep (PR 4): every
//! operational failure is a value, never a panic. Note what is *not* an
//! error: a query between two vertices of different connected components
//! decodes to [`twgraph::INF`] — exactly what the centralized oracles
//! report for unreachable pairs — so disconnected inputs serve cleanly.

use std::fmt;

/// A store build or query failed for a structural reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A query named a vertex id outside the store's `0..n` space.
    UnknownNode {
        /// The offending vertex id.
        node: u32,
        /// The store's vertex-space size.
        n: usize,
    },
    /// A component registered a vertex already owned by an earlier
    /// component (the component map must partition `0..n`).
    DuplicateNode {
        /// The doubly-claimed global vertex id.
        node: u32,
    },
    /// After all components were registered, a vertex was left without a
    /// label (the component map must cover `0..n`).
    UncoveredNode {
        /// The unclaimed global vertex id.
        node: u32,
    },
    /// A label entry named a hub outside its component's vertex list —
    /// the `old_of` mapping cannot translate it to a global id.
    HubOutOfRange {
        /// The component-local hub id.
        hub: u32,
        /// The component's vertex count.
        comp_n: usize,
    },
    /// A component handed the builder label and vertex lists of different
    /// lengths — there is no well-defined local-to-global mapping.
    ComponentShapeMismatch {
        /// Labels supplied.
        labels: usize,
        /// Vertices supplied (`old_of` length).
        nodes: usize,
    },
    /// A component's `old_of` vertex map is not strictly ascending. The
    /// monotone map is what keeps globalized hub lists sorted — the
    /// invariant both the galloping merge-join and the packed layout's
    /// delta coding decode against — so an unsorted map must be a typed
    /// error in release builds too, never a silently wrong distance
    /// (previously only a `debug_assert!`).
    UnsortedComponentMap {
        /// Position `i` in `old_of` where `old_of[i] >= old_of[i + 1]`.
        index: usize,
        /// `old_of[index]`.
        prev: u32,
        /// `old_of[index + 1]`.
        next: u32,
    },
    /// A single shard exceeded the `u32` bound its CSR offsets (flat) or
    /// segment headers (packed) are stored in. Previously the flat builder
    /// truncated with `as u32`, silently corrupting every row after the
    /// 2³²nd entry; now both layouts refuse with the coordinates.
    ShardTooLarge {
        /// The shard index that overflowed.
        shard: usize,
        /// Entries accumulated when the bound broke.
        entries: usize,
        /// Packed body bytes accumulated (entry count × 20 for flat).
        bytes: usize,
    },
    /// A node's entry list was not strictly ascending by hub at packing
    /// time — the delta coder would wrap and decode wrong distances.
    UnsortedNodeEntries {
        /// The offending global vertex id.
        node: u32,
    },
    /// A packed segment failed structural validation (truncated sections,
    /// inconsistent CSR counts, or a body stream that decodes wrong) —
    /// raised when opening a persisted store file, never at query time.
    CorruptSegment {
        /// Which invariant broke.
        what: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServeError::UnknownNode { node, n } => {
                write!(f, "query names unknown node {node} (store holds 0..{n})")
            }
            ServeError::DuplicateNode { node } => {
                write!(f, "node {node} registered by two components")
            }
            ServeError::UncoveredNode { node } => {
                write!(f, "node {node} left without a label by every component")
            }
            ServeError::HubOutOfRange { hub, comp_n } => {
                write!(
                    f,
                    "label entry hub {hub} outside its component (size {comp_n})"
                )
            }
            ServeError::ComponentShapeMismatch { labels, nodes } => {
                write!(
                    f,
                    "component registered {labels} labels for {nodes} vertices"
                )
            }
            ServeError::UnsortedComponentMap { index, prev, next } => {
                write!(
                    f,
                    "component vertex map not strictly ascending at index {index}: \
                     {prev} then {next}"
                )
            }
            ServeError::ShardTooLarge {
                shard,
                entries,
                bytes,
            } => {
                write!(
                    f,
                    "shard {shard} exceeds the u32 segment bound \
                     ({entries} entries, {bytes} data bytes)"
                )
            }
            ServeError::UnsortedNodeEntries { node } => {
                write!(f, "node {node} entry list not strictly ascending by hub")
            }
            ServeError::CorruptSegment { what } => {
                write!(f, "corrupt packed segment: {what}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_coordinates() {
        let e = ServeError::UnknownNode { node: 9, n: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        assert!(ServeError::DuplicateNode { node: 3 }
            .to_string()
            .contains('3'));
        assert!(ServeError::UncoveredNode { node: 2 }
            .to_string()
            .contains('2'));
        assert!(ServeError::HubOutOfRange { hub: 8, comp_n: 5 }
            .to_string()
            .contains('8'));
        let e = ServeError::UnsortedComponentMap {
            index: 4,
            prev: 9,
            next: 7,
        };
        for needle in ['4', '9', '7'] {
            assert!(e.to_string().contains(needle));
        }
        let e = ServeError::ShardTooLarge {
            shard: 2,
            entries: 5_000_000_000,
            bytes: 1,
        };
        assert!(e.to_string().contains("5000000000"));
        assert!(ServeError::UnsortedNodeEntries { node: 6 }
            .to_string()
            .contains('6'));
        assert!(ServeError::CorruptSegment { what: "boom" }
            .to_string()
            .contains("boom"));
    }
}
