//! Global leader election and BFS tree — the backbone every Steiner-based
//! operation rides on, and the O(D)-round control-pulse charge.

use congest_sim::{CongestError, Network};

/// A BFS spanning tree of the (connected) communication graph.
#[derive(Clone, Debug)]
pub struct GlobalTree {
    /// The elected root.
    pub root: u32,
    /// Parent per node (root points to itself).
    pub parent: Vec<u32>,
    /// Hop depth per node.
    pub depth: Vec<u32>,
    /// Maximum depth (≤ diameter).
    pub height: u32,
}

impl GlobalTree {
    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<u32>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for v in 0..self.parent.len() as u32 {
            let p = self.parent[v as usize];
            if p != v {
                ch[p as usize].push(v);
            }
        }
        ch
    }

    /// Charge one global control pulse: a constant-size convergecast up the
    /// tree plus a broadcast down (the cost of the orchestrator learning one
    /// O(1)-word global predicate and announcing the next phase — DESIGN.md
    /// §4.4 keeps this explicit so control flow is never free).
    pub fn charge_control_pulse(&self, net: &mut Network) {
        net.charge_rounds(2 * (self.height as u64 + 1));
    }
}

#[derive(Clone)]
struct ElectState {
    best: u64,
    fresh: bool,
}

/// Distributed leader election by max-UID flooding. Every node learns the
/// maximum UID in its component; rounds ≈ diameter (measured). Returns the
/// winning node index (resolved from the winning UID).
pub fn elect_global_leader(net: &mut Network) -> Result<u32, CongestError> {
    let n = net.n();
    let g = net.graph_handle();
    let mut states: Vec<ElectState> = (0..n as u32)
        .map(|v| ElectState {
            best: net.uid(v),
            fresh: true,
        })
        .collect();
    net.run_until_quiet(
        &mut states,
        |u, s: &ElectState| {
            if s.fresh {
                g.neighbors(u).iter().map(|&v| (v, s.best)).collect()
            } else {
                Vec::new()
            }
        },
        |_v, s, inbox| {
            s.fresh = false;
            for (_src, uid) in inbox {
                if uid > s.best {
                    s.best = uid;
                    s.fresh = true;
                }
            }
        },
        4 * n as u64 + 16,
    )?;
    let winner_uid = states[0].best;
    Ok((0..n as u32)
        .find(|&v| net.uid(v) == winner_uid)
        .expect("winning uid must belong to some node"))
}

#[derive(Clone)]
struct BfsState {
    dist: u32,
    parent: u32,
    fresh: bool,
}

/// Distributed BFS tree from `root` over the whole communication graph.
/// Rounds ≈ eccentricity(root) + 1, measured.
pub fn build_bfs_tree(net: &mut Network, root: u32) -> Result<GlobalTree, CongestError> {
    let n = net.n();
    let g = net.graph_handle();
    let mut states = vec![
        BfsState {
            dist: u32::MAX,
            parent: u32::MAX,
            fresh: false,
        };
        n
    ];
    states[root as usize] = BfsState {
        dist: 0,
        parent: root,
        fresh: true,
    };
    net.run_until_quiet(
        &mut states,
        |u, s: &BfsState| {
            if s.fresh {
                g.neighbors(u).iter().map(|&v| (v, s.dist)).collect()
            } else {
                Vec::new()
            }
        },
        |_v, s, inbox| {
            s.fresh = false;
            for (src, d) in inbox {
                if d + 1 < s.dist {
                    s.dist = d + 1;
                    s.parent = src; // inbox sorted by src → deterministic
                    s.fresh = true;
                }
            }
        },
        4 * n as u64 + 16,
    )?;
    assert!(
        states.iter().all(|s| s.dist != u32::MAX),
        "communication graph must be connected"
    );
    let height = states.iter().map(|s| s.dist).max().unwrap_or(0);
    Ok(GlobalTree {
        root,
        parent: states.iter().map(|s| s.parent).collect(),
        depth: states.iter().map(|s| s.dist).collect(),
        height,
    })
}

/// Elect a leader and build the global BFS tree in one go.
pub fn build_global_tree(net: &mut Network) -> Result<GlobalTree, CongestError> {
    let leader = elect_global_leader(net)?;
    let tree = build_bfs_tree(net, leader)?;
    net.snapshot("primitives/backbone");
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::gen::{cycle, grid, path};

    #[test]
    fn bfs_tree_depths_match_centralized() {
        let g = grid(4, 5);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let t = build_bfs_tree(&mut net, 0).unwrap();
        let d = twgraph::alg::bfs_dist(&g, 0);
        assert_eq!(t.depth, d);
        assert_eq!(t.root, 0);
        assert_eq!(t.parent[0], 0);
        for v in 1..g.n() as u32 {
            assert!(g.has_edge(v, t.parent[v as usize]));
            assert_eq!(
                t.depth[v as usize],
                t.depth[t.parent[v as usize] as usize] + 1
            );
        }
    }

    #[test]
    fn leader_election_converges_to_max_uid() {
        let g = cycle(17);
        let mut net = Network::new(g, NetworkConfig::default());
        let leader = elect_global_leader(&mut net).unwrap();
        let max_uid = (0..17).map(|v| net.uid(v)).max().unwrap();
        assert_eq!(net.uid(leader), max_uid);
    }

    #[test]
    fn election_cost_near_diameter() {
        let g = path(64);
        let mut net = Network::new(g, NetworkConfig::default());
        let before = *net.metrics();
        let _ = elect_global_leader(&mut net).unwrap();
        let delta = net.metrics().since(&before);
        // Max-flood on a path finishes within ~2×diameter supersteps.
        assert!(delta.rounds <= 2 * 64 + 4, "rounds = {}", delta.rounds);
        assert!(delta.rounds >= 32, "suspiciously cheap: {}", delta.rounds);
    }

    #[test]
    fn control_pulse_charges() {
        let g = path(10);
        let mut net = Network::new(g, NetworkConfig::default());
        let t = build_bfs_tree(&mut net, 0).unwrap();
        let before = net.metrics().rounds;
        t.charge_control_pulse(&mut net);
        assert_eq!(net.metrics().rounds - before, 2 * (9 + 1));
    }

    #[test]
    fn children_consistent() {
        let g = grid(3, 3);
        let mut net = Network::new(g, NetworkConfig::default());
        let t = build_bfs_tree(&mut net, 4).unwrap();
        let ch = t.children();
        let total: usize = ch.iter().map(Vec::len).sum();
        assert_eq!(total, 8); // n−1 tree edges
        for (p, list) in ch.iter().enumerate() {
            for &c in list {
                assert_eq!(t.parent[c as usize], p as u32);
            }
        }
    }
}
