//! Distributed label construction (paper §4.2, Theorem 2).
//!
//! The recursion levels run bottom-up; all tree nodes of one depth form a
//! near-disjoint collection {G_x | x ∈ A_ℓ} processed in shared supersteps.
//! Per level the algorithm pays one generalized part-wise broadcast
//! (Corollary 3): leaves ship whole-subgraph edge lists, internal nodes
//! ship their H_x arc lists (3 words per arc — the Õ(τ⁴)-word payload that
//! yields the τ⁵ term of Theorem 2). The numeric label updates are
//! node-local computation on broadcast data (free under CONGEST).

use crate::build::{order_bottom_up, process_node, ArcList};
use crate::label::Label;
use congest_sim::{CongestError, Network};
use subgraph_ops::global::build_global_tree;
use subgraph_ops::{pa, Parts};
use treedec::decomp::NodeInfo;
use twgraph::tw::TreeDecomposition;
use twgraph::MultiDigraph;

/// Build the labeling on the simulator; returns the labels plus the rounds
/// charged for the construction (excluding the reused global backbone).
pub fn build_labels_distributed(
    net: &mut Network,
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
) -> Result<(Vec<Label>, u64), CongestError> {
    let n = inst.n();
    assert_eq!(net.n(), n);
    let start = net.metrics().rounds;
    let gtree = build_global_tree(net)?;

    let depths = td.depths();
    let mut labels: Vec<Label> = (0..n as u32).map(Label::new).collect();

    // Group tree nodes by depth, deepest first.
    let order = order_bottom_up(td);
    let mut level_nodes: Vec<Vec<usize>> = Vec::new();
    for x in order {
        let d = depths[x];
        if level_nodes.len() <= d {
            level_nodes.resize(d + 1, Vec::new());
        }
        level_nodes[d].push(x);
    }

    for level in (0..level_nodes.len()).rev() {
        let nodes = &level_nodes[level];
        if nodes.is_empty() {
            continue;
        }
        // Run the numeric step for each tree node, collecting traffic.
        let mut member_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut items_per_node: Vec<Vec<(u32, ArcList)>> = Vec::new();
        for (slot, &x) in nodes.iter().enumerate() {
            let art = process_node(inst, td, info, x, &mut labels);
            for &v in &info[x].gx() {
                member_lists[v as usize].push(slot as u32);
            }
            items_per_node.push(art.broadcast);
        }
        // Execute the level's broadcast: each contributing node ships its
        // arc list to every member of its part (BCT over Steiner trees).
        let parts = Parts::from_lists(nodes.len() as u32, member_lists);
        let roles = pa::steiner_roles(&gtree, &parts);
        // Flatten: per (graph node, part) the arcs it contributes.
        let lookup: std::collections::HashMap<(u32, u32), &ArcList> = items_per_node
            .iter()
            .enumerate()
            .flat_map(|(slot, contribs)| {
                contribs
                    .iter()
                    .map(move |(v, arcs)| ((*v, slot as u32), arcs))
            })
            .collect();
        let _ = pa::broadcast(net, &roles, |v, p| {
            lookup
                .get(&(v, p))
                .map(|arcs| arcs.to_vec())
                .unwrap_or_default()
        })?;
        gtree.charge_control_pulse(net);
    }

    let rounds = net.metrics().rounds - start;
    net.snapshot("distlabel/build");
    Ok((labels, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_labels_centralized;
    use crate::label::decode;
    use congest_sim::{Network, NetworkConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::alg::apsp_dijkstra;
    use twgraph::gen::{banded_path, ktree, random_orientation, with_random_weights};

    #[test]
    fn distributed_matches_centralized_and_truth() {
        let g = banded_path(48, 2);
        let inst = with_random_weights(&g, 10, 3);
        let cfg = SepConfig::practical(48);
        let mut rng = SmallRng::seed_from_u64(5);
        let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        let central = build_labels_centralized(&inst, &dec.td, &dec.info);

        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (dist_labels, rounds) =
            build_labels_distributed(&mut net, &inst, &dec.td, &dec.info).unwrap();
        assert_eq!(central, dist_labels);
        assert!(rounds > 0);

        let truth = apsp_dijkstra(&inst);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(decode(&dist_labels[u], &dist_labels[v]), truth[u][v]);
            }
        }
    }

    #[test]
    fn rounds_grow_gently_with_n() {
        // Doubling n on a fixed-τ family should not blow rounds up by more
        // than ~the diameter growth factor (τ²D + τ⁵ with D = Θ(n/k)).
        let cfgs = [(64usize, 1u64), (128, 2)];
        let mut measured = Vec::new();
        for (n, seed) in cfgs {
            let g = banded_path(n, 2);
            let inst = with_random_weights(&g, 10, seed);
            let cfg = SepConfig::practical(n);
            let mut rng = SmallRng::seed_from_u64(seed);
            let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
            let mut net = Network::new(g.clone(), NetworkConfig::default());
            let (_, rounds) =
                build_labels_distributed(&mut net, &inst, &dec.td, &dec.info).unwrap();
            measured.push(rounds);
        }
        assert!(
            measured[1] < measured[0] * 8,
            "rounds exploded: {measured:?}"
        );
    }

    #[test]
    fn directed_instance_distributed() {
        let g = ktree(40, 2, 8);
        let inst = random_orientation(&g, 12, 0.3, 9);
        let cfg = SepConfig::practical(40);
        let mut rng = SmallRng::seed_from_u64(6);
        let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (labels, _) = build_labels_distributed(&mut net, &inst, &dec.td, &dec.info).unwrap();
        let truth = apsp_dijkstra(&inst);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(decode(&labels[u], &labels[v]), truth[u][v]);
            }
        }
    }
}
