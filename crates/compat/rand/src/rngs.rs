//! Small, fast generators. `SmallRng` is xoshiro256++ seeded through
//! SplitMix64 — the same construction real `rand` 0.8 uses on 64-bit
//! platforms, so the statistical quality story carries over.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ (Blackman–Vigna), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 stream expansion: guarantees a non-zero state even for
        // seed 0 and decorrelates close seeds.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
