//! The `engine` bench: one full distributed SSSP pipeline — tree
//! decomposition → distance labeling → label-broadcast query — on a large
//! partial k-tree, with every stage's charged costs reported from the
//! engine's phase log and the wall-clock throughput of the arena engine
//! alongside. Writes `BENCH_engine.json`.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin engine              # n = 100_000
//! cargo run --release -p lowtw-bench --bin engine -- 20000 2   # smaller / wider
//! ```
//!
//! Positional arguments: `n` (default 100_000), `k` (default 1), `keep`
//! (default 0.5), `seed` (default 1). The default family is a partial
//! 1-tree: the deepest-n regime the superstep count (≈ 1.3·n for the
//! decomposition's per-tree-node split flows) allows in minutes; raise `k`
//! for wider-bag runs at smaller `n`.

use congest_sim::{Network, NetworkConfig, PhaseSnapshot};
use lowtw::{distlabel, treedec, twgraph};
use lowtw_bench::fmt;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, default: f64| -> f64 {
        args.get(i)
            .map(|s| s.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let n = arg(0, 100_000.0) as usize;
    let k = arg(1, 1.0) as usize;
    let keep = arg(2, 0.5);
    let seed = arg(3, 1.0) as u64;

    eprintln!("generating partial {k}-tree, n = {n}, keep = {keep}, seed = {seed} ...");
    let g = twgraph::gen::partial_ktree(n, k, keep, seed);
    let inst = twgraph::gen::with_random_weights(&g, 30, seed);
    let m = g.m();
    let mut net = Network::new(g, NetworkConfig::default());
    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(seed);

    let t = Instant::now();
    let out = treedec::decompose_distributed(&mut net, k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    let wall_decompose = t.elapsed();
    eprintln!(
        "decompose: width = {}, depth = {} ({:.1?})",
        out.td.width(),
        out.td.stats().depth,
        wall_decompose
    );

    let t = Instant::now();
    let (labels, _) = distlabel::build_labels_distributed(&mut net, &inst, &out.td, &out.info)
        .expect("label build failed");
    let wall_label = t.elapsed();
    eprintln!("label ({:.1?})", wall_label);

    let t = Instant::now();
    let (dists, _) = distlabel::sssp_distributed(&mut net, &labels, 0).expect("sssp failed");
    let wall_query = t.elapsed();
    eprintln!("query ({:.1?})", wall_query);

    // Spot-check correctness against the centralized oracle.
    let truth = twgraph::alg::dijkstra(&inst, 0);
    for v in (0..n).step_by((n / 64).max(1)) {
        assert_eq!(dists[v], truth.dist[v], "sssp mismatch at {v}");
    }

    // The per-phase table, straight from the engine's phase log.
    let phases: Vec<PhaseSnapshot> = net.phase_log().to_vec();
    println!("\n== engine bench: per-phase charged costs (n = {n}, m = {m}, k = {k}) ==");
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "phase", "rounds", "steps", "messages", "words", "charged", "congest"
    );
    for p in &phases {
        println!(
            "{:<22} {:>12} {:>10} {:>12} {:>12} {:>10} {:>8}",
            p.phase,
            fmt(p.rounds),
            fmt(p.supersteps),
            fmt(p.messages),
            fmt(p.words),
            fmt(p.charged_rounds),
            fmt(p.max_edge_words_in_superstep)
        );
    }
    let total = net.metrics();
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "total",
        fmt(total.rounds),
        fmt(total.supersteps),
        fmt(total.messages),
        fmt(total.words),
        fmt(total.charged_rounds),
        fmt(total.max_edge_words_in_superstep)
    );

    let phase_json: Vec<serde_json::Value> = phases
        .iter()
        .map(|p| {
            serde_json::json!({
                "phase": p.phase.clone(),
                "rounds": p.rounds,
                "supersteps": p.supersteps,
                "messages": p.messages,
                "words": p.words,
                "charged_rounds": p.charged_rounds,
                "max_edge_words_in_superstep": p.max_edge_words_in_superstep,
            })
        })
        .collect();
    // Microsecond precision: the old `wall_ms` name under-reported (and
    // small stages truncated to 0 entirely).
    let wall_us = serde_json::json!({
        "decompose": wall_decompose.as_micros() as u64,
        "label": wall_label.as_micros() as u64,
        "query": wall_query.as_micros() as u64,
    });
    let total_json = serde_json::json!({
        "rounds": total.rounds,
        "supersteps": total.supersteps,
        "messages": total.messages,
        "words": total.words,
        "charged_rounds": total.charged_rounds,
        "max_edge_words_in_superstep": total.max_edge_words_in_superstep,
    });
    let doc = serde_json::json!({
        "bench": "engine",
        "family": "partial_ktree",
        "n": n,
        "m": m,
        "k": k,
        "keep": keep,
        "seed": seed,
        "width": out.td.width(),
        "depth": out.td.stats().depth,
        "wall_us": wall_us,
        "phases": phase_json,
        "total": total_json,
    });
    std::fs::write(
        "BENCH_engine.json",
        serde_json::to_string(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_engine.json");
}
