//! The experiment harness: one table per claim (see DESIGN.md §5 and
//! EXPERIMENTS.md). Run all experiments or a subset:
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin tables            # everything
//! cargo run --release -p lowtw-bench --bin tables -- e2 e5   # a subset
//! ```

use congest_sim::{Network, NetworkConfig};
use lowtw::prelude::*;
use lowtw::Session;
use lowtw_bench::{fmt, ratio, table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use treedec::SepConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    if want("e1") {
        e1_headline();
    }
    if want("e2") {
        e2_separator();
    }
    if want("e3") {
        e3_decomposition();
    }
    if want("e4") {
        e4_labeling();
    }
    if want("e5") {
        e5_sssp();
    }
    if want("e6") {
        e6_cdl_q();
    }
    if want("e7") {
        e7_matching();
    }
    if want("e8") {
        e8_girth();
    }
    if want("e9") {
        e9_primitives();
    }
    if want("a1") {
        a1_pa_ablation();
    }
    if want("a2") {
        a2_pair_sampling();
    }
    if want("a3") {
        a3_constants();
    }
}

#[derive(Serialize)]
struct Rec {
    exp: &'static str,
    family: String,
    n: usize,
    tau: usize,
    d: u32,
    rounds: u64,
    extra: serde_json::Value,
}

/// E1 — the headline table of §1.2: measured rounds of the three
/// pipelines on one family as n grows.
fn e1_headline() {
    let mut rows = Vec::new();
    for &n in &[128usize, 256, 512] {
        let g = twgraph::gen::partial_ktree(n, 3, 0.7, 1);
        let d = twgraph::alg::diameter_exact(&g);
        let inst = twgraph::gen::with_random_weights(&g, 50, 1);
        let (session, td_rounds) = Session::decompose_distributed(&g, 4, 1).unwrap();
        let (labels, dl_rounds) = session.labels_distributed(&inst).unwrap();
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, q_rounds) = distlabel::sssp_distributed(&mut net, &labels, 0).unwrap();
        let directed = twgraph::gen::random_orientation(&g, 50, 0.4, 1);
        let dl2 = session.labels(&directed);
        let mut net2 = Network::new(g.clone(), NetworkConfig::default());
        let (_, girth_rounds) =
            girth::girth_directed_distributed(&mut net2, &directed, &dl2).unwrap();
        rows.push((
            vec![
                n.to_string(),
                d.to_string(),
                fmt(td_rounds),
                fmt(dl_rounds),
                fmt(q_rounds),
                fmt(girth_rounds),
            ],
            Rec {
                exp: "e1",
                family: "partial_ktree(k=3)".into(),
                n,
                tau: 3,
                d,
                rounds: td_rounds + dl_rounds,
                extra: serde_json::json!({"dl": dl_rounds, "sssp_query": q_rounds, "girth_dir": girth_rounds}),
            },
        ));
    }
    table(
        "E1 headline (partial 3-trees): rounds of decomposition / labeling / SSSP query / directed girth",
        &["n", "D", "treedec", "DL", "SSSP-q", "girth-dir"],
        &rows,
    );
}

/// E2 — Lemma 1: separator size vs the O(t²) bound, balance, and the
/// distributed cost.
fn e2_separator() {
    use treedec::sep::{sep_doubling, SepPath};
    let mut rows = Vec::new();
    for (name, g, t0) in [
        ("banded(k=2)", twgraph::gen::banded_path(512, 2), 3u64),
        ("banded(k=4)", twgraph::gen::banded_path(512, 4), 5),
        ("ktree(k=3)", twgraph::gen::ktree(512, 3, 2), 4),
        ("grid(8×64)", twgraph::gen::grid(8, 64), 9),
    ] {
        let n = g.n();
        let cfg = SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(7);
        let members = vec![true; n];
        let mu = vec![1u64; n];
        let out = sep_doubling(&g, &members, &mu, t0, &cfg, &mut rng);
        let path = match out.path {
            SepPath::Small => "small",
            SepPath::Roots(_) => "roots",
            SepPath::Cuts => "cuts",
            SepPath::Union => "union",
        };
        rows.push((
            vec![
                name.to_string(),
                n.to_string(),
                out.t_used.to_string(),
                out.separator.len().to_string(),
                cfg.size_bound(out.t_used).to_string(),
                path.to_string(),
            ],
            Rec {
                exp: "e2",
                family: name.into(),
                n,
                tau: t0 as usize - 1,
                d: 0,
                rounds: 0,
                extra: serde_json::json!({"sep": out.separator.len(), "bound": cfg.size_bound(out.t_used), "path": path}),
            },
        ));
    }
    table(
        "E2 Lemma 1: separator size ≤ O(t²) bound (centralized quality)",
        &["family", "n", "t", "|S|", "bound", "path"],
        &rows,
    );
}

/// E3 — Theorem 1: width / (τ² log n), depth / log n, rounds scaling.
fn e3_decomposition() {
    let mut rows = Vec::new();
    for (k, n) in [(2usize, 256usize), (2, 512), (2, 1024), (4, 512)] {
        let g = twgraph::gen::banded_path(n, k);
        let d = twgraph::alg::diameter_exact(&g);
        let (session, rounds) = Session::decompose_distributed(&g, k as u64 + 1, 3).unwrap();
        let stats = session.td.stats();
        let logn = (n as f64).ln();
        let width_norm = stats.width as f64 / (k as f64 * k as f64 * logn);
        let depth_norm = stats.depth as f64 / logn;
        rows.push((
            vec![
                format!("banded(k={k})"),
                n.to_string(),
                d.to_string(),
                stats.width.to_string(),
                format!("{width_norm:.2}"),
                stats.depth.to_string(),
                format!("{depth_norm:.2}"),
                fmt(rounds),
            ],
            Rec {
                exp: "e3",
                family: format!("banded(k={k})"),
                n,
                tau: k,
                d,
                rounds,
                extra: serde_json::json!({"width": stats.width, "depth": stats.depth}),
            },
        ));
    }
    table(
        "E3 Theorem 1: decomposition width/(τ²ln n), depth/ln n, distributed rounds",
        &[
            "family",
            "n",
            "D",
            "width",
            "w/(τ²ln n)",
            "depth",
            "dep/ln n",
            "rounds",
        ],
        &rows,
    );
}

/// E4 — Theorem 2: label sizes vs O(τ² log² n) and construction rounds.
fn e4_labeling() {
    let mut rows = Vec::new();
    for &n in &[128usize, 256, 512] {
        let k = 3usize;
        let g = twgraph::gen::partial_ktree(n, k, 0.7, 5);
        let inst = twgraph::gen::with_random_weights(&g, 30, 5);
        let session = Session::decompose(&g, k as u64 + 1, 5).unwrap();
        let (labels, rounds) = session.labels_distributed(&inst).unwrap();
        let max_w = labels.iter().map(|l| l.words()).max().unwrap() as u64;
        let avg_w: f64 = labels.iter().map(|l| l.words() as f64).sum::<f64>() / labels.len() as f64;
        let log2n = (n as f64).log2();
        let norm = max_w as f64 / (k as f64 * k as f64 * log2n * log2n);
        // Exactness spot check.
        let truth = twgraph::alg::dijkstra(&inst, 0).dist;
        let ok = (0..n).all(|v| decode(&labels[0], &labels[v]) == truth[v]);
        assert!(ok, "decoder must be exact");
        rows.push((
            vec![
                n.to_string(),
                format!("{avg_w:.0}"),
                max_w.to_string(),
                format!("{norm:.2}"),
                fmt(rounds),
                "exact".into(),
            ],
            Rec {
                exp: "e4",
                family: "partial_ktree(k=3)".into(),
                n,
                tau: k,
                d: 0,
                rounds,
                extra: serde_json::json!({"max_words": max_w, "avg_words": avg_w}),
            },
        ));
    }
    table(
        "E4 Theorem 2: label size (words) vs τ²log²n and construction rounds",
        &[
            "n",
            "avg|la|",
            "max|la|",
            "max/(τ²log²n)",
            "rounds",
            "check",
        ],
        &rows,
    );
}

/// E5 — fully polynomial SSSP vs Bellman–Ford: amortization over queries.
fn e5_sssp() {
    let mut rows = Vec::new();
    for &n in &[256usize, 512, 1024] {
        let g = twgraph::gen::banded_path(n, 2);
        let d = twgraph::alg::diameter_exact(&g);
        let inst = twgraph::gen::with_random_weights(&g, 40, 9);
        let session = Session::decompose(&g, 3, 9).unwrap();
        let (labels, dl_rounds) = session.labels_distributed(&inst).unwrap();
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, q_rounds) = distlabel::sssp_distributed(&mut net, &labels, 0).unwrap();
        let mut net2 = Network::new(g.clone(), NetworkConfig::default());
        let (_, bf_rounds) = baselines::bellman_ford_distributed(&mut net2, &inst, 0).unwrap();
        // Queries needed before the labeling pays off.
        let breakeven = if bf_rounds > q_rounds {
            (dl_rounds / (bf_rounds - q_rounds)).saturating_add(1)
        } else {
            u64::MAX
        };
        rows.push((
            vec![
                n.to_string(),
                d.to_string(),
                fmt(dl_rounds),
                fmt(q_rounds),
                fmt(bf_rounds),
                if breakeven == u64::MAX {
                    "-".into()
                } else {
                    breakeven.to_string()
                },
            ],
            Rec {
                exp: "e5",
                family: "banded(k=2)".into(),
                n,
                tau: 2,
                d,
                rounds: dl_rounds,
                extra: serde_json::json!({"query": q_rounds, "bford": bf_rounds, "breakeven_queries": breakeven}),
            },
        ));
    }
    table(
        "E5 SSSP: one-time labeling + per-query broadcast vs per-source Bellman–Ford",
        &[
            "n",
            "D",
            "DL once",
            "per-query",
            "B-F per-source",
            "break-even q",
        ],
        &rows,
    );
}

/// E6 — Theorem 3: CDL rounds vs |Q| (count-c walks).
fn e6_cdl_q() {
    use stateful_walks::{CdlLabeling, CountWalk};
    let n = 96usize;
    let g = twgraph::gen::banded_path(n, 2);
    let mut rng = SmallRng::seed_from_u64(4);
    use rand::Rng;
    let inst = twgraph::MultiDigraph::from_undirected_labeled(
        n,
        g.edges().map(|(u, v)| (u, v, 1, rng.gen_range(0..2))),
    );
    let session = Session::decompose(&g, 3, 4).unwrap();
    let mut rows = Vec::new();
    let mut prev: Option<(usize, u64)> = None;
    for c in [1u32, 2, 4, 8] {
        let constraint = CountWalk { c };
        let q = constraint.c as usize + 3;
        let (_, metrics) = CdlLabeling::build_distributed(
            &inst,
            &constraint,
            &session.td,
            &session.info,
            NetworkConfig::default(),
        )
        .unwrap();
        let exp = prev.map_or("-".into(), |(q0, r0)| {
            format!(
                "{:.2}",
                (metrics.rounds as f64 / r0 as f64).ln() / (q as f64 / q0 as f64).ln()
            )
        });
        rows.push((
            vec![c.to_string(), q.to_string(), fmt(metrics.rounds), exp],
            Rec {
                exp: "e6",
                family: "count-c walks".into(),
                n,
                tau: 2,
                d: 0,
                rounds: metrics.rounds,
                extra: serde_json::json!({"Q": q}),
            },
        ));
        prev = Some((q, metrics.rounds));
    }
    table(
        "E6 Theorem 3: CDL(count-c) rounds vs |Q| = c+3 (fitted local exponent)",
        &["c", "|Q|", "rounds", "exp vs prev"],
        &rows,
    );
}

/// E7 — Theorem 4: matching correctness + rounds vs the Õ(s_max) baseline.
fn e7_matching() {
    let mut rows = Vec::new();
    for &n_side in &[32usize, 64, 128] {
        let (g, side) = twgraph::gen::bipartite_banded(n_side, n_side, 2, 0.5, 3);
        let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
        let session = Session::decompose(&g, 3, 3).unwrap();
        let ours = session
            .max_matching(&inst, bmatch::MatchMode::Centralized)
            .unwrap();
        let hk = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
        assert_eq!(ours.size(), hk);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, base_rounds) =
            baselines::matching_distributed_baseline(&mut net, &g, &side).unwrap();
        // Faithful distributed Theorem-4 run only at the small size (it
        // rebuilds a CDL per augmentation).
        let t4_rounds = if n_side <= 32 {
            session
                .max_matching(&inst, bmatch::MatchMode::Distributed)
                .unwrap()
                .rounds
        } else {
            0
        };
        rows.push((
            vec![
                (2 * n_side).to_string(),
                ours.size().to_string(),
                ours.augmentations.to_string(),
                ours.attempts.to_string(),
                fmt(base_rounds),
                if t4_rounds > 0 {
                    fmt(t4_rounds)
                } else {
                    "-".into()
                },
            ],
            Rec {
                exp: "e7",
                family: "bipartite_banded".into(),
                n: 2 * n_side,
                tau: 5,
                d: 0,
                rounds: t4_rounds,
                extra: serde_json::json!({"size": ours.size(), "baseline_rounds": base_rounds}),
            },
        ));
    }
    table(
        "E7 Theorem 4: exact matching (== Hopcroft–Karp) vs alternating-BFS baseline",
        &["n", "|M|", "augs", "attempts", "baseline rnds", "thm4 rnds"],
        &rows,
    );
}

/// E8 — Theorem 5 + the girth/diameter separation family.
fn e8_girth() {
    let mut rows = Vec::new();
    for bits in [3usize, 4, 5] {
        let g = twgraph::gen::bit_gadget(bits);
        let n = g.n();
        let inst = twgraph::gen::with_unit_weights(&g);
        let truth = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 2 * bits as u64 + 2, 6).unwrap();
        let cfg = girth::GirthConfig {
            trials_per_c: 4,
            seed: 8,
            measure_distributed: true,
        };
        let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
        assert_eq!(run.girth, truth);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, apsp_rounds) = baselines::apsp_pipelined_distributed(&mut net).unwrap();
        rows.push((
            vec![
                format!("gadget({bits})"),
                n.to_string(),
                run.girth.to_string(),
                fmt(run.rounds_per_trial),
                fmt(apsp_rounds),
                ratio(apsp_rounds, n as u64),
            ],
            Rec {
                exp: "e8",
                family: format!("bit_gadget({bits})"),
                n,
                tau: 2 * bits + 1,
                d: 4,
                rounds: run.rounds_per_trial,
                extra: serde_json::json!({"girth": run.girth, "apsp_rounds": apsp_rounds, "trials": run.trials}),
            },
        ));
    }
    table(
        "E8 Theorem 5: girth per-trial rounds vs APSP(diameter) rounds on the constant-D family",
        &[
            "family",
            "n",
            "girth",
            "girth rnds/trial",
            "APSP rnds",
            "APSP/n",
        ],
        &rows,
    );

    // (b) fixed τ, growing n: the separation *trend* — the diameter
    // baseline is forced to Θ(n) while the girth pipeline's per-trial
    // cost follows Õ(τ²D + τ⁵) with D = Θ(log n).
    let mut rows = Vec::new();
    for &n in &[48usize, 96, 192] {
        let g = twgraph::gen::partial_ktree(n, 2, 0.8, 2);
        let d = twgraph::alg::diameter_exact(&g);
        let inst = twgraph::gen::with_random_weights(&g, 5, 2);
        let truth = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 3, 2).unwrap();
        let cfg = girth::GirthConfig {
            trials_per_c: 3,
            seed: 21,
            measure_distributed: true,
        };
        let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
        assert_eq!(run.girth, truth);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (_, apsp_rounds) = baselines::apsp_pipelined_distributed(&mut net).unwrap();
        rows.push((
            vec![
                n.to_string(),
                d.to_string(),
                fmt(run.rounds_per_trial),
                fmt(apsp_rounds),
                ratio(run.rounds_per_trial, apsp_rounds),
            ],
            Rec {
                exp: "e8b",
                family: "partial_ktree(k=2)".into(),
                n,
                tau: 2,
                d,
                rounds: run.rounds_per_trial,
                extra: serde_json::json!({"apsp_rounds": apsp_rounds}),
            },
        ));
    }
    table(
        "E8b separation trend at fixed τ = 2: girth rnds/trial vs APSP rnds as n grows",
        &["n", "D", "girth rnds/trial", "APSP rnds", "girth/APSP"],
        &rows,
    );
}

/// E9 — the primitive layer: PA congestion vs τ, MVC vs t, BCT vs h.
fn e9_primitives() {
    use subgraph_ops::global::build_global_tree;
    use subgraph_ops::mvc::{batch_min_vertex_cut, CutInstance};
    use subgraph_ops::{pa, Parts};

    // (a) PA congestion vs k on banded paths with interleaved parts.
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let n = 512usize;
        let g = twgraph::gen::banded_path(n, k);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_global_tree(&mut net).unwrap();
        let labels: Vec<Option<u32>> = (0..n).map(|v| Some((v / 16) as u32)).collect();
        let parts = Parts::from_labels(&labels);
        let roles = pa::steiner_roles(&tree, &parts);
        let before = *net.metrics();
        let _ =
            pa::aggregate_and_share(&mut net, &roles, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
        let delta = net.metrics().since(&before);
        rows.push((
            vec![
                k.to_string(),
                fmt(delta.rounds),
                fmt(net.metrics().max_edge_words_in_superstep),
            ],
            Rec {
                exp: "e9a",
                family: format!("banded(k={k})"),
                n,
                tau: k,
                d: 0,
                rounds: delta.rounds,
                extra: serde_json::json!({"congestion": net.metrics().max_edge_words_in_superstep}),
            },
        ));
    }
    table(
        "E9a Lemma 9: PA rounds and peak edge congestion vs τ (32 parts on banded paths)",
        &["k", "PA rounds", "peak congestion"],
        &rows,
    );

    // (b) MVC rounds vs t on grids.
    let mut rows = Vec::new();
    for rows_dim in [3usize, 5, 7] {
        let g = twgraph::gen::grid(rows_dim, 24);
        let n = g.n();
        let mut net = Network::new(g, NetworkConfig::default());
        let xs: Vec<u32> = (0..rows_dim as u32).map(|r| r * 24).collect();
        let ys: Vec<u32> = (0..rows_dim as u32).map(|r| r * 24 + 23).collect();
        let before = *net.metrics();
        let res = batch_min_vertex_cut(
            &mut net,
            &[CutInstance {
                members: None,
                sources: xs,
                sinks: ys,
            }],
            rows_dim + 1,
        )
        .unwrap();
        let delta = net.metrics().since(&before);
        let cut = match &res[0] {
            subgraph_ops::mvc::CutResult::Cut(c) => c.len(),
            subgraph_ops::mvc::CutResult::TooBig => usize::MAX,
        };
        rows.push((
            vec![rows_dim.to_string(), cut.to_string(), fmt(delta.rounds)],
            Rec {
                exp: "e9b",
                family: format!("grid({rows_dim}×24)"),
                n,
                tau: rows_dim,
                d: 0,
                rounds: delta.rounds,
                extra: serde_json::json!({"cut": cut}),
            },
        ));
    }
    table(
        "E9b Corollary 2: MVC rounds vs cut size t (grid columns)",
        &["grid rows (=cut)", "|cut|", "rounds"],
        &rows,
    );

    // (c) BCT(h) vs h.
    let mut rows = Vec::new();
    let n = 256usize;
    for h in [1usize, 4, 16, 64] {
        let g = twgraph::gen::banded_path(n, 2);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_global_tree(&mut net).unwrap();
        let parts = Parts::from_labels(&vec![Some(0u32); n]);
        let roles = pa::steiner_roles(&tree, &parts);
        let before = *net.metrics();
        let _ = pa::broadcast(&mut net, &roles, |v, _p| {
            if (v as usize) < h {
                vec![v as u64]
            } else {
                Vec::new()
            }
        })
        .unwrap();
        let delta = net.metrics().since(&before);
        rows.push((
            vec![h.to_string(), fmt(delta.rounds)],
            Rec {
                exp: "e9c",
                family: "banded(k=2)".into(),
                n,
                tau: 2,
                d: 0,
                rounds: delta.rounds,
                extra: serde_json::json!({"h": h}),
            },
        ));
    }
    table(
        "E9c Corollary 3: BCT(h) rounds vs message count h",
        &["h", "rounds"],
        &rows,
    );
}

/// A1 — Steiner-PA vs naive within-part flooding on parts whose own
/// diameter exceeds D.
fn a1_pa_ablation() {
    use subgraph_ops::bfs::part_bfs_trees;
    use subgraph_ops::flow::{downflow, upflow};
    use subgraph_ops::global::build_global_tree;
    use subgraph_ops::{pa, Parts};
    // Comb-like grid: rows are parts; the grid's diameter is rows+cols,
    // while a row's internal diameter is cols.
    let (r, c) = (16usize, 64usize);
    let g = twgraph::gen::grid(r, c);
    let labels: Vec<Option<u32>> = (0..r * c).map(|v| Some((v / c) as u32)).collect();
    let parts = Parts::from_labels(&labels);

    // Steiner.
    let mut net1 = Network::new(g.clone(), NetworkConfig::default());
    let tree = build_global_tree(&mut net1).unwrap();
    let roles = pa::steiner_roles(&tree, &parts);
    let before = *net1.metrics();
    let _ = pa::aggregate_and_share(&mut net1, &roles, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
    let steiner = net1.metrics().since(&before).rounds;

    // Naive: per-part BFS trees + up/down flow on them.
    let mut net2 = Network::new(g.clone(), NetworkConfig::default());
    let roots: Vec<(u32, u32)> = (0..r as u32).map(|p| (p, p * c as u32)).collect();
    let before = *net2.metrics();
    let ptrees = part_bfs_trees(&mut net2, &parts, &roots).unwrap();
    let up = upflow(&mut net2, &ptrees, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
    let totals: std::collections::HashMap<u32, u64> = up.roots.into_iter().collect();
    let _ = downflow(&mut net2, &ptrees, |p, _| {
        totals.get(&p).copied().into_iter().collect::<Vec<u64>>()
    })
    .unwrap();
    let naive = net2.metrics().since(&before).rounds;

    table(
        "A1 ablation: Steiner-restricted PA vs naive within-part flooding (16×64 grid, rows as parts)",
        &["engine", "rounds"],
        &[
            (
                vec!["steiner".into(), fmt(steiner)],
                serde_json::json!({"exp": "a1", "engine": "steiner", "rounds": steiner}),
            ),
            (
                vec!["naive".into(), fmt(naive)],
                serde_json::json!({"exp": "a1", "engine": "naive", "rounds": naive}),
            ),
        ],
    );
}

/// A2 — step-4 pair sampling width: success path and separator size as the
/// sample count shrinks/grows.
fn a2_pair_sampling() {
    use treedec::sep::sep_doubling;
    let g = twgraph::gen::banded_path(768, 3);
    let n = g.n();
    let mut rows = Vec::new();
    for pairs in [2usize, 12, 48] {
        let mut cfg = SepConfig::practical(n);
        cfg.sampled_pairs = pairs;
        let mut rng = SmallRng::seed_from_u64(11);
        let out = sep_doubling(&g, &vec![true; n], &vec![1u64; n], 4, &cfg, &mut rng);
        rows.push((
            vec![
                pairs.to_string(),
                out.separator.len().to_string(),
                format!("{:?}", out.path),
                out.t_used.to_string(),
            ],
            serde_json::json!({"exp": "a2", "pairs": pairs, "sep": out.separator.len()}),
        ));
    }
    table(
        "A2 ablation: sampled pair count in Sep step 4",
        &["pairs", "|S|", "path", "t"],
        &rows,
    );
}

/// A3 — paper vs practical constants.
fn a3_constants() {
    use treedec::sep::sep_doubling;
    let g = twgraph::gen::banded_path(600, 2);
    let n = g.n();
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("paper", SepConfig::paper(n)),
        ("practical", SepConfig::practical(n)),
    ] {
        let mut rng = SmallRng::seed_from_u64(13);
        let out = sep_doubling(&g, &vec![true; n], &vec![1u64; n], 3, &cfg, &mut rng);
        rows.push((
            vec![
                name.to_string(),
                out.separator.len().to_string(),
                format!("{:?}", out.path),
                out.t_used.to_string(),
            ],
            serde_json::json!({"exp": "a3", "cfg": name, "sep": out.separator.len()}),
        ));
    }
    table(
        "A3 ablation: paper constants vs practical constants (n = 600, k = 2)",
        &["constants", "|S|", "path", "t"],
        &rows,
    );
}

use lowtw::{baselines, bmatch, distlabel, girth, stateful_walks, treedec, twgraph};
