//! # scenarios — the scenario corpus and unified workload harness
//!
//! The paper's claim is parameterized: every pipeline in this workspace
//! (SSSP, distance labeling, girth, matching, stateful walks, the
//! label-serving query engine, incremental update maintenance with
//! epoch-versioned serving, small-capacity max-flow between terminal
//! pairs, subgraph counting, and FO-property checking) stays fully
//! polynomial *for any* low-treewidth input. This crate makes that claim
//! testable as a cross-product:
//!
//! * [`registry`] — a [`Scenario`] names a seeded graph [`Family`] with a
//!   declared treewidth bound and a [`WeightModel`]; [`corpus`] is the
//!   registered set (series-parallel, cactus, Halin, rings of cliques,
//!   disconnected multi-component mixes, heavy-tailed weights, the legacy
//!   families, and an unbounded G(n, p) control).
//! * [`pipeline`] — the [`Pipeline`] trait wraps each end-to-end pipeline
//!   behind one uniform `run(&Scenario) -> CellReport` interface. Every
//!   run decomposes each connected component, executes the distributed
//!   (or charged-virtual) machinery, and **asserts equality against the
//!   centralized oracles in [`baselines::oracles`]** — a returned report
//!   is a verified report.
//! * [`runner`] — component splitting plus [`run_matrix`], the single
//!   driver behind the `scenario_matrix` differential test suite, the
//!   metamorphic test layer, and the `scenarios` bench bin
//!   (`BENCH_scenarios.json`).
//! * [`report`] — [`CellReport`] / [`MetricsTotal`]: outputs, charged
//!   metrics under the parallel-composition rule, and per-phase
//!   [`congest_sim::PhaseSnapshot`] logs.
//!
//! ```
//! use scenarios::{corpus, all_pipelines};
//!
//! let sc = &corpus()[0];
//! let p = &all_pipelines()[0];
//! // Panics if the cell diverges from its oracle; simulator errors are typed.
//! let rep = p.run(sc).unwrap();
//! assert!(rep.checked > 0 && rep.metrics.rounds > 0);
//! ```

pub mod pipeline;
pub mod registry;
pub mod report;
pub mod runner;

pub use pipeline::{
    all_pipelines, update_mixes, CountingPipeline, DistLabelPipeline, FoPipeline, GirthPipeline,
    MatchingPipeline, MaxflowPipeline, Pipeline, ServePipeline, SsspPipeline, UpdateMix,
    UpdatePipeline, WalksPipeline,
};
pub use registry::{corpus, Family, Scenario, WeightModel};
pub use report::{fold_checksum, CellError, CellFailure, CellReport, MetricsTotal};
pub use runner::{run_cell, run_matrix, split_components, Part};
