//! Typed errors for model violations.
//!
//! The engine used to panic on a CONGEST violation; library callers now get
//! a typed [`CongestError`] instead and decide themselves whether to abort,
//! so panics stay confined to `#[cfg(test)]` code.

use std::fmt;

/// A violation of the CONGEST simulation model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestError {
    /// A node emitted a message to a vertex it shares no edge with.
    NonNeighborSend {
        /// The sending node.
        from: u32,
        /// The (non-adjacent) target.
        to: u32,
    },
    /// A scoped superstep delivered a message to a node outside the active
    /// set (see [`crate::Network::superstep_on`]).
    InactiveRecipient {
        /// The sending node.
        from: u32,
        /// The target outside the active set.
        to: u32,
    },
    /// A virtual edge maps onto a non-edge of the physical graph — an
    /// unsimulatable virtual link (see [`crate::EdgeProjection::from_hosts`]).
    UnsimulatableEdge {
        /// Physical endpoint the virtual lo-endpoint maps to.
        u: u32,
        /// Physical endpoint the virtual hi-endpoint maps to.
        v: u32,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CongestError::NonNeighborSend { from, to } => {
                write!(f, "CONGEST violation: {from} sent to non-neighbor {to}")
            }
            CongestError::InactiveRecipient { from, to } => {
                write!(
                    f,
                    "scoped superstep: {from} sent to {to} outside the active set"
                )
            }
            CongestError::UnsimulatableEdge { u, v } => {
                write!(f, "virtual edge maps to non-edge ({u},{v})")
            }
        }
    }
}

impl std::error::Error for CongestError {}
