//! PA / BCT / SLE — part-wise aggregation, multi-source broadcast and
//! leader election over Steiner-restricted shortcut trees.
//!
//! [`steiner_roles`] assigns each part the minimal subtree of the global
//! BFS tree spanning its members ("tree-restricted shortcuts", the
//! substitution documented in DESIGN.md §4.1); the flow engines then move
//! the data with measured cost. The setup itself is charged one control
//! pulse — the real \[HIZ16\] construction costs Õ(τD) rounds once, which the
//! experiments account separately (the tree is built once and reused).

use crate::flow::{downflow, upflow, UpflowResult};
use crate::global::GlobalTree;
use crate::parts::Parts;
use crate::roles::{ParentMap, TreeRoles};
use congest_sim::{CongestError, Network, WireMsg};
use std::collections::HashMap;

/// Compute per-part Steiner-subtree roles on the global BFS tree.
///
/// For each part: the union of the members' root paths, trimmed above the
/// topmost branching/member node. Nodes on the subtree that are not members
/// are relays.
pub fn steiner_roles(tree: &GlobalTree, parts: &Parts) -> TreeRoles {
    let n = tree.parent.len();
    let nodes_of = parts.nodes_of_parts();
    let mut maps: Vec<ParentMap> = Vec::with_capacity(nodes_of.len());
    for (p, members) in nodes_of.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        // Union of root paths.
        let mut marked: HashMap<u32, bool> = HashMap::new(); // node -> is member
        for &m in members {
            marked.insert(m, true);
        }
        for &m in members {
            let mut cur = m;
            while tree.parent[cur as usize] != cur {
                let par = tree.parent[cur as usize];
                if marked.contains_key(&par) {
                    break;
                }
                marked.insert(par, false);
                cur = par;
            }
        }
        // Count marked children to locate the Steiner top.
        let mut marked_children: HashMap<u32, Vec<u32>> = HashMap::new();
        for &v in marked.keys() {
            let par = tree.parent[v as usize];
            if par != v && marked.contains_key(&par) {
                marked_children.entry(par).or_default().push(v);
            }
        }
        // Trim the chain of non-member single-child nodes from the top.
        // The top of the marked set is the shallowest marked node.
        let mut top = *marked
            .keys()
            .min_by_key(|&&v| (tree.depth[v as usize], v))
            .unwrap();
        loop {
            let is_member = marked[&top];
            let ch = marked_children.get(&top).map_or(&[][..], |c| c.as_slice());
            if !is_member && ch.len() == 1 {
                let next = ch[0];
                marked.remove(&top);
                top = next;
            } else {
                break;
            }
        }
        let mut entries: Vec<(u32, u32, bool)> = marked
            .iter()
            .map(|(&v, &is_member)| {
                let par = if v == top { v } else { tree.parent[v as usize] };
                (v, par, !is_member)
            })
            .collect();
        // `marked` iterates in hash order; pin the entry order (unique per
        // vertex) so role construction never depends on hasher state.
        entries.sort_unstable();
        maps.push((p as u32, entries));
    }
    TreeRoles::from_parent_maps(n, maps)
}

/// PA: aggregate `value(v, part)` over every part with the associative,
/// commutative `combine`; every member (and relay) learns the part total.
/// Returns per node the `(part, total)` pairs, plus the raw root results.
pub fn aggregate_and_share<V>(
    net: &mut Network,
    roles: &TreeRoles,
    value: impl Fn(u32, u32) -> Option<V> + Sync,
    combine: impl Fn(V, V) -> V + Sync + Send + Copy,
) -> Result<Vec<Vec<(u32, V)>>, CongestError>
where
    V: WireMsg + Sync + std::fmt::Debug,
{
    let up = upflow(net, roles, value, combine)?;
    let totals: HashMap<u32, V> = up.roots.iter().cloned().collect();
    downflow(net, roles, |part, _root| {
        totals.get(&part).into_iter().cloned().collect()
    })
}

/// PA, root results only (when no share-back is needed).
pub fn aggregate<V>(
    net: &mut Network,
    roles: &TreeRoles,
    value: impl Fn(u32, u32) -> Option<V> + Sync,
    combine: impl Fn(V, V) -> V + Sync + Send,
) -> Result<UpflowResult<V>, CongestError>
where
    V: WireMsg + Sync + std::fmt::Debug,
{
    upflow(net, roles, value, combine)
}

/// SLE: per-part leader election among candidate nodes. Every member learns
/// the elected leader (the candidate with maximum `(uid)`); parts without
/// candidates elect nobody. Returns per node the `(part, leader)` pairs.
pub fn elect_leaders(
    net: &mut Network,
    roles: &TreeRoles,
    candidate: impl Fn(u32, u32) -> bool + Sync,
) -> Result<Vec<Vec<(u32, u32)>>, CongestError> {
    let uids: Vec<u64> = (0..net.n() as u32).map(|v| net.uid(v)).collect();
    let shared = aggregate_and_share(
        net,
        roles,
        |v, p| {
            if candidate(v, p) {
                Some((uids[v as usize], v))
            } else {
                None
            }
        },
        |a: (u64, u32), b: (u64, u32)| if a.0 >= b.0 { a } else { b },
    )?;
    Ok(shared
        .into_iter()
        .map(|list| list.into_iter().map(|(p, (_uid, v))| (p, v)).collect())
        .collect())
}

/// BCT(h): every part's designated sources contribute items; all members
/// receive all of the part's items (paper Corollary 3). Implemented as a
/// concatenating upflow followed by a downflow — at most twice the optimal
/// schedule, with measured congestion.
pub fn broadcast<V>(
    net: &mut Network,
    roles: &TreeRoles,
    items: impl Fn(u32, u32) -> Vec<V> + Sync,
) -> Result<Vec<Vec<(u32, V)>>, CongestError>
where
    V: WireMsg + Sync + std::fmt::Debug,
{
    let up = upflow(
        net,
        roles,
        |v, p| {
            let mine = items(v, p);
            if mine.is_empty() {
                None
            } else {
                Some(mine)
            }
        },
        |mut a: Vec<V>, mut b: Vec<V>| {
            a.append(&mut b);
            a
        },
    )?;
    let all: HashMap<u32, Vec<V>> = up.roots.into_iter().collect();
    downflow(net, roles, |part, _root| {
        all.get(&part).cloned().unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::build_bfs_tree;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::gen::{banded_path, grid, path};

    fn two_parts_on_path() -> (Network, TreeRoles, Parts) {
        // Path of 8; parts = {0..3}, {4..7} — vertex disjoint.
        let g = path(8);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_bfs_tree(&mut net, 0).unwrap();
        let labels: Vec<Option<u32>> = (0..8).map(|v| Some((v >= 4) as u32)).collect();
        let parts = Parts::from_labels(&labels);
        let roles = steiner_roles(&tree, &parts);
        roles.validate().unwrap();
        (net, roles, parts)
    }

    #[test]
    fn steiner_tree_spans_members_only_plus_relays() {
        let (_net, roles, _parts) = two_parts_on_path();
        // Part 0 = {0..3} is contiguous: no relays needed.
        for v in 0..4u32 {
            let r = roles.role_of(v, 0).unwrap();
            assert!(!r.relay);
        }
        for v in 4..8u32 {
            assert!(roles.role_of(v, 0).is_none());
        }
        // Part 1 = {4..7}: also contiguous in the BFS tree of a path.
        for v in 4..8u32 {
            assert!(!roles.role_of(v, 1).unwrap().relay);
        }
    }

    #[test]
    fn aggregate_sums_per_part() {
        let (mut net, roles, _parts) = two_parts_on_path();
        let shared =
            aggregate_and_share(&mut net, &roles, |v, _p| Some(v as u64), |a, b| a + b).unwrap();
        // Part 0: 0+1+2+3 = 6; part 1: 4+5+6+7 = 22.
        for sv in shared.iter().take(4) {
            assert_eq!(*sv, vec![(0, 6)]);
        }
        for sv in shared.iter().take(8).skip(4) {
            assert_eq!(*sv, vec![(1, 22)]);
        }
    }

    #[test]
    fn steiner_relays_bridge_disconnected_members() {
        // Grid 3x3; part = the four corners (not adjacent): Steiner tree
        // must include relay nodes, and aggregation must still work.
        let g = grid(3, 3);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_bfs_tree(&mut net, 4).unwrap();
        let corners = [0u32, 2, 6, 8];
        let labels: Vec<Option<u32>> = (0..9).map(|v| corners.contains(&v).then_some(0)).collect();
        let parts = Parts::from_labels(&labels);
        let roles = steiner_roles(&tree, &parts);
        roles.validate().unwrap();
        let up = aggregate(&mut net, &roles, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
        assert_eq!(up.roots, vec![(0, 4)]);
        // Relays exist and carry no value.
        let relay_count: usize = roles
            .roles
            .iter()
            .flat_map(|l| l.iter())
            .filter(|r| r.relay)
            .count();
        assert!(relay_count > 0);
    }

    #[test]
    fn leaders_are_members() {
        let (mut net, roles, parts) = two_parts_on_path();
        let leaders = elect_leaders(&mut net, &roles, |_v, _p| true).unwrap();
        for v in 0..8u32 {
            for &(p, leader) in &leaders[v as usize] {
                assert!(parts.contains(leader, p), "leader {leader} not in part {p}");
            }
        }
        // Every member of a part agrees on its leader.
        let l0: Vec<u32> = (0..4).map(|v| leaders[v][0].1).collect();
        assert!(l0.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn broadcast_collects_all_sources() {
        let (mut net, roles, _parts) = two_parts_on_path();
        let got = broadcast(&mut net, &roles, |v, _p| {
            if v % 2 == 0 {
                vec![v as u64]
            } else {
                Vec::new()
            }
        })
        .unwrap();
        // Part 0 sources: 0, 2. Every member of part 0 receives both.
        for gv in got.iter().take(4) {
            let mut items: Vec<u64> = gv.iter().map(|&(_, x)| x).collect();
            items.sort_unstable();
            assert_eq!(items, vec![0, 2]);
        }
    }

    #[test]
    fn measured_congestion_reported() {
        // Many interleaved parts on a banded path: congestion should stay
        // well below the part count (the Steiner trees are local).
        let g = banded_path(64, 2);
        let mut net = Network::new(g, NetworkConfig::default());
        let tree = build_bfs_tree(&mut net, 0).unwrap();
        let labels: Vec<Option<u32>> = (0..64).map(|v| Some(v / 8)).collect();
        let parts = Parts::from_labels(&labels);
        let roles = steiner_roles(&tree, &parts);
        let before = *net.metrics();
        let _ = aggregate_and_share(&mut net, &roles, |_v, _p| Some(1u64), |a, b| a + b).unwrap();
        let d = net.metrics().since(&before);
        assert!(d.rounds > 0);
        // 8 parts of 8 contiguous nodes: peak congestion stays small.
        assert!(
            net.metrics().max_edge_words_in_superstep <= 8,
            "congestion {}",
            net.metrics().max_edge_words_in_superstep
        );
    }
}
