//! Offline stand-in for `serde_json` (1.x API subset): [`Value`],
//! [`to_string`], [`from_str`], and a [`json!`] macro covering flat
//! objects, arrays and scalars — the shapes the experiment harness emits
//! and reads back (committed `BENCH_*.json` baselines).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers the workspace produces are machine ints or floats;
    /// a signed/unsigned split mirrors serde_json's `Number` closely enough.
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `u64` if it is a non-negative integer (mirrors
    /// `serde_json::Value::as_u64`, including `Int`→`u64` promotion).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(x) => Some(x),
            Value::UInt(x) if x <= i64::MAX as u64 => Some(x as i64),
            _ => None,
        }
    }

    /// The value as `f64` if it is any JSON number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::Int(x) => Some(x as f64),
            Value::UInt(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries if it is an object (insertion order).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Object field lookup without the `Null` fallback of `Index`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` iff the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(x) => out.push_str(&x.to_string()),
            Value::UInt(x) => out.push_str(&x.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => serde::escape_str_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::escape_str_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

impl serde::Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        self.write_into(out);
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::UInt(x as u64) }
        }
    )*};
}
macro_rules! impl_from_int {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::Int(x as i64) }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::Float(x as f64)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Value {
        Value::String(x.to_string())
    }
}

impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::String(x)
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(xs: Vec<T>) -> Value {
        Value::Array(xs.into_iter().map(Value::from).collect())
    }
}

static NULL: Value = Value::Null;

/// `value["key"]` on objects, mirroring `serde_json`: a missing key (or a
/// non-object receiver) yields `Value::Null` rather than panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// `value["key"] = v` on objects, mirroring `serde_json`: inserts the key
/// if absent, treats a `Null` receiver as an empty object, and panics on
/// scalar receivers (as the real crate does).
impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            panic!("cannot index-assign into a scalar Value");
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[pos].1;
        }
        entries.push((key.to_string(), Value::Null));
        &mut entries.last_mut().unwrap().1
    }
}

/// Serialization/deserialization error. Serialization through the
/// stand-in is infallible (the signature mirrors `serde_json::to_string`
/// so call sites keep their `?`/`unwrap()`); parsing reports the byte
/// offset and cause of the first malformed construct.
#[derive(Debug)]
pub struct Error {
    msg: Option<String>,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.msg {
            Some(m) => f.write_str(m),
            None => f.write_str("serde_json stand-in error (unreachable)"),
        }
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Parse a JSON document into a [`Value`]. Covers the full JSON grammar
/// the serializer above can emit (objects, arrays, strings with escapes,
/// integers, floats, booleans, `null`); numbers parse as `UInt`/`Int`
/// when integral and in range, `Float` otherwise — so serialize → parse
/// round-trips the workspace's committed `BENCH_*.json` exactly.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: Some(format!("{msg} at byte {}", self.pos)),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the
                            // serializer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Supports the forms the
/// workspace uses: flat `{"key": expr, ...}` objects, `[expr, ...]` arrays,
/// `null`, and bare expressions convertible via `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($val) ),* ])
    };
    ($val:expr) => { $crate::Value::from($val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_rendering() {
        let v = json!({
            "s": "he said \"hi\"",
            "n": 3u64,
            "neg": -4i32,
            "f": 2.5f64,
            "b": true,
            "null": Value::Null,
            "arr": vec![1u32, 2],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"s":"he said \"hi\"","n":3,"neg":-4,"f":2.5,"b":true,"null":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn nested_values_compose() {
        let inner = json!({"k": 1u64});
        let outer = json!({"inner": inner, "tag": "x"});
        assert_eq!(to_string(&outer).unwrap(), r#"{"inner":{"k":1},"tag":"x"}"#);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = json!({
            "s": "he said \"hi\" \\ / \n",
            "n": 3u64,
            "neg": -4i32,
            "big": u64::MAX,
            "f": 2.5f64,
            "b": true,
            "null": Value::Null,
            "arr": vec![1u32, 2],
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = from_str(" { \"a\" : [ 1 , { \"b\" : null } ] , \"c\" : -2.5e1 } ").unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 2);
        assert_eq!(v["a"].as_array().unwrap()[0].as_u64(), Some(1));
        assert!(v["a"].as_array().unwrap()[1]["b"].is_null());
        assert_eq!(v["c"].as_f64(), Some(-25.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn accessors_follow_serde_json() {
        let v = json!({"u": 7u64, "i": -7i64, "f": 1.5f64, "s": "x", "b": false});
        assert_eq!(v["u"].as_u64(), Some(7));
        assert_eq!(v["u"].as_i64(), Some(7));
        assert_eq!(v["i"].as_u64(), None);
        assert_eq!(v["i"].as_i64(), Some(-7));
        assert_eq!(v["f"].as_f64(), Some(1.5));
        assert_eq!(v["s"].as_str(), Some("x"));
        assert_eq!(v["b"].as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert!(v.get("u").is_some());
        assert_eq!(v.as_object().unwrap().len(), 5);
    }

    #[test]
    fn indexing_reads_and_inserts() {
        let mut v = json!({"a": 1u64});
        assert_eq!(v["a"], Value::UInt(1));
        assert_eq!(v["missing"], Value::Null);
        v["a"] = json!(2u64);
        v["b"] = json!("x");
        assert_eq!(to_string(&v).unwrap(), r#"{"a":2,"b":"x"}"#);
        // Null receivers become objects, as in real serde_json.
        let mut built = Value::Null;
        built["k"] = json!(1u64);
        assert_eq!(to_string(&built).unwrap(), r#"{"k":1}"#);
    }
}
