//! Trial planning: expand a spec × profile into the concrete trial grid.
//!
//! The grid is the full cross-product `scenarios × pipelines × variants ×
//! reps` (dimensions an experiment does not use contribute exactly one
//! point each), so the planned count is always the product of the
//! dimension sizes — a property the spec test suite pins down.

use crate::lab::spec::{Driver, ExperimentSpec, Params, Profile};

/// One fully-resolved unit of work.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Experiment (spec) name.
    pub experiment: String,
    pub driver: Driver,
    /// Matrix scenario name, `"-"` for drivers without that dimension.
    pub scenario: String,
    /// Matrix pipeline name, `"-"` when unused.
    pub pipeline: String,
    /// Variant name, `"-"` when the spec declares no variants.
    pub variant: String,
    /// Repetition index, `0..reps`.
    pub rep: u64,
    /// Base params with the profile and variant overlays applied.
    pub params: Params,
}

impl Trial {
    /// Stable row identifier: `experiment/scenario/pipeline/variant#rep`.
    /// This is the key the gate joins baseline and candidate rows on.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}#{}",
            self.experiment, self.scenario, self.pipeline, self.variant, self.rep
        )
    }
}

/// Expand one experiment under one profile into its trial grid.
///
/// Unknown profile names return an empty grid — the caller distinguishes
/// "experiment does not define this profile" (skip) from "no experiment
/// defines it" (error) by summing across specs.
pub fn plan(spec: &ExperimentSpec, profile: &str) -> Vec<Trial> {
    let Some(prof) = spec.profiles.get(profile) else {
        return Vec::new();
    };
    let scenarios = scenario_dim(spec, prof);
    let pipelines = pipeline_dim(spec, prof);
    let variants = variant_dim(spec, prof);
    let reps = prof.reps.unwrap_or(spec.reps);
    let base = spec.params.overlaid(&prof.params);

    let mut out = Vec::new();
    for sc in &scenarios {
        for pl in &pipelines {
            for (vname, vparams) in &variants {
                for rep in 0..reps {
                    out.push(Trial {
                        experiment: spec.name.clone(),
                        driver: spec.driver,
                        scenario: sc.clone(),
                        pipeline: pl.clone(),
                        variant: vname.clone(),
                        rep,
                        params: base.overlaid(vparams),
                    });
                }
            }
        }
    }
    out
}

fn scenario_dim(spec: &ExperimentSpec, prof: &Profile) -> Vec<String> {
    if spec.driver != Driver::Matrix {
        return vec!["-".to_string()];
    }
    let restricted = if !prof.scenarios.is_empty() {
        prof.scenarios.clone()
    } else {
        spec.scenarios.clone()
    };
    if restricted.is_empty() {
        scenarios::corpus()
            .iter()
            .map(|s| s.name.to_string())
            .collect()
    } else {
        restricted
    }
}

fn pipeline_dim(spec: &ExperimentSpec, prof: &Profile) -> Vec<String> {
    if spec.driver != Driver::Matrix {
        return vec!["-".to_string()];
    }
    let restricted = if !prof.pipelines.is_empty() {
        prof.pipelines.clone()
    } else {
        spec.pipelines.clone()
    };
    if restricted.is_empty() {
        scenarios::all_pipelines()
            .iter()
            .map(|p| p.name().to_string())
            .collect()
    } else {
        restricted
    }
}

fn variant_dim(spec: &ExperimentSpec, prof: &Profile) -> Vec<(String, Params)> {
    if spec.variants.is_empty() {
        return vec![("-".to_string(), Params::default())];
    }
    spec.variants
        .iter()
        .filter(|v| prof.variants.is_empty() || prof.variants.contains(&v.name))
        .map(|v| (v.name.clone(), v.params.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::spec::parse_spec;

    #[test]
    fn profile_and_variant_params_overlay_in_order() {
        let spec = parse_spec(
            "t.toml",
            r#"
name = "t"
driver = "serve"
reps = 2

[params]
n = 100
seed = 1

[[variant]]
name = "a"
n = 7

[[variant]]
name = "b"

[profile.quick]
n = 10
"#,
        )
        .unwrap();
        let trials = plan(&spec, "quick");
        // 1 scenario-dim × 1 pipeline-dim × 2 variants × 2 reps.
        assert_eq!(trials.len(), 4);
        let a = trials.iter().find(|t| t.variant == "a").unwrap();
        let b = trials.iter().find(|t| t.variant == "b").unwrap();
        // Variant overlay beats the profile overlay; profile beats base.
        assert_eq!(a.params.usize("n", 0), 7);
        assert_eq!(b.params.usize("n", 0), 10);
        assert_eq!(a.params.u64("seed", 0), 1);
        assert_eq!(a.id(), "t/-/-/a#0");
    }

    #[test]
    fn matrix_defaults_to_the_full_registry() {
        let spec = parse_spec(
            "m.toml",
            "name = \"m\"\ndriver = \"matrix\"\n[profile.quick]\n",
        )
        .unwrap();
        let trials = plan(&spec, "quick");
        let cells = scenarios::corpus().len() * scenarios::all_pipelines().len();
        assert_eq!(trials.len(), cells);
        assert!(trials.iter().all(|t| t.variant == "-" && t.rep == 0));
    }

    #[test]
    fn unknown_profile_plans_nothing() {
        let spec = parse_spec(
            "m.toml",
            "name = \"m\"\ndriver = \"engine\"\n[profile.quick]\n",
        )
        .unwrap();
        assert!(plan(&spec, "galactic").is_empty());
    }

    /// Build a matrix spec restricted to the first `n_sc` scenarios and
    /// `n_pl` pipelines of the live registries, with `n_var` variants.
    fn synth_spec(n_sc: usize, n_pl: usize, n_var: usize, reps: u64) -> ExperimentSpec {
        let sc: Vec<String> = scenarios::corpus()
            .iter()
            .take(n_sc)
            .map(|s| format!("\"{}\"", s.name))
            .collect();
        let pl: Vec<String> = scenarios::all_pipelines()
            .iter()
            .take(n_pl)
            .map(|p| format!("\"{}\"", p.name()))
            .collect();
        let mut doc = format!(
            "name = \"synth\"\ndriver = \"matrix\"\nreps = {reps}\nscenarios = [{}]\npipelines = [{}]\n",
            sc.join(", "),
            pl.join(", "),
        );
        for i in 0..n_var {
            doc.push_str(&format!("[[variant]]\nname = \"v{i}\"\nidx = {i}\n"));
        }
        doc.push_str("[profile.quick]\n");
        parse_spec("synth.toml", &doc).unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// The planned grid is always exactly the product of the dimension
        /// sizes: |scenarios| x |pipelines| x max(|variants|, 1) x reps.
        #[test]
        fn plan_count_is_the_dimension_product(
            n_sc in 1usize..12,
            n_pl in 1usize..11,
            n_var in 0usize..5,
            reps in 1u64..4,
        ) {
            let spec = synth_spec(n_sc, n_pl, n_var, reps);
            let trials = plan(&spec, "quick");
            let expected = n_sc * n_pl * n_var.max(1) * reps as usize;
            proptest::prop_assert_eq!(trials.len(), expected);
            // Every trial id is distinct — the gate join key never collides.
            let mut ids: Vec<String> = trials.iter().map(Trial::id).collect();
            ids.sort();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), expected);
        }
    }
}
