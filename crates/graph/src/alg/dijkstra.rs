//! Dijkstra on weighted directed multigraphs — the main distance oracle.

use crate::multidigraph::MultiDigraph;
use crate::{dist_add, ArcId, Dist, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source run: distances and the predecessor arc of each
/// reached vertex (`ArcId(u32::MAX)` for the source / unreachable).
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    /// `dist[v]` = weighted distance from the source, [`INF`] if unreachable.
    pub dist: Vec<Dist>,
    /// Arc used to reach `v` on some shortest path.
    pub parent_arc: Vec<ArcId>,
}

impl ShortestPathTree {
    /// Reconstruct the arc sequence of a shortest path to `t` (empty if `t`
    /// is the source; `None` if unreachable).
    pub fn path_to(&self, g: &MultiDigraph, t: u32) -> Option<Vec<ArcId>> {
        if self.dist[t as usize] >= INF {
            return None;
        }
        let mut arcs = Vec::new();
        let mut cur = t;
        loop {
            let pa = self.parent_arc[cur as usize];
            if pa.0 == u32::MAX {
                break;
            }
            arcs.push(pa);
            cur = g.arc(pa).src;
        }
        arcs.reverse();
        Some(arcs)
    }
}

/// Standard binary-heap Dijkstra from `src` over out-arcs.
pub fn dijkstra(g: &MultiDigraph, src: u32) -> ShortestPathTree {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut parent_arc = vec![ArcId(u32::MAX); n];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &ai in g.out_arcs(u) {
            let a = g.arc(ArcId(ai));
            let nd = dist_add(d, a.weight);
            if nd < dist[a.dst as usize] {
                dist[a.dst as usize] = nd;
                parent_arc[a.dst as usize] = ArcId(ai);
                heap.push(Reverse((nd, a.dst)));
            }
        }
    }
    ShortestPathTree { dist, parent_arc }
}

/// Distances *to* `dst` from every vertex (Dijkstra on the reverse graph,
/// but without materializing it — walks in-arcs directly).
pub fn dijkstra_to(g: &MultiDigraph, dst: u32) -> Vec<Dist> {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    dist[dst as usize] = 0;
    heap.push(Reverse((0u64, dst)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &ai in g.in_arcs(u) {
            let a = g.arc(ArcId(ai));
            let nd = dist_add(d, a.weight);
            if nd < dist[a.src as usize] {
                dist[a.src as usize] = nd;
                heap.push(Reverse((nd, a.src)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arc;

    fn weighted_diamond() -> MultiDigraph {
        // 0 --1--> 1 --1--> 3 ; 0 --5--> 2 --1--> 3 ; parallel cheap 0 --3--> 2
        MultiDigraph::from_arcs(
            4,
            vec![
                Arc::new(0, 1, 1),
                Arc::new(1, 3, 1),
                Arc::new(0, 2, 5),
                Arc::new(0, 2, 3),
                Arc::new(2, 3, 1),
            ],
        )
    }

    #[test]
    fn distances() {
        let g = weighted_diamond();
        let t = dijkstra(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 3, 2]);
    }

    #[test]
    fn parallel_arcs_use_cheapest() {
        let g = weighted_diamond();
        let t = dijkstra(&g, 0);
        let p = t.path_to(&g, 2).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(g.arc(p[0]).weight, 3);
    }

    #[test]
    fn path_reconstruction() {
        let g = weighted_diamond();
        let t = dijkstra(&g, 0);
        let p = t.path_to(&g, 3).unwrap();
        let total: u64 = p.iter().map(|&a| g.arc(a).weight).sum();
        assert_eq!(total, 2);
        assert_eq!(g.arc(p[0]).src, 0);
        assert_eq!(g.arc(*p.last().unwrap()).dst, 3);
    }

    #[test]
    fn unreachable() {
        let g = MultiDigraph::from_arcs(3, vec![Arc::new(0, 1, 1)]);
        let t = dijkstra(&g, 0);
        assert_eq!(t.dist[2], INF);
        assert!(t.path_to(&g, 2).is_none());
    }

    #[test]
    fn directionality_respected() {
        let g = MultiDigraph::from_arcs(2, vec![Arc::new(0, 1, 4)]);
        assert_eq!(dijkstra(&g, 1).dist[0], INF);
        assert_eq!(dijkstra_to(&g, 1), vec![4, 0]);
        assert_eq!(dijkstra_to(&g, 0), vec![0, INF]);
    }

    #[test]
    fn zero_weight_edges() {
        let g = MultiDigraph::from_arcs(3, vec![Arc::new(0, 1, 0), Arc::new(1, 2, 0)]);
        assert_eq!(dijkstra(&g, 0).dist, vec![0, 0, 0]);
    }
}
