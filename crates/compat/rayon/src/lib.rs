//! Offline stand-in for the `rayon` crate: the `par_iter` /
//! `par_iter_mut` / `into_par_iter` entry points return the corresponding
//! **sequential** iterators.
//!
//! Rationale: the workspace's build environment has no registry access, and
//! the only rayon consumer (`congest_sim`'s superstep engine) uses the pool
//! purely as a same-result speedup above a node-count threshold — the cost
//! model it computes is independent of execution order. Swapping the real
//! rayon back in requires no source changes anywhere.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// `into_par_iter()` — sequential stand-in for rayon's owned-value entry
/// point. Blanket-implemented for every `IntoIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter()` — sequential stand-in for rayon's by-reference entry point.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
{
    type Item = <&'data I as IntoIterator>::Item;
    type Iter = <&'data I as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` — sequential stand-in for rayon's by-mutable-reference
/// entry point.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
{
    type Item = <&'data mut I as IntoIterator>::Item;
    type Iter = <&'data mut I as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_iterators() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);

        let mut w = vec![1u32, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(w, vec![11, 12, 13]);

        let sum: u32 = w.into_par_iter().sum();
        assert_eq!(sum, 36);

        let s: &[u32] = &[5, 6];
        assert!(s.par_iter().enumerate().all(|(i, &x)| x as usize == i + 5));
    }
}
