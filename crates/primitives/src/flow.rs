//! Rate-limited tree flows: convergecast (upflow) and broadcast (downflow)
//! over [`TreeRoles`].
//!
//! Both flows are executable schedules: per superstep every node forwards at
//! most `W` (the bandwidth) queued items, so each superstep costs one round
//! and the total round count is the schedule length — dilation plus
//! (smoothed) congestion, the envelope of the paper's scheduling theorem
//! (Theorem 6). Items are FIFO, so no reordering starvation.
//!
//! Flows run **scoped** to the role-holding nodes
//! ([`TreeRoles::nodes`]): states are allocated per participating node and
//! every superstep costs O(participants + messages) instead of O(n) — the
//! charged metrics are identical to a full-network execution because nodes
//! without roles never send anything.

use crate::roles::TreeRoles;
use congest_sim::{CongestError, Network, WireMsg};
use std::collections::VecDeque;

/// Wire format of a flow item: part id + optional payload (None = a relay
/// leaf's empty contribution).
#[derive(Clone, Debug)]
pub struct FlowMsg<V> {
    part: u32,
    value: Option<V>,
}

impl<V: WireMsg> WireMsg for FlowMsg<V> {
    fn words(&self) -> u64 {
        1 + self.value.as_ref().map_or(0, WireMsg::words)
    }
}

/// Result of an [`upflow`].
#[derive(Clone, Debug)]
pub struct UpflowResult<V> {
    /// Aggregated value per part, sorted by part id (parts whose tree
    /// carried no value at all yield no entry).
    pub roots: Vec<(u32, V)>,
    /// For every node, the finalized "subtree" accumulations per part —
    /// exactly the output of the paper's STA task when the roles are a
    /// part's own tree.
    pub per_node: Vec<Vec<(u32, V)>>,
}

struct UpState<V> {
    /// Aligned with the node's role list.
    acc: Vec<Option<V>>,
    remaining: Vec<u32>,
    queue: VecDeque<(u32, FlowMsg<V>)>,
    finalized: Vec<(u32, V)>,
    root_results: Vec<(u32, V)>,
    /// Items this node forwards in the ongoing superstep (set by the
    /// orchestrator loop so the send closure needs no id → position map).
    pending: usize,
}

/// Convergecast: combine per-(node, part) initial values toward each part
/// tree's root. `init` supplies a node's own contribution (`None` for pure
/// relays); `combine` must be associative and commutative.
pub fn upflow<V>(
    net: &mut Network,
    roles: &TreeRoles,
    init: impl Fn(u32, u32) -> Option<V> + Sync,
    combine: impl Fn(V, V) -> V + Sync + Send,
) -> Result<UpflowResult<V>, CongestError>
where
    V: WireMsg + Sync + std::fmt::Debug,
{
    let n = net.n();
    assert_eq!(roles.roles.len(), n);
    let rate = net.config().bandwidth_words.max(1) as usize;
    let active = &roles.nodes;

    let mut states: Vec<UpState<V>> = active
        .iter()
        .map(|&v| {
            let rs = &roles.roles[v as usize];
            UpState {
                acc: rs
                    .iter()
                    .map(|r| if r.relay { None } else { init(v, r.part) })
                    .collect(),
                remaining: rs.iter().map(|r| r.children.len() as u32).collect(),
                queue: VecDeque::new(),
                finalized: Vec::new(),
                root_results: Vec::new(),
                pending: 0,
            }
        })
        .collect();

    // Seed: leaves finalize immediately.
    for (i, &v) in active.iter().enumerate() {
        finalize_ready(v, &mut states[i], roles);
    }

    let max_steps = flow_step_guard(roles, n);
    let mut steps = 0u64;
    loop {
        let mut any = false;
        for s in states.iter_mut() {
            s.pending = s.queue.len().min(rate);
            any |= s.pending > 0;
        }
        if !any {
            break;
        }
        assert!(steps < max_steps, "upflow exceeded {max_steps} supersteps");
        steps += 1;
        net.superstep_on(
            active,
            &mut states,
            |_u, s: &UpState<V>| s.queue.iter().take(s.pending).cloned().collect::<Vec<_>>(),
            |v, s, inbox| {
                for (_src, msg) in inbox {
                    let rs = &roles.roles[v as usize];
                    let idx = rs
                        .binary_search_by_key(&msg.part, |r| r.part)
                        .expect("flow message for part without role");
                    if let Some(val) = msg.value {
                        s.acc[idx] = Some(match s.acc[idx].take() {
                            Some(cur) => combine(cur, val),
                            None => val,
                        });
                    }
                    s.remaining[idx] -= 1;
                }
            },
        )?;
        // Local post-processing (free): drop sent items, finalize newly
        // complete roles.
        for (i, &v) in active.iter().enumerate() {
            let sent = states[i].pending;
            states[i].queue.drain(..sent);
            finalize_ready(v, &mut states[i], roles);
        }
    }

    let mut roots = Vec::new();
    let mut per_node = vec![Vec::new(); n];
    for (i, s) in states.into_iter().enumerate() {
        roots.extend(s.root_results);
        per_node[active[i] as usize] = s.finalized;
    }
    roots.sort_by_key(|&(p, _)| p);
    Ok(UpflowResult { roots, per_node })
}

fn finalize_ready<V: Clone>(v: u32, s: &mut UpState<V>, roles: &TreeRoles) {
    let rs = &roles.roles[v as usize];
    for (i, r) in rs.iter().enumerate() {
        if s.remaining[i] == 0 {
            s.remaining[i] = u32::MAX; // mark as finalized
            if let Some(val) = s.acc[i].clone() {
                s.finalized.push((r.part, val));
            }
            if r.parent == v {
                if let Some(val) = s.acc[i].take() {
                    s.root_results.push((r.part, val));
                }
            } else {
                s.queue.push_back((
                    r.parent,
                    FlowMsg {
                        part: r.part,
                        value: s.acc[i].take(),
                    },
                ));
            }
        }
    }
}

struct DownState<V> {
    queue: VecDeque<(u32, FlowMsg<V>)>,
    got: Vec<(u32, V)>,
    pending: usize,
}

/// Broadcast: deliver each part root's item list to every node in the part
/// tree. Returns, per node, the `(part, item)` pairs it received (relays
/// receive them too — callers filter by membership if needed). Root items
/// are included in the root's own output.
pub fn downflow<V>(
    net: &mut Network,
    roles: &TreeRoles,
    root_items: impl Fn(u32, u32) -> Vec<V> + Sync,
) -> Result<Vec<Vec<(u32, V)>>, CongestError>
where
    V: WireMsg + Sync + std::fmt::Debug,
{
    let n = net.n();
    assert_eq!(roles.roles.len(), n);
    let rate = net.config().bandwidth_words.max(1) as usize;
    let active = &roles.nodes;

    let mut states: Vec<DownState<V>> = active
        .iter()
        .map(|&v| {
            let mut st = DownState {
                queue: VecDeque::new(),
                got: Vec::new(),
                pending: 0,
            };
            for r in &roles.roles[v as usize] {
                if r.parent == v {
                    for item in root_items(r.part, v) {
                        st.got.push((r.part, item.clone()));
                        for &c in &r.children {
                            st.queue.push_back((
                                c,
                                FlowMsg {
                                    part: r.part,
                                    value: Some(item.clone()),
                                },
                            ));
                        }
                    }
                }
            }
            st
        })
        .collect();

    let total_items: usize = states.iter().map(|s| s.got.len()).sum();
    // Every productive superstep moves ≥ 1 queued item and total queue pushes
    // are bounded by items × tree size.
    let max_steps = flow_step_guard(roles, n) + (total_items as u64 + 1) * (n as u64 + 1);
    let mut steps = 0u64;
    loop {
        let mut any = false;
        for s in states.iter_mut() {
            s.pending = s.queue.len().min(rate);
            any |= s.pending > 0;
        }
        if !any {
            break;
        }
        assert!(
            steps < max_steps,
            "downflow exceeded {max_steps} supersteps"
        );
        steps += 1;
        net.superstep_on(
            active,
            &mut states,
            |_u, s: &DownState<V>| s.queue.iter().take(s.pending).cloned().collect::<Vec<_>>(),
            |v, s, inbox| {
                for (_src, msg) in inbox {
                    let item = msg.value.expect("downflow items are never empty");
                    let rs = &roles.roles[v as usize];
                    let idx = rs
                        .binary_search_by_key(&msg.part, |r| r.part)
                        .expect("flow message for part without role");
                    for &c in &rs[idx].children {
                        s.queue.push_back((
                            c,
                            FlowMsg {
                                part: msg.part,
                                value: Some(item.clone()),
                            },
                        ));
                    }
                    s.got.push((msg.part, item));
                }
            },
        )?;
        for s in states.iter_mut() {
            s.queue.drain(..s.pending);
        }
    }

    let mut out = vec![Vec::new(); n];
    for (i, s) in states.into_iter().enumerate() {
        out[active[i] as usize] = s.got;
    }
    Ok(out)
}

/// Generous superstep guard: total roles + node count (a flow moves each
/// (node, part) item a bounded number of times under rate ≥ 1).
fn flow_step_guard(roles: &TreeRoles, n: usize) -> u64 {
    let total_roles: usize = roles
        .nodes
        .iter()
        .map(|&v| roles.roles[v as usize].len())
        .sum();
    (4 * total_roles + 8 * n + 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::TreeRoles;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::gen::path;

    /// Path 0-1-2-3-4 with one part spanning all nodes, rooted at 2.
    fn path_roles() -> (Network, TreeRoles) {
        let g = path(5);
        let net = Network::new(g, NetworkConfig::default());
        let roles = TreeRoles::from_parent_maps(
            5,
            [(
                0u32,
                vec![
                    (0, 1, false),
                    (1, 2, false),
                    (2, 2, false),
                    (3, 2, false),
                    (4, 3, false),
                ],
            )],
        );
        roles.validate().unwrap();
        (net, roles)
    }

    #[test]
    fn upflow_sums_whole_part() {
        let (mut net, roles) = path_roles();
        let res = upflow(
            &mut net,
            &roles,
            |v, _part| Some(v as u64 + 1),
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(res.roots, vec![(0, 15)]);
        // Subtree values: node 0 = 1, node 1 = 1+2, node 4 = 5, node 3 = 9.
        let find = |v: usize| res.per_node[v].iter().find(|&&(p, _)| p == 0).unwrap().1;
        assert_eq!(find(0), 1);
        assert_eq!(find(1), 3);
        assert_eq!(find(4), 5);
        assert_eq!(find(3), 9);
        assert_eq!(find(2), 15);
    }

    #[test]
    fn upflow_cost_tracks_depth() {
        let (mut net, roles) = path_roles();
        let before = *net.metrics();
        let _ = upflow(&mut net, &roles, |_, _| Some(1u64), |a, b| a + b).unwrap();
        let d = net.metrics().since(&before);
        // Depth 2 each side; item+part = 2 words per hop, W=1 → 2 rounds/hop.
        assert!(d.rounds <= 12, "rounds = {}", d.rounds);
    }

    #[test]
    fn upflow_with_relays() {
        // Node 1 is a relay: contributes nothing, still forwards.
        let g = path(3);
        let mut net = Network::new(g, NetworkConfig::default());
        let roles = TreeRoles::from_parent_maps(
            3,
            [(5u32, vec![(0, 1, false), (1, 2, true), (2, 2, false)])],
        );
        let res = upflow(&mut net, &roles, |v, _| Some(v as u64 + 10), |a, b| a + b).unwrap();
        assert_eq!(res.roots, vec![(5, 22)]); // 10 + 12, relay's 11 excluded
    }

    #[test]
    fn downflow_reaches_all_members() {
        let (mut net, roles) = path_roles();
        let got = downflow(&mut net, &roles, |part, _root| vec![part * 100 + 7]).unwrap();
        for gv in got.iter().take(5) {
            assert_eq!(*gv, vec![(0, 7)]);
        }
    }

    #[test]
    fn downflow_multiple_items_pipelined() {
        let (mut net, roles) = path_roles();
        let before = *net.metrics();
        let got = downflow(&mut net, &roles, |_, _| vec![1u64, 2, 3, 4]).unwrap();
        for gv in got.iter().take(5) {
            let items: Vec<u64> = gv.iter().map(|&(_, x)| x).collect();
            assert_eq!(items, vec![1, 2, 3, 4]);
        }
        let d = net.metrics().since(&before);
        // 4 items over depth 2: pipelining keeps this ~ depth + items·2 words.
        assert!(d.rounds <= 24, "rounds = {}", d.rounds);
    }

    #[test]
    fn two_overlapping_parts() {
        // Parts 0 and 1 both span the path; congestion doubles, results don't mix.
        let g = path(3);
        let mut net = Network::new(g, NetworkConfig::default());
        let roles = TreeRoles::from_parent_maps(
            3,
            [
                (0u32, vec![(0, 0, false), (1, 0, false), (2, 1, false)]),
                (1u32, vec![(0, 1, false), (1, 1, false), (2, 1, false)]),
            ],
        );
        roles.validate().unwrap();
        let res = upflow(
            &mut net,
            &roles,
            |v, p| Some((v as u64 + 1) * (p as u64 + 1)),
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(res.roots, vec![(0, 6), (1, 12)]);
    }

    #[test]
    fn empty_roles_no_cost() {
        let g = path(4);
        let mut net = Network::new(g, NetworkConfig::default());
        let roles = TreeRoles::new(4);
        let res = upflow(&mut net, &roles, |_, _| Some(1u64), |a, b| a + b).unwrap();
        assert!(res.roots.is_empty());
        assert_eq!(net.metrics().rounds, 0);
    }

    #[test]
    fn flows_only_touch_role_nodes() {
        // A part confined to {0, 1} on a long path: per-superstep cost is
        // scoped, and the untouched tail never appears in the outputs.
        let g = path(64);
        let mut net = Network::new(g, NetworkConfig::default());
        let roles = TreeRoles::from_parent_maps(64, [(0u32, vec![(0, 1, false), (1, 1, false)])]);
        assert_eq!(roles.nodes, vec![0, 1]);
        let res = upflow(&mut net, &roles, |v, _| Some(v as u64 + 1), |a, b| a + b).unwrap();
        assert_eq!(res.roots, vec![(0, 3)]);
        assert!(res.per_node[2..].iter().all(Vec::is_empty));
        let got = downflow(&mut net, &roles, |_, _| vec![9u64]).unwrap();
        assert_eq!(got[0], vec![(0, 9)]);
        assert!(got[2..].iter().all(Vec::is_empty));
    }
}
