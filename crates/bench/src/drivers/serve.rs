//! The `serve` driver: build-once / query-many on a partial k-tree —
//! centralized decomposition + label construction, compaction into the
//! sharded `labelserve` store in the variant's physical layout, a seeded
//! skewed workload replayed three ways (single, one batch, batch with the
//! cache off), and an `LWLSTOR1` file round-trip with a sampled
//! differential. The replayed answers fold into one deterministic
//! checksum, so the gate pins the served distances bit-exactly.

use super::{gen_instance, RowBuilder};
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use crate::rate_per_sec;
use labelserve::{
    seeded_queries, LabelStore, QueryEngine, ServeConfig, StoreBuilder, StoreLayout, WorkloadSpec,
};
use lowtw::{distlabel, treedec, twgraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scenarios::fold_checksum;
use std::time::Instant;

pub fn run(trial: &Trial) -> TrialRow {
    let inst = gen_instance(trial, 20_000, 1);
    let layout = match trial.params.str("layout", "flat") {
        "flat" => StoreLayout::Flat,
        "packed" => StoreLayout::Packed,
        other => panic!("unknown layout {other:?} (expected \"flat\" or \"packed\")"),
    };
    let mut row = RowBuilder::new(trial);
    let n = inst.n;

    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(inst.seed);
    let t = Instant::now();
    let out = treedec::decompose_centralized(&inst.g, inst.k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    row.wall("decompose", t.elapsed());

    let t = Instant::now();
    let labels = distlabel::build_labels_centralized(&inst.inst, &out.td, &out.info);
    row.wall("label_build", t.elapsed());
    let label_words: u64 = labels.iter().map(|l| l.words() as u64).sum();

    let serve_cfg = ServeConfig::default().with_layout(layout);
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut builder = StoreBuilder::new(n);
    builder
        .add_component(&labels, &ids)
        .expect("store compaction failed");
    drop(labels);
    let t = Instant::now();
    let store = builder
        .build_layout(serve_cfg.shard_size, layout)
        .expect("store build failed");
    row.wall("store_build", t.elapsed());
    drop(builder);

    row.det("n", n as u64);
    row.det("m", inst.g.m() as u64);
    row.det("width", out.td.width() as u64);
    row.det("depth", out.td.stats().depth as u64);
    row.det("label_words", label_words);
    row.det("store_entries", store.entries() as u64);
    row.det("store_shards", store.shard_count() as u64);
    row.det("store_bytes", store.bytes() as u64);
    row.info("bytes_per_node", store.bytes() as f64 / n as f64);

    // The workload: one seeded skewed stream.
    let spec = WorkloadSpec {
        queries: trial.params.usize("queries", 50_000),
        hot_pairs: trial.params.usize("hot_pairs", 4096),
        hot_fraction: trial.params.f64("hot_fraction", 0.75),
    };
    let queries = seeded_queries(n, &spec, inst.seed);
    row.det("queries", queries.len() as u64);

    // Spot-check against centralized Dijkstra before timing.
    let mut checked = 0u64;
    for &(s, _) in queries.iter().step_by((queries.len() / 4).max(1)) {
        let truth = twgraph::alg::dijkstra(&inst.inst, s);
        let probe = (s + 1) % n as u32;
        assert_eq!(
            store.distance(s, probe).unwrap(),
            truth.dist[probe as usize],
            "serve diverged from Dijkstra at source {s}"
        );
        checked += 1;
    }
    row.det("checked", checked);

    // Persistence round-trip while the store is still owned here.
    let path = std::env::temp_dir().join(format!(
        "lowtw_lab_serve_{}_{}.lbl",
        std::process::id(),
        trial.variant
    ));
    let t = Instant::now();
    store.write_to(&path).expect("store write failed");
    row.wall("file_write", t.elapsed());
    row.det(
        "file_bytes",
        std::fs::metadata(&path).expect("stat failed").len(),
    );
    let t = Instant::now();
    let opened = LabelStore::open_mmap(&path).expect("store open failed");
    row.wall("file_open", t.elapsed());
    assert_eq!(opened.layout(), store.layout());
    assert_eq!(opened.entries(), store.entries());
    let step = (queries.len() / 10_000).max(1);
    for q in queries.iter().step_by(step) {
        assert_eq!(
            opened.distance(q.0, q.1).unwrap(),
            store.distance(q.0, q.1).unwrap(),
            "reopened store diverged at ({}, {})",
            q.0,
            q.1
        );
    }
    drop(opened);
    std::fs::remove_file(&path).ok();

    // The replay: single, batched, batched with the cache off.
    let engine = QueryEngine::new(store, serve_cfg);
    let t = Instant::now();
    for &(s, tgt) in &queries {
        engine.distance(s, tgt).expect("single query failed");
    }
    let single = t.elapsed();
    row.wall("single", single);
    let stats = engine.stats();
    // The compat rayon stand-in runs batches sequentially and the cache
    // is keyed purely on the query stream, so hit counts are exact.
    row.det("cache_hits", stats.hits);
    row.det("cache_misses", stats.misses);
    row.info("single_hit_rate", stats.hit_rate());
    row.info(
        "single_qps",
        rate_per_sec(queries.len() as u64, single) as f64,
    );

    engine.reset();
    let t = Instant::now();
    let answers = engine.batch(&queries).expect("batch failed");
    let batch = t.elapsed();
    row.wall("batched", batch);
    row.info(
        "batched_qps",
        rate_per_sec(queries.len() as u64, batch) as f64,
    );

    let nocache_engine = QueryEngine::new(engine.into_store(), serve_cfg.without_cache());
    let t = Instant::now();
    let raw = nocache_engine
        .batch(&queries)
        .expect("uncached batch failed");
    let nocache = t.elapsed();
    assert_eq!(answers, raw, "cache on/off answers diverged");
    row.wall("batched_nocache", nocache);
    row.info(
        "batched_nocache_qps",
        rate_per_sec(queries.len() as u64, nocache) as f64,
    );

    // One checksum pins every served distance.
    let checksum = answers
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &d)| fold_checksum(acc, i as u64, d));
    row.det("answers_checksum", checksum);

    row.finish()
}
