//! MVC(h, t) — batched minimum X–Y vertex cuts (paper Lemma 8, Corollary 2).
//!
//! Classical reduction: split every vertex `v` into `v_in → v_out` with
//! capacity 1 (∞ for X ∪ Y), give every subgraph edge `{v, w}` the two
//! ∞-capacity arcs `v_out → w_in`, `w_out → v_in`, and run augmenting-path
//! max-flow from X to Y. After at most `t+1` augmentations either the flow
//! exceeds `t` (report "cut larger than t") or a final residual BFS yields
//! the cut as `{v internal : v_in reachable, v_out not}` (Menger).
//!
//! All instances of the batch run **concurrently in shared supersteps**
//! (BFS waves and backtrace tokens interleave freely), so the measured cost
//! follows the O(dilation + congestion) scheduling envelope of the paper's
//! Theorem 6 rather than the sequential sum. The paper implements MVC with
//! Õ(t) PA+SNC invocations via the shortcut framework; our substitution
//! (DESIGN.md §4.2) keeps the same asymptotic envelope in `t` with honest,
//! measured dilation.

use congest_sim::{CongestError, Network, WireMsg};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// One cut instance: find a minimum vertex cut between `sources` and
/// `sinks` inside the subgraph induced by `members` (`None` = whole graph).
#[derive(Clone, Debug)]
pub struct CutInstance {
    /// Subgraph membership (sorted), or `None` for the full graph.
    pub members: Option<Vec<u32>>,
    /// The X side.
    pub sources: Vec<u32>,
    /// The Y side.
    pub sinks: Vec<u32>,
}

/// Result of one instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CutResult {
    /// A minimum vertex cut of size ≤ t (possibly empty if X and Y are
    /// already disconnected in the subgraph).
    Cut(Vec<u32>),
    /// The minimum cut exceeds `t` (including X ∩ Y ≠ ∅ and unseparable
    /// adjacency cases, where it is ∞).
    TooBig,
}

const K_INTERNAL: u8 = 0;
const K_SOURCE: u8 = 1;
const K_SINK: u8 = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ParIn {
    None,
    Start,
    /// Reached via forward arc `w_out → v_in`.
    FwdEdge(u32),
    /// Reached via the internal reverse arc `v_out → v_in`.
    FromOut,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ParOut {
    None,
    Start,
    /// Reached via the internal forward arc `v_in → v_out`.
    FromIn,
    /// Reached via residual reverse arc `w_in → v_out` (cancelling v→w flow).
    RevEdge(u32),
}

#[derive(Clone, Debug)]
struct InstState {
    kind: u8,
    /// Unit of flow through the internal arc (internal vertices only).
    internal_flow: bool,
    /// Sparse net edge flows: `(neighbor, f(v→w) − f(w→v))`.
    flows: Vec<(u32, i32)>,
    vis_in: bool,
    vis_out: bool,
    fresh_in: bool,
    fresh_out: bool,
    par_in: ParIn,
    par_out: ParOut,
    /// Pending backtrace token to emit: `(neighbor, continue_side_is_in)`.
    emit: Option<(u32, bool)>,
}

impl InstState {
    fn new(kind: u8) -> Self {
        InstState {
            kind,
            internal_flow: false,
            flows: Vec::new(),
            vis_in: false,
            vis_out: false,
            fresh_in: false,
            fresh_out: false,
            par_in: ParIn::None,
            par_out: ParOut::None,
            emit: None,
        }
    }

    fn add_flow(&mut self, w: u32, delta: i32) {
        if let Some(entry) = self.flows.iter_mut().find(|(x, _)| *x == w) {
            entry.1 += delta;
        } else {
            self.flows.push((w, delta));
        }
    }

    /// Apply the internal-arc closure: propagate visitation across
    /// `v_in ↔ v_out` where the residual internal arc is available.
    /// Returns true if anything changed.
    fn closure(&mut self) -> bool {
        let mut changed = false;
        // in → out available iff no internal flow (or ∞ cap for X/Y).
        if self.vis_in && !self.vis_out && (self.kind != K_INTERNAL || !self.internal_flow) {
            self.vis_out = true;
            self.fresh_out = true;
            self.par_out = ParOut::FromIn;
            changed = true;
        }
        // out → in available iff internal flow exists (or ∞ cap).
        if self.vis_out && !self.vis_in && (self.kind != K_INTERNAL || self.internal_flow) {
            self.vis_in = true;
            self.fresh_in = true;
            self.par_in = ParIn::FromOut;
            changed = true;
        }
        changed
    }

    fn reset_bfs(&mut self) {
        self.vis_in = false;
        self.vis_out = false;
        self.fresh_in = false;
        self.fresh_out = false;
        self.par_in = ParIn::None;
        self.par_out = ParOut::None;
        self.emit = None;
    }

    /// Walk the backtrace locally from the given side until the next
    /// cross-node hop (stored into `emit`) or the path start.
    /// Returns true if the augmentation completed at this node.
    fn backtrace_walk(&mut self, mut side_in: bool) -> bool {
        loop {
            if side_in {
                match self.par_in {
                    ParIn::Start => return true,
                    ParIn::FwdEdge(w) => {
                        // Path hop w→v: at v the net flow to w drops.
                        self.add_flow(w, -1);
                        self.emit = Some((w, false)); // continue at w_out
                        return false;
                    }
                    ParIn::FromOut => {
                        // Internal reverse arc used: cancel the unit.
                        if self.kind == K_INTERNAL {
                            debug_assert!(self.internal_flow);
                            self.internal_flow = false;
                        }
                        side_in = false;
                    }
                    ParIn::None => unreachable!("backtrace entered unvisited in-side"),
                }
            } else {
                match self.par_out {
                    ParOut::Start => return true,
                    ParOut::RevEdge(w) => {
                        self.add_flow(w, -1);
                        self.emit = Some((w, true)); // continue at w_in
                        return false;
                    }
                    ParOut::FromIn => {
                        if self.kind == K_INTERNAL {
                            debug_assert!(!self.internal_flow);
                            self.internal_flow = true;
                        }
                        side_in = true;
                    }
                    ParOut::None => unreachable!("backtrace entered unvisited out-side"),
                }
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Bfs,
    Backtrace,
    Done,
}

#[derive(Clone, Debug)]
enum MvcMsg {
    /// BFS visit: `to_in_side` = true targets the receiver's in-side
    /// (forward arc from my out-side); false targets the out-side
    /// (residual reverse arc from my in-side).
    Visit { inst: u32, to_in_side: bool },
    /// Backtrace token: continue at the given side; the receiver also
    /// applies its half of the flow update for the hop.
    Token { inst: u32, continue_in_side: bool },
}

impl WireMsg for MvcMsg {
    fn words(&self) -> u64 {
        2
    }
}

type NodeState = HashMap<u32, InstState>;

/// Solve all `instances` concurrently; report, per instance, a minimum
/// vertex cut of size ≤ `t` or [`CutResult::TooBig`].
///
/// The shared supersteps run scoped to the union of the instances' member
/// sets (BFS waves and backtrace tokens never leave an instance's
/// subgraph), so the per-superstep cost tracks the batch's footprint, not
/// the whole network, at identical charged metrics.
pub fn batch_min_vertex_cut(
    net: &mut Network,
    instances: &[CutInstance],
    t: usize,
) -> Result<Vec<CutResult>, CongestError> {
    let n = net.n();
    let g = net.graph_handle();
    let n_inst = instances.len();
    let mut results: Vec<Option<CutResult>> = vec![None; n_inst];
    let mut phase = vec![Phase::Bfs; n_inst];
    let mut flow_value = vec![0usize; n_inst];

    let member_sets: Vec<Option<Vec<u32>>> = instances
        .iter()
        .map(|ci| {
            ci.members.as_ref().map(|m| {
                let mut s = m.clone();
                s.sort_unstable();
                s
            })
        })
        .collect();
    let is_member = |inst: usize, v: u32| -> bool {
        match &member_sets[inst] {
            None => true,
            Some(s) => s.binary_search(&v).is_ok(),
        }
    };

    // Active set: the union of the member sets (everything if any instance
    // spans the whole graph).
    let active: Vec<u32> = if member_sets.iter().any(Option::is_none) {
        (0..n as u32).collect()
    } else {
        let mut a: Vec<u32> = member_sets
            .iter()
            .flatten()
            .flat_map(|s| s.iter().copied())
            .collect();
        a.sort_unstable();
        a.dedup();
        a
    };
    let pos_of = |v: u32| -> usize {
        active
            .binary_search(&v)
            .expect("cut instance member outside the active set")
    };

    let mut states: Vec<NodeState> = vec![HashMap::new(); active.len()];
    for (i, ci) in instances.iter().enumerate() {
        let mut too_big = false;
        for &s in &ci.sources {
            if ci.sinks.contains(&s) {
                too_big = true;
            }
        }
        if too_big || ci.sources.is_empty() || ci.sinks.is_empty() {
            results[i] = Some(if too_big {
                CutResult::TooBig
            } else {
                CutResult::Cut(Vec::new())
            });
            phase[i] = Phase::Done;
            continue;
        }
        for &s in &ci.sources {
            assert!(is_member(i, s), "source {s} outside instance {i}");
            states[pos_of(s)].insert(i as u32, InstState::new(K_SOURCE));
        }
        for &y in &ci.sinks {
            assert!(is_member(i, y), "sink {y} outside instance {i}");
            states[pos_of(y)].insert(i as u32, InstState::new(K_SINK));
        }
    }

    // Seed the first BFS for all live instances.
    for (i, ci) in instances.iter().enumerate() {
        if phase[i] == Phase::Bfs {
            seed_bfs(&mut states, &pos_of, ci, i as u32);
        }
    }

    let guard = ((t + 2) * (n + 4) * 4) as u64 * (n_inst as u64 + 1) + 1024;
    let mut steps = 0u64;
    let sink_hits: Vec<AtomicU32> = (0..n_inst).map(|_| AtomicU32::new(u32::MAX)).collect();
    let aug_done: Vec<AtomicU32> = (0..n_inst).map(|_| AtomicU32::new(0)).collect();
    let progress: Vec<AtomicU32> = (0..n_inst).map(|_| AtomicU32::new(0)).collect();

    while phase.iter().any(|&p| p != Phase::Done) {
        assert!(steps < guard, "mvc exceeded {guard} supersteps");
        steps += 1;
        for p in &progress {
            p.store(0, Ordering::Relaxed);
        }
        let phase_snapshot = phase.clone();
        let instances_ref = instances;
        let member_sets_ref = &member_sets;
        let g_ref = &g;
        let sink_hits_ref = &sink_hits;
        let aug_done_ref = &aug_done;
        let progress_ref = &progress;

        net.superstep_on(
            &active,
            &mut states,
            |u, s: &NodeState| {
                let mut out: Vec<(u32, MvcMsg)> = Vec::new();
                for (&inst, st) in s.iter() {
                    match phase_snapshot[inst as usize] {
                        Phase::Bfs => {
                            if st.fresh_out {
                                for &w in g_ref.neighbors(u) {
                                    if member_in(member_sets_ref, inst as usize, w) {
                                        out.push((
                                            w,
                                            MvcMsg::Visit {
                                                inst,
                                                to_in_side: true,
                                            },
                                        ));
                                    }
                                }
                            }
                            if st.fresh_in {
                                for &(w, f) in &st.flows {
                                    if f < 0 {
                                        out.push((
                                            w,
                                            MvcMsg::Visit {
                                                inst,
                                                to_in_side: false,
                                            },
                                        ));
                                    }
                                }
                            }
                        }
                        Phase::Backtrace => {
                            if let Some((w, continue_in_side)) = st.emit {
                                out.push((
                                    w,
                                    MvcMsg::Token {
                                        inst,
                                        continue_in_side,
                                    },
                                ));
                            }
                        }
                        Phase::Done => {}
                    }
                }
                // Full tiebreak: the per-node instance map iterates in hash
                // order, so sorting by destination alone would leave
                // same-destination messages in nondeterministic relative
                // order. Instance id + message shape complete the key
                // (within one instance the generation order is already
                // deterministic).
                out.sort_by_key(|&(w, ref m)| {
                    let (inst, shape) = match *m {
                        MvcMsg::Visit { inst, to_in_side } => (inst, u8::from(to_in_side)),
                        MvcMsg::Token {
                            inst,
                            continue_in_side,
                        } => (inst, 2 + u8::from(continue_in_side)),
                    };
                    (w, inst, shape)
                });
                out
            },
            |v, s, inbox| {
                // Clear freshness (we are about to absorb the next wave) and
                // emitted tokens (they were just sent).
                for st in s.values_mut() {
                    st.fresh_in = false;
                    st.fresh_out = false;
                    st.emit = None;
                }
                for (src, msg) in inbox {
                    match msg {
                        MvcMsg::Visit { inst, to_in_side } => {
                            if phase_snapshot[inst as usize] != Phase::Bfs
                                || !member_in(member_sets_ref, inst as usize, v)
                            {
                                continue;
                            }
                            let st = s.entry(inst).or_insert_with(|| InstState::new(K_INTERNAL));
                            if to_in_side && !st.vis_in {
                                st.vis_in = true;
                                st.fresh_in = true;
                                st.par_in = ParIn::FwdEdge(src);
                                progress_ref[inst as usize].fetch_add(1, Ordering::Relaxed);
                            } else if !to_in_side && !st.vis_out {
                                st.vis_out = true;
                                st.fresh_out = true;
                                st.par_out = ParOut::RevEdge(src);
                                progress_ref[inst as usize].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        MvcMsg::Token {
                            inst,
                            continue_in_side,
                        } => {
                            let st = s.get_mut(&inst).expect("token at untouched node");
                            // Receiver's half of the hop flow update:
                            // the path hop ran v→src… no: token moves
                            // backwards, so the path hop was v_this → src?
                            // The sender already updated itself; the hop in
                            // path direction is (this node) → (sender).
                            st.add_flow(src, 1);
                            if st.backtrace_walk(continue_in_side) {
                                aug_done_ref[inst as usize].store(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                // Internal closure + sink detection after absorbing a wave.
                for (&inst, st) in s.iter_mut() {
                    if phase_snapshot[inst as usize] != Phase::Bfs {
                        continue;
                    }
                    if st.closure() {
                        progress_ref[inst as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    if st.kind == K_SINK && st.vis_in {
                        sink_hits_ref[inst as usize].fetch_min(v, Ordering::Relaxed);
                    }
                }
            },
        )?;

        // Orchestrator pass: phase transitions (control decisions; the
        // per-superstep cost is already paid by the messages above).
        for i in 0..n_inst {
            match phase[i] {
                Phase::Bfs => {
                    let hit = sink_hits[i].load(Ordering::Relaxed);
                    if hit != u32::MAX {
                        // Augmenting path found: launch the backtrace.
                        phase[i] = Phase::Backtrace;
                        let st = states[pos_of(hit)].get_mut(&(i as u32)).unwrap();
                        if st.backtrace_walk(true) {
                            // Path of length 0 cannot happen (X ∩ Y = ∅).
                            unreachable!("sink cannot be a path start");
                        }
                        sink_hits[i].store(u32::MAX, Ordering::Relaxed);
                    } else if progress[i].load(Ordering::Relaxed) == 0
                        && !bfs_has_fresh(&states, i as u32)
                    {
                        // BFS exhausted without reaching a sink: extract cut.
                        let cut = extract_cut(&states, &active, instances_ref, i);
                        results[i] = Some(CutResult::Cut(cut));
                        phase[i] = Phase::Done;
                    }
                }
                Phase::Backtrace => {
                    if aug_done[i].load(Ordering::Relaxed) == 1 {
                        aug_done[i].store(0, Ordering::Relaxed);
                        flow_value[i] += 1;
                        if flow_value[i] > t {
                            results[i] = Some(CutResult::TooBig);
                            phase[i] = Phase::Done;
                        } else {
                            // Next augmentation phase.
                            for node_states in states.iter_mut() {
                                if let Some(st) = node_states.get_mut(&(i as u32)) {
                                    st.reset_bfs();
                                }
                            }
                            seed_bfs(&mut states, &pos_of, &instances_ref[i], i as u32);
                            phase[i] = Phase::Bfs;
                        }
                    }
                }
                Phase::Done => {}
            }
        }
    }

    Ok(results.into_iter().map(Option::unwrap).collect())
}

#[inline]
fn member_in(member_sets: &[Option<Vec<u32>>], inst: usize, v: u32) -> bool {
    match &member_sets[inst] {
        None => true,
        Some(s) => s.binary_search(&v).is_ok(),
    }
}

fn seed_bfs(states: &mut [NodeState], pos_of: &impl Fn(u32) -> usize, ci: &CutInstance, inst: u32) {
    for &s in &ci.sources {
        let st = states[pos_of(s)].get_mut(&inst).unwrap();
        st.vis_out = true;
        st.vis_in = true;
        st.fresh_out = true;
        st.fresh_in = true;
        st.par_out = ParOut::Start;
        st.par_in = ParIn::Start;
    }
}

fn bfs_has_fresh(states: &[NodeState], inst: u32) -> bool {
    states
        .iter()
        .any(|s| s.get(&inst).is_some_and(|st| st.fresh_in || st.fresh_out))
}

fn extract_cut(
    states: &[NodeState],
    active: &[u32],
    instances: &[CutInstance],
    i: usize,
) -> Vec<u32> {
    let mut cut = Vec::new();
    for (pos, s) in states.iter().enumerate() {
        if let Some(st) = s.get(&(i as u32)) {
            if st.kind == K_INTERNAL && st.vis_in && !st.vis_out {
                cut.push(active[pos]);
            }
        }
    }
    debug_assert!(!instances.is_empty());
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::alg::components;
    use twgraph::gen::{grid, path};
    use twgraph::UGraph;

    fn run_one(g: &UGraph, inst: CutInstance, t: usize) -> CutResult {
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        batch_min_vertex_cut(&mut net, &[inst], t)
            .unwrap()
            .pop()
            .unwrap()
    }

    /// Oracle: does removing `cut` really disconnect X from Y, and is the
    /// size minimal among all subsets of that size (checked by brute force
    /// on small graphs)?
    fn separates(g: &UGraph, cut: &[u32], xs: &[u32], ys: &[u32]) -> bool {
        let keep: Vec<bool> = (0..g.n() as u32).map(|v| !cut.contains(&v)).collect();
        if xs.iter().chain(ys).any(|&v| !keep[v as usize]) {
            return false; // cut may not contain X ∪ Y
        }
        let (h, old_of) = g.induced(&keep);
        let (comp, _) = components(&h);
        let comp_of = |v: u32| {
            let new = old_of.iter().position(|&o| o == v).unwrap();
            comp[new]
        };
        xs.iter()
            .all(|&x| ys.iter().all(|&y| comp_of(x) != comp_of(y)))
    }

    #[test]
    fn path_cut_is_single_vertex() {
        let g = path(5);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![4],
            },
            3,
        );
        match res {
            CutResult::Cut(cut) => {
                assert_eq!(cut.len(), 1);
                assert!(separates(&g, &cut, &[0], &[4]));
            }
            CutResult::TooBig => panic!("path cut must be size 1"),
        }
    }

    #[test]
    fn grid_cut_matches_menger() {
        // 3×4 grid, corner to corner: the corner has degree 2, so the
        // minimum vertex cut is its neighbourhood {1, 4}.
        let g = grid(3, 4);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![11],
            },
            5,
        );
        match res {
            CutResult::Cut(cut) => {
                assert_eq!(cut.len(), 2, "cut = {cut:?}");
                assert!(separates(&g, &cut, &[0], &[11]));
            }
            CutResult::TooBig => panic!("grid cut must be ≤ 2"),
        }
    }

    #[test]
    fn too_big_reported() {
        let g = grid(3, 4);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![11],
            },
            1, // true cut is 2
        );
        assert_eq!(res, CutResult::TooBig);
    }

    #[test]
    fn adjacent_sets_are_unseparable() {
        let g = path(2);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![1],
            },
            5,
        );
        assert_eq!(res, CutResult::TooBig);
    }

    #[test]
    fn overlapping_sets_are_unseparable() {
        let g = path(3);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0, 1],
                sinks: vec![1, 2],
            },
            5,
        );
        assert_eq!(res, CutResult::TooBig);
    }

    #[test]
    fn disconnected_sides_need_empty_cut() {
        let g = UGraph::from_edges(4, [(0, 1), (2, 3)]);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![3],
            },
            5,
        );
        assert_eq!(res, CutResult::Cut(Vec::new()));
    }

    #[test]
    fn membership_restricts_the_graph() {
        // Cycle of 6: cutting 0→3 needs 2 vertices in the full cycle but
        // only 1 inside the half {0,1,2,3}.
        let g = twgraph::gen::cycle(6);
        let res = run_one(
            &g,
            CutInstance {
                members: Some(vec![0, 1, 2, 3]),
                sources: vec![0],
                sinks: vec![3],
            },
            3,
        );
        match res {
            CutResult::Cut(cut) => assert_eq!(cut.len(), 1, "cut = {cut:?}"),
            CutResult::TooBig => panic!("half-cycle cut must be 1"),
        }
        let res_full = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![3],
            },
            3,
        );
        match res_full {
            CutResult::Cut(cut) => {
                assert_eq!(cut.len(), 2);
                assert!(separates(&g, &cut, &[0], &[3]));
            }
            CutResult::TooBig => panic!("cycle cut must be 2"),
        }
    }

    #[test]
    fn batch_runs_concurrently() {
        let g = grid(4, 4);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let insts: Vec<CutInstance> = vec![
            CutInstance {
                members: None,
                sources: vec![0],
                sinks: vec![15],
            },
            CutInstance {
                members: None,
                sources: vec![3],
                sinks: vec![12],
            },
            CutInstance {
                members: None,
                sources: vec![0, 1],
                sinks: vec![14, 15],
            },
        ];
        let res = batch_min_vertex_cut(&mut net, &insts, 6).unwrap();
        for (i, r) in res.iter().enumerate() {
            match r {
                CutResult::Cut(cut) => {
                    assert!(
                        separates(&g, cut, &insts[i].sources, &insts[i].sinks),
                        "instance {i}: {cut:?} does not separate"
                    );
                }
                CutResult::TooBig => panic!("instance {i} unexpectedly too big"),
            }
        }
    }

    #[test]
    fn multi_source_multi_sink() {
        let g = grid(3, 5);
        let res = run_one(
            &g,
            CutInstance {
                members: None,
                sources: vec![0, 5, 10], // left column
                sinks: vec![4, 9, 14],   // right column
            },
            4,
        );
        match res {
            CutResult::Cut(cut) => {
                assert_eq!(cut.len(), 3, "cut = {cut:?}");
                assert!(separates(&g, &cut, &[0, 5, 10], &[4, 9, 14]));
            }
            CutResult::TooBig => panic!("column cut must be 3"),
        }
    }
}
