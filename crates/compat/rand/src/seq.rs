//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
