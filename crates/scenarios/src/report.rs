//! Run reports: charged-cost totals and per-cell records.

use congest_sim::{Metrics, PhaseSnapshot};
use std::fmt;
use treedec::DecompError;

/// The underlying operational failure of a cell: either the build side
/// (decomposition / simulator, wrapped in [`DecompError`]) or the query
/// side (the `labelserve` store, a [`labelserve::ServeError`]).
#[derive(Debug)]
pub enum CellFailure {
    /// Decomposition or CONGEST-simulator failure.
    Decomp(DecompError),
    /// Label-store build or query failure.
    Serve(labelserve::ServeError),
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Decomp(e) => write!(f, "{e}"),
            CellFailure::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl From<DecompError> for CellFailure {
    fn from(e: DecompError) -> Self {
        CellFailure::Decomp(e)
    }
}

impl From<labelserve::ServeError> for CellFailure {
    fn from(e: labelserve::ServeError) -> Self {
        CellFailure::Serve(e)
    }
}

/// A cell failed for an operational reason (simulator violation, invalid
/// decomposition input, store build/query failure) rather than a
/// differential divergence — the latter is an invariant break and still
/// asserts. Carries the cell coordinates so matrix drivers can report
/// which workload died.
#[derive(Debug)]
pub struct CellError {
    /// Scenario registry name.
    pub scenario: String,
    /// Pipeline name.
    pub pipeline: &'static str,
    /// The underlying failure.
    pub source: CellFailure,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}", self.scenario, self.pipeline, self.source)
    }
}

impl std::error::Error for CellError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.source {
            CellFailure::Decomp(e) => Some(e),
            CellFailure::Serve(e) => Some(e),
        }
    }
}

/// Charged-cost totals of one scenario × pipeline cell, aggregated over
/// connected components under the **parallel composition** rule: components
/// execute concurrently in CONGEST, so round-like counters take the
/// maximum over components while traffic counters sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsTotal {
    /// Charged rounds (max over components).
    pub rounds: u64,
    /// Supersteps (max over components).
    pub supersteps: u64,
    /// Messages delivered (sum over components).
    pub messages: u64,
    /// Words moved (sum over components).
    pub words: u64,
    /// Explicitly charged control rounds (max over components).
    pub charged_rounds: u64,
    /// Peak single-superstep per-edge congestion (max over components).
    pub congestion: u64,
}

impl MetricsTotal {
    /// Fold one component's full engine metrics into the total. The rule
    /// itself lives in [`congest_sim::PhaseSnapshot::par_absorb`] (and
    /// [`Metrics::par_absorb`]) — this is a thin adapter so every consumer
    /// aggregates identically.
    pub fn absorb(&mut self, m: &Metrics) {
        let mut acc = self.as_snapshot();
        acc.par_absorb(&m.as_phase(""));
        self.rounds = acc.rounds;
        self.supersteps = acc.supersteps;
        self.messages = acc.messages;
        self.words = acc.words;
        self.charged_rounds = acc.charged_rounds;
        self.congestion = acc.max_edge_words_in_superstep;
    }

    /// The total viewed as an (unnamed) phase snapshot.
    fn as_snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            phase: String::new(),
            rounds: self.rounds,
            supersteps: self.supersteps,
            messages: self.messages,
            words: self.words,
            charged_rounds: self.charged_rounds,
            max_edge_words_in_superstep: self.congestion,
        }
    }

    /// Fold a rounds-only measurement (pipelines that report charged rounds
    /// without a full metrics carrier, e.g. girth trials and matching
    /// augmentations).
    pub fn absorb_rounds(&mut self, rounds: u64) {
        self.rounds = self.rounds.max(rounds);
    }
}

/// The uniform result record of one scenario × pipeline cell.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Scenario registry name.
    pub scenario: String,
    /// Pipeline name (`sssp`, `distlabel`, `girth`, `matching`, `walks`).
    pub pipeline: &'static str,
    /// Vertices of the scenario graph.
    pub n: usize,
    /// Undirected edges of the scenario graph.
    pub m: usize,
    /// Connected components of the scenario graph.
    pub components: usize,
    /// Largest decomposition width over components (0 if none built).
    pub width: usize,
    /// Largest decomposition depth over components.
    pub depth: usize,
    /// Headline output (pipeline-specific: distance checksum, girth value,
    /// matching size, walk-distance checksum).
    pub output: u64,
    /// Number of values differentially verified against the baseline
    /// oracles — every cell must have `checked > 0`.
    pub checked: usize,
    /// Aggregated charged costs.
    pub metrics: MetricsTotal,
    /// Pipeline-specific named counters (trials, augmentations, …).
    pub detail: Vec<(&'static str, u64)>,
    /// Per-phase engine snapshots, names prefixed `c<i>/` per component.
    pub phases: Vec<PhaseSnapshot>,
}

impl CellReport {
    /// Fresh report scaffold for a cell.
    pub fn new(scenario: &str, pipeline: &'static str, n: usize, m: usize) -> Self {
        CellReport {
            scenario: scenario.to_string(),
            pipeline,
            n,
            m,
            components: 0,
            width: 0,
            depth: 0,
            output: 0,
            checked: 0,
            metrics: MetricsTotal::default(),
            detail: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Record a component's decomposition shape.
    pub fn note_decomposition(&mut self, width: usize, depth: usize) {
        self.width = self.width.max(width);
        self.depth = self.depth.max(depth);
    }

    /// Append a component's phase log under a `c<i>/` prefix.
    pub fn note_phases(&mut self, comp: usize, phases: &[PhaseSnapshot]) {
        for p in phases {
            let mut p = p.clone();
            p.phase = format!("c{comp}/{}", p.phase);
            self.phases.push(p);
        }
    }

    /// The canonical JSON value of this cell (stable field set — the bench
    /// bin serializes one such entry per cell into `BENCH_scenarios.json`).
    pub fn json(&self) -> serde_json::Value {
        serde_json::json!({
            "scenario": self.scenario.clone(),
            "pipeline": self.pipeline,
            "n": self.n,
            "m": self.m,
            "components": self.components,
            "width": self.width,
            "depth": self.depth,
            "output": self.output,
            "checked": self.checked,
            "rounds": self.metrics.rounds,
            "supersteps": self.metrics.supersteps,
            "messages": self.metrics.messages,
            "words": self.metrics.words,
            "charged_rounds": self.metrics.charged_rounds,
            "congestion": self.metrics.congestion,
            "detail": self
                .detail
                .iter()
                .map(|(k, v)| serde_json::json!({"key": *k, "value": *v}))
                .collect::<Vec<_>>(),
        })
    }
}

/// Order-independent checksum accumulator for distance-like outputs: folds
/// `(position, value)` pairs with a SplitMix-style scramble so reports can
/// compare whole output vectors as one `u64`.
pub fn fold_checksum(acc: u64, position: u64, value: u64) -> u64 {
    let mut z = position
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    acc.wrapping_add(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_composition_rule() {
        let mut t = MetricsTotal::default();
        let mk = |rounds, messages| {
            let mut m = Metrics::default();
            m.rounds = rounds;
            m.supersteps = rounds;
            m.messages = messages;
            m.words = messages;
            m.max_edge_words_in_superstep = rounds.min(4);
            m
        };
        t.absorb(&mk(10, 100));
        t.absorb(&mk(4, 50));
        assert_eq!(t.rounds, 10);
        assert_eq!(t.supersteps, 10);
        assert_eq!(t.messages, 150);
        assert_eq!(t.words, 150);
        assert_eq!(t.congestion, 4);
        t.absorb_rounds(25);
        assert_eq!(t.rounds, 25);
    }

    #[test]
    fn checksum_depends_on_position_and_value() {
        let a = fold_checksum(0, 1, 5);
        let b = fold_checksum(0, 2, 5);
        let c = fold_checksum(0, 1, 6);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Order-independent accumulation.
        let ab = fold_checksum(fold_checksum(0, 1, 5), 2, 7);
        let ba = fold_checksum(fold_checksum(0, 2, 7), 1, 5);
        assert_eq!(ab, ba);
    }
}
