//! `Sep` — the balanced-separator algorithm (paper §3.3), centralized
//! reference implementation. The distributed implementation in
//! [`crate::dist`] executes the same logic through charged primitives.

use crate::config::SepConfig;
use crate::split::{split_to_completion, STree};
use rand::Rng;
use std::collections::VecDeque;
use twgraph::alg::{min_vertex_cut, MincutError};
use twgraph::UGraph;

/// Which of the algorithm's output paths produced the separator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SepPath {
    /// Step 1: µ(G) ≤ `small_cutoff`·t² — X itself is output.
    Small,
    /// Step 3: the harvested split-tree roots R* became balanced after the
    /// recorded iteration.
    Roots(u64),
    /// Step 4: the sampled-pair cut set Z.
    Cuts,
    /// Practical fallback: R* ∪ Z (only with `union_fallback`).
    Union,
}

/// A successful `Sep` run.
#[derive(Clone, Debug)]
pub struct SepOutcome {
    /// The separator vertices (sorted).
    pub separator: Vec<u32>,
    /// The `t` value that succeeded.
    pub t_used: u64,
    /// Which output path fired.
    pub path: SepPath,
}

/// Spanning tree of the subgraph induced by `members` (must be connected
/// within it), randomized neighbour order.
fn spanning_tree_of(g: &UGraph, members: &[bool], rng: &mut impl Rng) -> STree {
    let root = (0..g.n() as u32)
        .find(|&v| members[v as usize])
        .expect("empty subgraph has no spanning tree");
    let mut parent = vec![u32::MAX; g.n()];
    parent[root as usize] = root;
    let mut nodes = vec![(root, root)];
    let mut q = VecDeque::new();
    q.push_back(root);
    let mut scratch: Vec<u32> = Vec::new();
    while let Some(u) = q.pop_front() {
        scratch.clear();
        scratch.extend(
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&v| members[v as usize] && parent[v as usize] == u32::MAX),
        );
        // Randomized order, matching the arbitrary tie-breaks a distributed
        // execution would produce.
        for i in (1..scratch.len()).rev() {
            scratch.swap(i, rng.gen_range(0..=i));
        }
        for &v in &scratch {
            if parent[v as usize] == u32::MAX {
                parent[v as usize] = u;
                nodes.push((v, u));
                q.push_back(v);
            }
        }
    }
    STree { root, nodes }
}

/// µ-measure of the heaviest component of `g` minus `removed`, restricted
/// to `members`, together with that component's vertex list.
fn heaviest_component(
    g: &UGraph,
    members: &[bool],
    removed: &[bool],
    mu: &[u64],
) -> (u64, Vec<u32>) {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut best: (u64, Vec<u32>) = (0, Vec::new());
    for s in 0..n as u32 {
        let si = s as usize;
        if seen[si] || !members[si] || removed[si] {
            continue;
        }
        let mut comp = vec![s];
        let mut total = mu[si];
        seen[si] = true;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                let vi = v as usize;
                if !seen[vi] && members[vi] && !removed[vi] {
                    seen[vi] = true;
                    total += mu[vi];
                    comp.push(v);
                    q.push_back(v);
                }
            }
        }
        if total > best.0 || (total == best.0 && best.1.is_empty()) {
            best = (total, comp);
        }
    }
    best
}

/// Is `sep` an (X, α)-balanced separator of the subgraph induced by
/// `members` (w.r.t. the measure `mu` summing to `mu_g`)?
pub(crate) fn is_balanced_separator(
    g: &UGraph,
    members: &[bool],
    sep: &[u32],
    mu: &[u64],
    mu_g: u64,
    cfg: &SepConfig,
) -> bool {
    let mut removed = vec![false; g.n()];
    for &v in sep {
        removed[v as usize] = true;
    }
    let (largest, _) = heaviest_component(g, members, &removed, mu);
    cfg.is_balanced(largest, mu_g)
}

/// One attempt of `Sep` at a fixed `t` (steps 1–4). `members` selects the
/// (connected) subgraph to separate; `mu` is the µ_X measure over *global*
/// vertex ids (zero outside `members`). Returns `Ok(None)` when all step-4
/// trials fail — the caller doubles `t`. `Err` propagates a broken
/// [`min_vertex_cut`] invariant from step 4 (never a balance failure).
pub fn sep_centralized(
    g: &UGraph,
    members: &[bool],
    mu: &[u64],
    t: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> Result<Option<SepOutcome>, MincutError> {
    let mu_g: u64 = (0..g.n()).filter(|&v| members[v]).map(|v| mu[v]).sum();

    // Step 1.
    if mu_g <= cfg.small_cutoff * t * t {
        let separator: Vec<u32> = (0..g.n() as u32)
            .filter(|&v| members[v as usize] && mu[v as usize] > 0)
            .collect();
        return Ok(Some(SepOutcome {
            separator,
            t_used: t,
            path: SepPath::Small,
        }));
    }

    // Steps 2–3: harvest split-tree roots over shrinking G_i.
    let member_list: Vec<u32> = (0..g.n() as u32).filter(|&v| members[v as usize]).collect();
    let mut cur_members = members.to_vec(); // V(G_i)
    let mut removed = vec![false; g.n()]; // R*_i as a mask
    let mut r_star: Vec<u32> = Vec::new();
    let mut tis: Vec<Vec<STree>> = Vec::new();
    let iters = cfg.iterations(t);
    let mut roots_balanced_at = None;
    for i in 1..=iters {
        let t_star = spanning_tree_of(g, &cur_members, rng);
        let ti = split_to_completion(t_star, mu, mu_g, t, cfg);
        let mut ri: Vec<u32> = ti.iter().map(|tr| tr.root).collect();
        ri.sort_unstable();
        ri.dedup();
        for &r in &ri {
            if !removed[r as usize] {
                removed[r as usize] = true;
                r_star.push(r);
            }
        }
        tis.push(ti);
        // Balance check of R* against the whole input subgraph.
        let (largest, heaviest) = heaviest_component(g, members, &removed, mu);
        if cfg.is_balanced(largest, mu_g) {
            roots_balanced_at = Some(i);
            break;
        }
        if i < iters {
            // G_{i+1} = heaviest component of G_i − R_i.
            let mut next = vec![false; g.n()];
            // Recompute the heaviest component *within* G_i (not the whole
            // input): restrict to cur_members.
            let (_, comp) = heaviest_component(g, &cur_members, &removed, mu);
            for v in comp {
                next[v as usize] = true;
            }
            let _ = heaviest;
            cur_members = next;
            if cur_members.iter().all(|&b| !b) {
                // Everything got removed — R* is trivially balanced.
                roots_balanced_at = Some(i);
                break;
            }
        }
    }
    if let Some(i) = roots_balanced_at {
        r_star.sort_unstable();
        return Ok(Some(SepOutcome {
            separator: r_star,
            t_used: t,
            path: SepPath::Roots(i),
        }));
    }

    // Step 4: sampled-pair vertex cuts.
    let _ = member_list;
    for _trial in 0..cfg.trials.max(1) {
        let mut z: Vec<u32> = Vec::new();
        for ti in &tis {
            if ti.len() < 2 {
                continue;
            }
            for _ in 0..cfg.sampled_pairs {
                let a = rng.gen_range(0..ti.len());
                let b = rng.gen_range(0..ti.len());
                if a == b {
                    continue;
                }
                let mut xs = ti[a].members();
                let mut ys = ti[b].members();
                xs.sort_unstable();
                ys.sort_unstable();
                let mut memb: Vec<u32> =
                    (0..g.n() as u32).filter(|&v| members[v as usize]).collect();
                memb.sort_unstable();
                if let Some(cut) = min_vertex_cut(g, Some(&memb), &xs, &ys, t as usize)? {
                    z.extend(cut);
                }
            }
        }
        z.sort_unstable();
        z.dedup();
        if is_balanced_separator(g, members, &z, mu, mu_g, cfg) {
            return Ok(Some(SepOutcome {
                separator: z,
                t_used: t,
                path: SepPath::Cuts,
            }));
        }
        if cfg.union_fallback {
            let mut u: Vec<u32> = z.iter().chain(r_star.iter()).copied().collect();
            u.sort_unstable();
            u.dedup();
            if is_balanced_separator(g, members, &u, mu, mu_g, cfg) {
                return Ok(Some(SepOutcome {
                    separator: u,
                    t_used: t,
                    path: SepPath::Union,
                }));
            }
        }
    }
    Ok(None)
}

/// `Sep` with the standard doubling estimation of `t` (paper §3.2): try
/// `t = t0, 2t0, …` until success. Always terminates: at `t` with
/// µ(G) ≤ `small_cutoff`·t², step 1 fires. `Err` propagates a broken
/// [`min_vertex_cut`] invariant from step 4.
pub fn sep_doubling(
    g: &UGraph,
    members: &[bool],
    mu: &[u64],
    t0: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> Result<SepOutcome, MincutError> {
    let mut t = t0.max(2);
    loop {
        if let Some(out) = sep_centralized(g, members, mu, t, cfg, rng)? {
            return Ok(out);
        }
        t *= 2;
        assert!(
            t <= 4 * g.n() as u64 + 16,
            "Sep doubling ran away — this cannot happen (step 1 must fire)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use twgraph::gen::{banded_path, grid, ktree, random_tree};

    fn uniform_mu(n: usize) -> Vec<u64> {
        vec![1; n]
    }

    fn run(g: &UGraph, t0: u64, cfg: &SepConfig, seed: u64) -> SepOutcome {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let members = vec![true; n];
        let out = sep_doubling(g, &members, &uniform_mu(n), t0, cfg, &mut rng).unwrap();
        // The outcome must really be balanced (or the Small path).
        let mu = uniform_mu(n);
        if out.path != SepPath::Small {
            assert!(
                is_balanced_separator(g, &members, &out.separator, &mu, n as u64, cfg),
                "unbalanced separator via {:?}",
                out.path
            );
        }
        assert!(
            out.separator.len() as u64 <= cfg.size_bound(out.t_used),
            "separator size {} exceeds bound {} (t={})",
            out.separator.len(),
            cfg.size_bound(out.t_used),
            out.t_used
        );
        out
    }

    #[test]
    fn small_graph_short_circuits() {
        let g = banded_path(12, 2);
        let cfg = SepConfig::practical(12);
        let out = run(&g, 3, &cfg, 1);
        assert_eq!(out.path, SepPath::Small);
        assert_eq!(out.separator.len(), 12);
    }

    #[test]
    fn banded_path_separates() {
        let g = banded_path(600, 2);
        let cfg = SepConfig::practical(600);
        let out = run(&g, 3, &cfg, 7);
        assert_ne!(out.path, SepPath::Small);
        // t = 3 ≥ τ+1 = 3 should succeed without doubling far.
        assert!(out.t_used <= 12, "t escalated to {}", out.t_used);
    }

    #[test]
    fn ktree_separates_at_tau_plus_one() {
        let g = ktree(400, 3, 5);
        let cfg = SepConfig::practical(400);
        let out = run(&g, 4, &cfg, 3);
        assert!(out.separator.len() <= cfg.size_bound(out.t_used) as usize);
    }

    #[test]
    fn tree_needs_tiny_separator() {
        let g = random_tree(500, 11);
        let cfg = SepConfig::practical(500);
        let out = run(&g, 2, &cfg, 9);
        // Trees (τ=1) are easy; the separator should stay far below n.
        assert!(
            out.separator.len() < 150,
            "separator of a tree too big: {}",
            out.separator.len()
        );
    }

    #[test]
    fn grid_balanced() {
        let g = grid(12, 12);
        let cfg = SepConfig::practical(144);
        let _ = run(&g, 13, &cfg, 2);
    }

    #[test]
    fn weighted_measure_respected() {
        // µ concentrated on the last 100 vertices of a long banded path:
        // balance must be with respect to µ, so the separator has to split
        // the heavy region, not just the middle of the path.
        let g = banded_path(400, 2);
        let n = g.n();
        let mut mu = vec![0u64; n];
        for m in mu.iter_mut().take(400).skip(300) {
            *m = 1;
        }
        let cfg = SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(4);
        let members = vec![true; n];
        let out = sep_doubling(&g, &members, &mu, 3, &cfg, &mut rng).unwrap();
        if out.path != SepPath::Small {
            assert!(is_balanced_separator(
                &g,
                &members,
                &out.separator,
                &mu,
                100,
                &cfg
            ));
            // Balance w.r.t. µ forces at least one separator vertex into
            // (or adjacent to) the heavy tail region.
            assert!(
                out.separator.iter().any(|&v| v >= 295),
                "separator {:?} ignores the heavy region",
                out.separator
            );
        }
    }

    #[test]
    fn paper_constants_on_tiny_graph() {
        // With the paper's constants, any sub-800-vertex graph exits at
        // step 1 for t = 2 — fidelity check of the verbatim constant set.
        let g = banded_path(300, 2);
        let cfg = SepConfig::paper(300);
        let mut rng = SmallRng::seed_from_u64(0);
        let out = sep_centralized(&g, &vec![true; 300], &uniform_mu(300), 2, &cfg, &mut rng)
            .expect("mincut invariant")
            .expect("step 1 must fire");
        assert_eq!(out.path, SepPath::Small);
    }

    #[test]
    fn subgraph_members_respected() {
        // Separate only the left half of a banded path.
        let g = banded_path(400, 2);
        let members: Vec<bool> = (0..400).map(|v| v < 200).collect();
        let mu: Vec<u64> = (0..400).map(|v| u64::from(v < 200)).collect();
        let cfg = SepConfig::practical(200);
        let mut rng = SmallRng::seed_from_u64(12);
        let out = sep_doubling(&g, &members, &mu, 3, &cfg, &mut rng).unwrap();
        for &v in &out.separator {
            assert!(v < 200, "separator vertex {v} outside the subgraph");
        }
    }
}
