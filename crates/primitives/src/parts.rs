//! Part collections: which nodes belong to which subgraphs.
//!
//! A [`Parts`] value describes a collection `H = {H_0, …, H_{N−1}}` of
//! connected subgraphs by per-node membership lists. Vertex-disjoint
//! collections have singleton lists; *near-disjoint* collections
//! (paper Appendix A.1) allow shared boundary vertices.

/// Membership structure of a subgraph collection.
#[derive(Clone, Debug, Default)]
pub struct Parts {
    /// Number of parts `N`.
    pub n_parts: u32,
    /// Sorted part-id list per node (empty = belongs to no part).
    pub members: Vec<Vec<u32>>,
}

impl Parts {
    /// Build from per-node optional labels (the vertex-disjoint case).
    pub fn from_labels(labels: &[Option<u32>]) -> Self {
        let n_parts = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
        Parts {
            n_parts,
            members: labels.iter().map(|l| l.iter().copied().collect()).collect(),
        }
    }

    /// Build from per-node membership lists (near-disjoint case).
    pub fn from_lists(n_parts: u32, mut members: Vec<Vec<u32>>) -> Self {
        for list in &mut members {
            list.sort_unstable();
            list.dedup();
            debug_assert!(list.iter().all(|&p| p < n_parts));
        }
        Parts { n_parts, members }
    }

    /// Number of nodes the structure covers.
    pub fn n_nodes(&self) -> usize {
        self.members.len()
    }

    /// Whether `v` belongs to part `p`.
    #[inline]
    pub fn contains(&self, v: u32, p: u32) -> bool {
        self.members[v as usize].binary_search(&p).is_ok()
    }

    /// Reverse index: the node list of every part.
    pub fn nodes_of_parts(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.n_parts as usize];
        for (v, list) in self.members.iter().enumerate() {
            for &p in list {
                out[p as usize].push(v as u32);
            }
        }
        out
    }

    /// Whether the collection is vertex-disjoint (every node in ≤ 1 part).
    pub fn is_disjoint(&self) -> bool {
        self.members.iter().all(|l| l.len() <= 1)
    }

    /// The maximum number of parts any single node belongs to — the overlap
    /// factor that multiplies congestion for near-disjoint collections.
    pub fn max_overlap(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_roundtrip() {
        let p = Parts::from_labels(&[Some(0), Some(1), None, Some(0)]);
        assert_eq!(p.n_parts, 2);
        assert!(p.contains(0, 0));
        assert!(!p.contains(2, 0));
        assert!(p.is_disjoint());
        let nodes = p.nodes_of_parts();
        assert_eq!(nodes[0], vec![0, 3]);
        assert_eq!(nodes[1], vec![1]);
    }

    #[test]
    fn near_disjoint_overlap() {
        let p = Parts::from_lists(3, vec![vec![0, 1], vec![1], vec![2, 0, 1]]);
        assert!(!p.is_disjoint());
        assert_eq!(p.max_overlap(), 3);
        assert!(p.contains(2, 2));
        assert!(p.contains(2, 0));
    }

    #[test]
    fn empty() {
        let p = Parts::from_labels(&[None, None]);
        assert_eq!(p.n_parts, 0);
        assert_eq!(p.max_overlap(), 0);
    }
}
