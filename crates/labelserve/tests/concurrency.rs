//! Shared-engine hammering: one `QueryEngine` served from many OS threads
//! at once with overlapping batches must stay bit-identical to the
//! sequential ground truth and keep a healthy cache afterwards.
//!
//! (The workspace's offline rayon stand-in runs `batch` sequentially, so
//! the concurrency here comes from `std::thread` — each thread issues its
//! own overlapping batches against the same engine, which is exactly the
//! contended-cache regime the per-shard mutexes must survive. With real
//! rayon the inner batches additionally fan out.)

use labelserve::{QueryEngine, ServeConfig, StoreBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

const THREADS: usize = 8;
const ROUNDS: usize = 6;

/// Decompose + label + compact one connected partial 2-tree.
fn engine_for(seed: u64, cache_capacity: usize) -> QueryEngine {
    let n = 300;
    let g = twgraph::gen::partial_ktree(n, 2, 0.7, seed);
    let inst = twgraph::gen::with_random_weights(&g, 23, seed);
    let cfg = treedec::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = treedec::decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
    let labels = distlabel::build_labels_centralized(&inst, &out.td, &out.info);
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut b = StoreBuilder::new(n);
    b.add_component(&labels, &ids).unwrap();
    QueryEngine::new(
        b.build(32).unwrap(),
        ServeConfig {
            shard_size: 32,
            cache_capacity,
            ..ServeConfig::default()
        },
    )
}

#[test]
fn hammered_engine_stays_bit_identical() {
    for seed in [1u64, 2, 3] {
        // Tiny caches maximize eviction churn under contention.
        let engine = engine_for(seed, 64);
        let n = engine.store().n();
        let queries = labelserve::seeded_queries(
            n,
            &labelserve::WorkloadSpec {
                queries: 2_000,
                hot_pairs: 32,
                hot_fraction: 0.7,
            },
            seed,
        );
        // Sequential ground truth off the raw store (no cache involved).
        let expected: Vec<u64> = queries
            .iter()
            .map(|&(s, t)| engine.store().distance(s, t).unwrap())
            .collect();

        let divergences = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let engine = &engine;
                let queries = &queries;
                let expected = &expected;
                let divergences = &divergences;
                scope.spawn(move || {
                    // Each thread replays the whole stream ROUNDS times,
                    // rotated by its id so threads collide on the same
                    // pairs at different times (maximal cache overlap).
                    for round in 0..ROUNDS {
                        let off = (tid * 251 + round * 97) % queries.len();
                        let window = queries.len() / 2;
                        let slice: Vec<(u32, u32)> = (0..window)
                            .map(|i| queries[(off + i) % queries.len()])
                            .collect();
                        let got = engine.batch(&slice).unwrap();
                        for (i, &d) in got.iter().enumerate() {
                            if d != expected[(off + i) % queries.len()] {
                                divergences.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            divergences.load(Ordering::Relaxed),
            0,
            "seed {seed}: concurrent answers diverged from ground truth"
        );

        // The cache survived the stampede: counters account for every
        // query, residency respects capacity, and fresh queries still
        // answer correctly through the same caches.
        let stats = engine.stats();
        let fired = (THREADS * ROUNDS * (queries.len() / 2)) as u64;
        assert_eq!(
            stats.hits + stats.misses,
            fired,
            "seed {seed}: lost queries"
        );
        assert!(stats.hits > 0, "seed {seed}: overlapping batches never hit");
        let shards = engine.store().shard_count();
        assert!(
            stats.entries <= shards * engine.config().cache_capacity,
            "seed {seed}: cache residency exceeds capacity"
        );
        for (i, &(s, t)) in queries.iter().enumerate().take(64) {
            assert_eq!(
                engine.distance(s, t).unwrap(),
                expected[i],
                "seed {seed}: post-hammer query ({s}, {t}) wrong"
            );
        }
    }
}

#[test]
fn concurrent_readers_with_disjoint_and_shared_ranges() {
    let engine = engine_for(9, 16);
    let n = engine.store().n() as u32;
    // Half the threads sweep disjoint source ranges (cold, per-shard
    // locality); half replay one shared hot row (contended pairs).
    let hot_row: Vec<(u32, u32)> = (0..n).map(|v| (n / 2, v)).collect();
    let hot_expected: Vec<u64> = hot_row
        .iter()
        .map(|&(s, t)| engine.store().distance(s, t).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let engine = &engine;
            let hot_row = &hot_row;
            let hot_expected = &hot_expected;
            scope.spawn(move || {
                if tid % 2 == 0 {
                    let lo = (tid as u32 / 2) * (n / 4);
                    let mut rng = SmallRng::seed_from_u64(tid as u64);
                    for _ in 0..400 {
                        let s = lo + rng.gen_range(0..n / 4);
                        let t = rng.gen_range(0..n);
                        let d = engine.distance(s, t).unwrap();
                        assert_eq!(d, engine.store().distance(s, t).unwrap());
                    }
                } else {
                    for _ in 0..ROUNDS {
                        assert_eq!(engine.batch(hot_row).unwrap(), *hot_expected);
                    }
                }
            });
        }
    });
    assert!(engine.stats().hits > 0);
}
