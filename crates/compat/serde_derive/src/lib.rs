//! `#[derive(Serialize)]` for the offline serde stand-in.
//!
//! Hand-rolled token-stream parsing (no `syn`/`quote`): supports exactly the
//! shape the workspace uses — non-generic structs with named fields. Anything
//! else produces a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (JSON-only; see `crates/compat/serde`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match try_derive(input) {
        Ok(ts) => ts,
        Err(msg) => {
            // Emit a compile_error! carrying the message.
            format!("compile_error!({msg:?});").parse().unwrap()
        }
    }
}

fn try_derive(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.: skip the parenthesized scope.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => {
            return Err(format!(
                "the offline serde stand-in only derives Serialize for structs \
                 with named fields (found {other:?})"
            ))
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "the offline serde stand-in cannot derive Serialize for generic \
                     struct `{name}`"
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "the offline serde stand-in cannot derive Serialize for tuple \
                     struct `{name}`"
                ))
            }
            Some(_) => i += 1,
            None => {
                return Err(format!(
                    "the offline serde stand-in cannot derive Serialize for `{name}`: \
                     no named-field body found"
                ))
            }
        }
    };

    let fields = parse_field_names(body)?;

    let mut steps = String::new();
    for (idx, f) in fields.iter().enumerate() {
        if idx > 0 {
            steps.push_str("out.push(',');\n");
        }
        steps.push_str(&format!(
            "out.push_str({key:?});\nserde::Serialize::serialize_json(&self.{f}, out);\n",
            key = format!("\"{f}\":"),
        ));
    }

    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n\
                 out.push('{{');\n\
                 {steps}\
                 out.push('}}');\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("serde_derive stand-in generated invalid code: {e:?}"))
}

/// Extract field names from the brace body of a named-field struct: skip
/// attributes and visibility, take the identifier before each top-level `:`,
/// then skip the type up to the next top-level `,`.
fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected field name, found {tt:?}"));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}
