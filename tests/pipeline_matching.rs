//! End-to-end bipartite matching pipeline (Theorem 4) against
//! Hopcroft–Karp and the distributed alternating-BFS baseline.

use lowtw::prelude::*;
use lowtw::{baselines, bmatch, twgraph};

#[test]
fn matching_over_distributed_decomposition() {
    let (g, side) = twgraph::gen::bipartite_banded(35, 35, 2, 0.55, 17);
    let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
    let (session, rounds) = Session::decompose_distributed(&g, 3, 17).unwrap();
    assert!(rounds > 0);
    let out = session
        .max_matching(&inst, bmatch::MatchMode::Centralized)
        .unwrap();
    let want = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
    assert_eq!(out.size(), want);
}

#[test]
fn matching_many_seeds() {
    for seed in 0..8 {
        let (g, side) = twgraph::gen::bipartite_banded(30, 24, 2, 0.45, seed);
        let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
        let session = Session::decompose(&g, 3, seed).unwrap();
        let out = session
            .max_matching(&inst, bmatch::MatchMode::Centralized)
            .unwrap();
        let want = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
        assert_eq!(out.size(), want, "seed {seed}");
        assert!(
            baselines::matching::is_valid_matching(&g, &side, &out.mate),
            "seed {seed}"
        );
    }
}

#[test]
fn distributed_mode_rounds_recorded_and_correct() {
    let (g, side) = twgraph::gen::bipartite_banded(14, 14, 1, 0.5, 4);
    let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
    let session = Session::decompose(&g, 3, 4).unwrap();
    let out = session
        .max_matching(&inst, bmatch::MatchMode::Distributed)
        .unwrap();
    let want = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
    assert_eq!(out.size(), want);
    if out.attempts > 0 {
        assert!(out.rounds > 0);
    }
}

#[test]
fn baseline_and_theorem4_agree() {
    let (g, side) = twgraph::gen::bipartite_banded(40, 40, 3, 0.4, 23);
    let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
    let session = Session::decompose(&g, 4, 23).unwrap();
    let ours = session
        .max_matching(&inst, bmatch::MatchMode::Centralized)
        .unwrap();
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let (mate, rounds) = baselines::matching_distributed_baseline(&mut net, &g, &side).unwrap();
    assert_eq!(ours.size(), baselines::matching_size(&mate));
    assert!(rounds > 0);
}
