//! Figure 1 reproduction: trace the `Split` procedure.
//!
//! Prints, round by round, how a spanning tree is carved into split trees
//! whose µ-sizes land in [µ(G)/(12t), µ(G)/(4t)] — the invariant
//! illustrated by the paper's Figure 1.
//!
//! ```sh
//! cargo run --release --example fig1_split_trace
//! ```

use lowtw::treedec::split::{split_tree, STree};
use lowtw::treedec::SepConfig;
use lowtw::twgraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 240usize;
    let t = 3u64;
    let g = twgraph::gen::banded_path(n, 3);
    let mut rng = SmallRng::seed_from_u64(1);
    let rt = twgraph::alg::random_spanning_tree(&g, 0, &mut rng);
    let start = STree {
        root: 0,
        nodes: rt
            .members()
            .into_iter()
            .map(|v| (v, rt.parent[v as usize]))
            .collect(),
    };
    let mu = vec![1u64; n];
    let mu_g = n as u64;
    let cfg = SepConfig::practical(n);
    let lo = mu_g as f64 / (cfg.split_lo * t) as f64;
    let hi = mu_g as f64 / (cfg.split_hi * t) as f64;
    println!("Split on a spanning tree of the 3-banded path, n = {n}, t = {t}");
    println!("target window: µ ∈ [µG/12t, µG/4t] = [{lo:.1}, {hi:.1}]\n");

    let mut work = vec![start];
    let mut done: Vec<STree> = Vec::new();
    let mut round = 0;
    while let Some(tree) = work.pop() {
        round += 1;
        let c = tree.centroid(&mu);
        let out = split_tree(&tree, &mu, mu_g, t, &cfg);
        println!(
            "round {round}: split tree of µ = {:>4} at center v{c} → {} finished, {} requeued",
            tree.mu(&mu),
            out.finished.len(),
            out.requeue.len()
        );
        for f in &out.finished {
            println!("    T_i += tree rooted at v{} (µ = {})", f.root, f.mu(&mu));
        }
        done.extend(out.finished);
        work.extend(out.requeue);
    }

    println!("\nfinal T_i: {} split trees", done.len());
    let sizes: Vec<u64> = done.iter().map(|d| d.mu(&mu)).collect();
    println!("sizes: {sizes:?}");
    let roots: std::collections::BTreeSet<u32> = done.iter().map(|d| d.root).collect();
    println!(
        "root set R (the separator harvest): {} distinct vertices",
        roots.len()
    );
}
