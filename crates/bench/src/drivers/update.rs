//! The `update` driver: incremental label maintenance vs from-scratch
//! rebuild under live queries. Applies single-edge batches (a heavy
//! insert deep in the decomposition, then its deletion) while reader
//! threads query the versioned engine continuously — proving queries were
//! served throughout and measuring the incremental apply+publish wall
//! against a full scratch rebuild of the same mutated instance.

use super::{gen_instance, RowBuilder};
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use labelserve::{ServeConfig, VersionedEngine};
use lowtw::{distlabel, twgraph};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use twgraph::EdgeBatch;

pub fn run(trial: &Trial) -> TrialRow {
    let inst = gen_instance(trial, 20_000, 2);
    // The paper-claim floor for the full-size run; quick profiles set 0 to
    // record the speedup without asserting on a noisy small instance.
    let min_speedup = trial.params.f64("min_speedup", 0.0);
    let mut row = RowBuilder::new(trial);
    let n = inst.n;

    // Scratch build: the baseline every incremental apply competes with.
    let t = Instant::now();
    let mut dl = distlabel::DynamicLabeling::build(&inst.inst, inst.k as u64 + 1, inst.seed)
        .expect("initial build failed");
    row.wall("label_build", t.elapsed());
    let serve_cfg = ServeConfig::default();
    let t = Instant::now();
    let eng = VersionedEngine::from_labeling(&dl, serve_cfg).expect("store build failed");
    row.wall("store_build", t.elapsed());
    let part = &dl.parts()[0];
    row.det("n", n as u64);
    row.det("m", inst.g.m() as u64);
    row.det("width", part.td().width() as u64);
    row.det("depth", part.td().stats().depth as u64);

    // Pick an edit site deep in the decomposition: the deepest leaf with a
    // region pair that is NOT already adjacent (see the old bench bin's
    // rationale — deleting the inserted edge restores the exact initial
    // instance).
    let adjacent = |u: u32, v: u32| {
        let inst = dl.inst();
        inst.out_arcs(u)
            .iter()
            .any(|&a| inst.arc(twgraph::ArcId(a)).dst == v)
            || inst
                .out_arcs(v)
                .iter()
                .any(|&a| inst.arc(twgraph::ArcId(a)).dst == u)
    };
    let depths = part.td().depths();
    let mut leaves: Vec<usize> = (0..part.info().len())
        .filter(|&x| part.info()[x].is_leaf && part.info()[x].gpx.len() >= 2)
        .collect();
    leaves.sort_unstable_by_key(|&x| std::cmp::Reverse(depths[x]));
    let (leaf, ga, gb) = leaves
        .iter()
        .find_map(|&x| {
            let gpx = &part.info()[x].gpx;
            (0..gpx.len()).find_map(|i| {
                (i + 1..gpx.len()).find_map(|j| {
                    let ga = part.old_of()[gpx[i] as usize];
                    let gb = part.old_of()[gpx[j] as usize];
                    (!adjacent(ga, gb)).then_some((x, ga, gb))
                })
            })
        })
        .expect("no leaf region with a non-adjacent vertex pair");
    row.det("edit_depth", depths[leaf] as u64);

    // A weight far above any shortest path cannot improve ancestor bag
    // distances, so the rebuild stays confined to the dirty subtree.
    let heavy = 25_000u64.max(n as u64);
    let batches = [
        ("insert_heavy", EdgeBatch::new().insert(ga, gb, heavy)),
        ("delete_heavy", EdgeBatch::new().delete(ga, gb)),
        ("insert_heavy_2", EdgeBatch::new().insert(ga, gb, heavy + 1)),
        ("delete_heavy_2", EdgeBatch::new().delete(ga, gb)),
    ];

    // Readers hammer the engine for the whole incremental phase; every
    // query must answer (no epoch gap).
    let stop = AtomicBool::new(false);
    let queries_during = AtomicU64::new(0);
    let epochs_seen = AtomicU64::new(0);
    let mut results = Vec::new();

    // Raised on every exit path — a panicking writer must still release
    // the readers or the scope join below waits on them forever.
    struct StopGuard<'a>(&'a AtomicBool);
    impl Drop for StopGuard<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }

    std::thread::scope(|scope| {
        for r in 0..4u64 {
            let eng = &eng;
            let stop = &stop;
            let queries_during = &queries_during;
            let epochs_seen = &epochs_seen;
            scope.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Acquire) {
                    let snap = eng.snapshot();
                    epochs_seen.fetch_max(snap.epoch(), Ordering::Relaxed);
                    let s = ((i * 2_654_435_761) % n as u64) as u32;
                    let t = ((i * 40_503 + 7) % n as u64) as u32;
                    snap.distance(s, t).expect("query failed mid-publish");
                    queries_during.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        let _stop_guard = StopGuard(&stop);
        for (name, batch) in &batches {
            let t = Instant::now();
            let rep = dl.apply(batch).expect("incremental apply failed");
            let wall_apply = t.elapsed();
            let t = Instant::now();
            let stats = eng.publish_from(&dl, &rep.dirty).expect("publish failed");
            let wall_publish = t.elapsed();
            results.push((name.to_string(), wall_apply, wall_publish, rep, stats));
        }
    });
    for (name, wall_apply, wall_publish, rep, stats) in &results {
        assert_eq!(
            rep.fallbacks, 0,
            "{name}: heavy edge must take the scoped path"
        );
        row.wall(format!("{name}/apply"), *wall_apply);
        row.wall(format!("{name}/publish"), *wall_publish);
        row.det(format!("{name}/dirty"), rep.dirty.len() as u64);
        row.det(format!("{name}/scoped_parts"), rep.parts_scoped as u64);
        row.det(format!("{name}/reused_parts"), rep.parts_reused as u64);
        row.det(format!("{name}/fallbacks"), rep.fallbacks as u64);
        row.det(format!("{name}/region_nodes"), rep.region_nodes as u64);
        row.det(format!("{name}/dirty_shards"), stats.dirty_shards as u64);
        row.det(format!("{name}/total_shards"), stats.total_shards as u64);
        row.det(format!("{name}/epoch"), stats.epoch);
        // Carried pairs depend on what the reader threads pulled into the
        // hot cache mid-publish — context, not a gated quantity.
        row.info(format!("{name}/carried_pairs"), stats.carried_pairs as f64);
    }

    // Correctness spot-check on the final graph (heavy edge deleted, so it
    // must equal the original instance's distances).
    let truth = twgraph::alg::dijkstra(dl.inst(), ga);
    let mut checked = 0u64;
    for t in [gb, 0, (n / 2) as u32, n as u32 - 1] {
        assert_eq!(
            eng.distance(ga, t).unwrap(),
            truth.dist[t as usize],
            "post-update serve diverged at ({ga}, {t})"
        );
        checked += 1;
    }
    row.det("checked", checked);

    // Scratch rebuild of the same final instance.
    let t = Instant::now();
    let scratch =
        distlabel::DynamicLabeling::build(dl.inst(), inst.k as u64 + 1, inst.seed ^ 0xBEEF)
            .expect("scratch rebuild failed");
    let scratch_store =
        VersionedEngine::from_labeling(&scratch, serve_cfg).expect("scratch store failed");
    let wall_scratch = t.elapsed();
    drop(scratch_store);
    row.wall("scratch_rebuild", wall_scratch);

    let worst_incr = results
        .iter()
        .map(|(_, a, p, _, _)| (a.as_micros() + p.as_micros()) as u64)
        .max()
        .unwrap();
    let speedup = wall_scratch.as_micros() as f64 / worst_incr.max(1) as f64;
    let served = queries_during.load(Ordering::Relaxed);
    assert!(served > 0, "readers must have been served during rebuilds");
    row.info("speedup_vs_scratch", speedup);
    row.info("queries_during_rebuild", served as f64);
    row.info(
        "max_epoch_observed",
        epochs_seen.load(Ordering::Relaxed) as f64,
    );
    if min_speedup > 0.0 {
        assert!(
            speedup >= min_speedup,
            "incremental must beat scratch by {min_speedup}x (got {speedup:.1}x)"
        );
    }
    row.finish()
}
