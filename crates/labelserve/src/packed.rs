//! The succinct shard layout: delta-coded, bit-packed label entries in
//! fixed-size blocks with per-block skip headers.
//!
//! ## Why
//!
//! The flat CSR layout spends 20 bytes per entry (`u32` hub + two `u64`
//! distances) — ~890 bytes/node on the n = 100k reference instance, which
//! puts a 10M-node store near 9 GB and makes **memory** the scaling wall
//! (ROADMAP item 3). Label entries are extremely compressible: hubs are
//! sorted (small deltas), consecutive hubs have correlated distances
//! (small signed deltas), and on symmetric instances `d(v → h)` equals
//! `d(h → v)` (a zero delta). This module packs all three observations
//! into a byte stream the decoder can still merge-join without
//! materializing.
//!
//! ## Block format
//!
//! A node's entries (sorted strictly ascending by hub) are grouped into
//! blocks of [`BLOCK`] = 64 entries. Each block owns two skip-header words
//! in shard-level arrays — the hub id of its first entry and the byte
//! offset of its body — so the decoder can binary-search block headers
//! (the packed twin of `distlabel::decode_entries`' gallop) and only
//! linearly decode *inside* one block:
//!
//! ```text
//! block body  (entry 0's hub lives in the skip header, not the body)
//!   bh, bd, bf  3 × u8         per-lane bit widths (0..=57 or 64)
//!   dto_0       varint         entry 0's forward distance (LEB128)
//!   H lane  ⌈(len−1)·bh / 8⌉ B  hub_i − hub_{i−1} − 1
//!   D lane  ⌈(len−1)·bd / 8⌉ B  zigzag(dto_i − dto_{i−1})
//!   F lane  ⌈len·bf / 8⌉ B      zigzag(dfrom_i − dto_i)
//! ```
//!
//! Each lane is a **bit-packed** little-endian array (frame-of-reference
//! style): the bit width is the smallest that holds the block's largest
//! value (`zigzag` folds the *wrapping* `u64` difference cast to `i64`,
//! so the coding round-trips every possible distance value, including
//! [`INF`], with no range assumption). Fixed per-block widths are the
//! decode win over varints: a varint's length is only known after reading
//! it, so any varint stream is one long loop-carried dependency chain,
//! while packed lanes make every value's bit address computable upfront —
//! the decoder runs straight-line shift/mask loads the CPU can overlap.
//! Width 0 elides a constant-zero lane outright: on symmetric instances
//! `dfrom = dto` everywhere, so whole F lanes vanish (and a forward,
//! source-side row never reads its F lane regardless). Widths 58..=63
//! never occur (they round up to 64, which keeps every extraction inside
//! one unaligned 8-byte load).
//!
//! ## Shard segment
//!
//! A packed shard is one contiguous little-endian byte segment — the same
//! bytes in memory and on disk, which is what makes [`crate::file`]'s
//! `open_mmap` zero-copy:
//!
//! ```text
//! 0   nodes        u32                    rows in this shard
//! 4   entries      u32                    total entries (≤ u32::MAX, checked)
//! 8   blocks       u32                    total blocks
//! 12  data_len     u32                    body-stream bytes (≤ u32::MAX, checked)
//! 16  row_entries  (nodes+1) × u32        CSR over entries
//! ..  row_blocks   (nodes+1) × u32        CSR over blocks
//! ..  blk_first    blocks × u32           skip header: first hub per block
//! ..  blk_start    blocks × u32           skip header: body byte offset per block
//! ..  data         data_len bytes         the packed entry stream (per
//!                                         block: 3 width bytes + dto_0
//!                                         varint + bit-packed H/D/F lanes)
//! ```
//!
//! Every multi-byte integer is read with `from_le_bytes`, so segments may
//! sit at any alignment inside a mapped file.

use crate::error::ServeError;
use crate::file::Storage;
use std::sync::Arc;
use twgraph::{dist_add, Dist, INF};

/// Entries per block. 64 keeps a block's skip headers at 8 bytes per
/// ~64–400 body bytes and bounds the linear scan a seek can cost.
pub(crate) const BLOCK: usize = 64;

/// Fixed per-segment header bytes ahead of the section table.
const SEG_HEADER: usize = 16;

/// Append `x` as LEB128.
#[inline]
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Zigzag-fold a signed delta into an unsigned varint payload.
#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Wrapping difference `a − b` folded for svarint encoding: round-trips
/// every `(a, b)` pair via [`apply_delta`], small when `a ≈ b`.
#[inline]
fn fold_delta(a: u64, b: u64) -> u64 {
    zigzag(a.wrapping_sub(b) as i64)
}

/// Inverse of [`fold_delta`]: recover `a` from `b` and the folded delta.
#[inline]
fn apply_delta(b: u64, z: u64) -> u64 {
    b.wrapping_add(unzigzag(z) as u64)
}

/// Read one LEB128 varint at `pos`, advancing it. The segment validator
/// ([`PackedShard::validate`]) proves every stream terminates in bounds
/// before a shard serves, so the hot path never sees a truncated varint.
///
/// Decodes through one unaligned 8-byte little-endian load: hub gaps and
/// distance deltas are overwhelmingly 1–3 bytes, so the continuation bits
/// of the loaded word settle the length without a per-byte loop. Reads
/// within 8 bytes of the stream tail fall back to a zero-padded copy (the
/// pad bytes read as varint terminators, so the value is unaffected).
#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let p = *pos;
    let w = if p + 8 <= data.len() {
        // SAFETY: bounds just checked; unaligned u64 loads are valid for
        // any byte pointer. (The branchless slice form costs a visible
        // fraction of the decode hot path at 1M-node store scale.)
        u64::from_le(unsafe { data.as_ptr().add(p).cast::<u64>().read_unaligned() })
    } else {
        let mut tail = [0u8; 8];
        tail[..data.len() - p].copy_from_slice(&data[p..]);
        u64::from_le_bytes(tail)
    };
    if w & 0x80 == 0 {
        *pos = p + 1;
        return w & 0x7f;
    }
    if w & 0x8000 == 0 {
        *pos = p + 2;
        return (w & 0x7f) | (w >> 8 & 0x7f) << 7;
    }
    if w & 0x80_0000 == 0 {
        *pos = p + 3;
        return (w & 0x7f) | (w >> 8 & 0x7f) << 7 | (w >> 16 & 0x7f) << 14;
    }
    if w & 0x8000_0000 == 0 {
        *pos = p + 4;
        return (w & 0x7f) | (w >> 8 & 0x7f) << 7 | (w >> 16 & 0x7f) << 14 | (w >> 24 & 0x7f) << 21;
    }
    varint_tail(data, pos)
}

/// ≥ 5-byte varints (distances near [`INF`]): the byte-loop continuation
/// of [`read_varint`], out of line to keep the common path small.
#[cold]
fn varint_tail(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// Read a `u32` at byte offset `off` (unaligned-safe).
#[inline]
pub(crate) fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Lane bit width for a block whose largest value is `max`: the minimal
/// bit count, except 58..=63 round up to 64 so that any value extraction
/// stays within one unaligned 8-byte load (`shift ≤ 7` requires
/// `width ≤ 57`; width 64 is byte-aligned, so its shift is always 0).
#[inline]
fn lane_width(max: u64) -> usize {
    let b = 64 - max.leading_zeros() as usize;
    if b > 57 {
        64
    } else {
        b
    }
}

/// Serialized byte length of a lane of `count` values at `w` bits each.
#[inline]
fn lane_bytes(count: usize, w: usize) -> usize {
    (count * w).div_ceil(8)
}

/// A lane bit width read back from a block header is valid iff the
/// encoder could have produced it (see [`lane_width`]).
#[inline]
fn valid_width(w: usize) -> bool {
    w <= 57 || w == 64
}

/// Append `vals` as a `w`-bit packed little-endian lane.
fn push_bits(out: &mut Vec<u8>, vals: &[u64], w: usize) {
    if w == 0 {
        return;
    }
    if w == 64 {
        for &v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
        return;
    }
    let (mut acc, mut n) = (0u64, 0usize);
    for &v in vals {
        debug_assert!(w == 64 || v < 1u64 << w);
        acc |= v << n;
        n += w;
        while n >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            n -= 8;
        }
    }
    if n > 0 {
        out.push(acc as u8);
    }
}

/// Load 8 little-endian bytes at `pos` (zero-padded past the stream
/// tail). One unaligned load in the common case.
#[inline]
fn load_word(data: &[u8], pos: usize) -> u64 {
    if pos + 8 <= data.len() {
        // SAFETY: bounds just checked; unaligned u64 loads are valid for
        // any byte pointer. (The branchless slice form costs a visible
        // fraction of the decode hot path at 1M-node store scale.)
        u64::from_le(unsafe { data.as_ptr().add(pos).cast::<u64>().read_unaligned() })
    } else {
        let mut tail = [0u8; 8];
        tail[..data.len() - pos].copy_from_slice(&data[pos..]);
        u64::from_le_bytes(tail)
    }
}

/// Value `j` of a `w`-bit lane starting at byte `base` (1 ≤ `w` ≤ 57 or
/// `w` = 64). The bit address is pure arithmetic, so consecutive
/// extractions are independent loads the CPU can overlap.
#[inline]
fn extract(data: &[u8], base: usize, j: usize, w: usize) -> u64 {
    if w == 64 {
        return load_word(data, base + 8 * j);
    }
    let bit = j * w;
    let word = load_word(data, base + (bit >> 3));
    (word >> (bit & 7)) & ((1u64 << w) - 1)
}

/// One node-range shard in the packed layout: a view over one contiguous
/// segment, either heap-built or a window of a mapped store file.
#[derive(Debug)]
pub(crate) struct PackedShard {
    /// First global vertex id of the shard's node range.
    pub(crate) base: u32,
    nodes: usize,
    entries: usize,
    blocks: usize,
    data_len: usize,
    /// The backing bytes (owned buffer or shared file map).
    buf: Arc<Storage>,
    /// Segment start within `buf`.
    seg: usize,
}

impl PackedShard {
    /// Encode `rows` (the per-node sorted entry lists of nodes
    /// `base..base + rows.len()`) into a fresh heap-backed segment.
    ///
    /// Typed failures instead of silent corruption (the store-invariant
    /// sweep this layout rides in on):
    /// * more than `u32::MAX` entries or body bytes in one shard —
    ///   [`ServeError::ShardTooLarge`] (the flat builder's CSR offsets
    ///   have the same checked bound);
    /// * a row whose hubs are not strictly ascending —
    ///   [`ServeError::UnsortedNodeEntries`] (the delta coding would
    ///   otherwise wrap and decode wrong distances).
    pub(crate) fn pack(
        shard_index: usize,
        base: u32,
        rows: &[Vec<(u32, Dist, Dist)>],
    ) -> Result<PackedShard, ServeError> {
        let mut row_entries: Vec<u32> = vec![0];
        let mut row_blocks: Vec<u32> = vec![0];
        let mut blk_first: Vec<u32> = Vec::new();
        let mut blk_start: Vec<u32> = Vec::new();
        let mut data: Vec<u8> = Vec::new();
        // Per-block lane scratch (pre-width values), reused across blocks.
        let (mut lane_h, mut lane_d, mut lane_f) =
            (Vec::<u64>::new(), Vec::<u64>::new(), Vec::<u64>::new());
        let mut entries_total = 0usize;
        for (local, row) in rows.iter().enumerate() {
            for (bi, block) in row.chunks(BLOCK).enumerate() {
                lane_h.clear();
                lane_d.clear();
                lane_f.clear();
                let mut prev_hub = 0u32;
                for (i, &(hub, to, from)) in block.iter().enumerate() {
                    if i == 0 {
                        blk_first.push(hub);
                    } else {
                        if hub <= prev_hub {
                            return Err(ServeError::UnsortedNodeEntries {
                                node: base + local as u32,
                            });
                        }
                        lane_h.push(u64::from(hub - prev_hub - 1));
                        lane_d.push(fold_delta(to, prev_dto(&block[i - 1])));
                    }
                    lane_f.push(fold_delta(from, to));
                    prev_hub = hub;
                }
                // Cross-block sortedness: the previous block's last hub
                // must sit below this block's first.
                if bi > 0 && block[0].0 <= row[bi * BLOCK - 1].0 {
                    return Err(ServeError::UnsortedNodeEntries {
                        node: base + local as u32,
                    });
                }
                let start = u32::try_from(data.len()).map_err(|_| ServeError::ShardTooLarge {
                    shard: shard_index,
                    entries: entries_total,
                    bytes: data.len(),
                })?;
                blk_start.push(start);
                let max = |v: &[u64]| v.iter().copied().max().unwrap_or(0);
                let bh = lane_width(max(&lane_h));
                let bd = lane_width(max(&lane_d));
                let bf = lane_width(max(&lane_f));
                data.push(bh as u8);
                data.push(bd as u8);
                data.push(bf as u8);
                push_varint(&mut data, block[0].1);
                push_bits(&mut data, &lane_h, bh);
                push_bits(&mut data, &lane_d, bd);
                push_bits(&mut data, &lane_f, bf);
            }
            entries_total += row.len();
            let e = u32::try_from(entries_total).map_err(|_| ServeError::ShardTooLarge {
                shard: shard_index,
                entries: entries_total,
                bytes: data.len(),
            })?;
            row_entries.push(e);
            row_blocks.push(blk_first.len() as u32);
        }
        let data_len = u32::try_from(data.len()).map_err(|_| ServeError::ShardTooLarge {
            shard: shard_index,
            entries: entries_total,
            bytes: data.len(),
        })?;

        let nodes = row_entries.len() - 1;
        let blocks = blk_first.len();
        let mut buf =
            Vec::with_capacity(SEG_HEADER + 4 * (2 * (nodes + 1) + 2 * blocks) + data.len());
        buf.extend_from_slice(&(nodes as u32).to_le_bytes());
        buf.extend_from_slice(&(entries_total as u32).to_le_bytes());
        buf.extend_from_slice(&(blocks as u32).to_le_bytes());
        buf.extend_from_slice(&data_len.to_le_bytes());
        for v in row_entries
            .iter()
            .chain(&row_blocks)
            .chain(&blk_first)
            .chain(&blk_start)
        {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&data);
        Ok(PackedShard {
            base,
            nodes,
            entries: entries_total,
            blocks,
            data_len: data.len(),
            buf: Arc::new(Storage::Heap(buf)),
            seg: 0,
        })
    }

    /// View a serialized segment at `buf[seg..]` (e.g. inside a mapped
    /// store file) without copying. [`validate`](Self::validate) must pass
    /// before the shard serves queries.
    pub(crate) fn from_segment(
        base: u32,
        buf: Arc<Storage>,
        seg: usize,
    ) -> Result<PackedShard, ServeError> {
        let bytes = buf.as_slice();
        if seg + SEG_HEADER > bytes.len() {
            return Err(ServeError::CorruptSegment {
                what: "segment header past end of buffer",
            });
        }
        let nodes = u32_at(bytes, seg) as usize;
        let entries = u32_at(bytes, seg + 4) as usize;
        let blocks = u32_at(bytes, seg + 8) as usize;
        let data_len = u32_at(bytes, seg + 12) as usize;
        let shard = PackedShard {
            base,
            nodes,
            entries,
            blocks,
            data_len,
            buf: Arc::clone(&buf),
            seg,
        };
        if shard.seg_len() > bytes.len() - seg {
            return Err(ServeError::CorruptSegment {
                what: "segment sections past end of buffer",
            });
        }
        Ok(shard)
    }

    /// Total serialized length of this segment in bytes.
    pub(crate) fn seg_len(&self) -> usize {
        SEG_HEADER + 4 * (2 * (self.nodes + 1) + 2 * self.blocks) + self.data_len
    }

    /// The segment's raw bytes (exactly what [`crate::file`] writes).
    pub(crate) fn seg_bytes(&self) -> &[u8] {
        &self.buf.as_slice()[self.seg..self.seg + self.seg_len()]
    }

    /// Rows in this shard.
    pub(crate) fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total entries in this shard.
    pub(crate) fn entries(&self) -> usize {
        self.entries
    }

    #[inline]
    fn row_entries_off(&self) -> usize {
        self.seg + SEG_HEADER
    }

    #[inline]
    fn row_blocks_off(&self) -> usize {
        self.row_entries_off() + 4 * (self.nodes + 1)
    }

    #[inline]
    fn blk_first_off(&self) -> usize {
        self.row_blocks_off() + 4 * (self.nodes + 1)
    }

    #[inline]
    fn blk_start_off(&self) -> usize {
        self.blk_first_off() + 4 * self.blocks
    }

    #[inline]
    fn data_off(&self) -> usize {
        self.blk_start_off() + 4 * self.blocks
    }

    /// The decode view of one local row.
    #[inline]
    pub(crate) fn row(&self, local: usize) -> PackedRow<'_> {
        let bytes = self.buf.as_slice();
        let e0 = u32_at(bytes, self.row_entries_off() + 4 * local) as usize;
        let e1 = u32_at(bytes, self.row_entries_off() + 4 * (local + 1)) as usize;
        let b0 = u32_at(bytes, self.row_blocks_off() + 4 * local) as usize;
        let b1 = u32_at(bytes, self.row_blocks_off() + 4 * (local + 1)) as usize;
        PackedRow {
            blk_first: &bytes[self.blk_first_off() + 4 * b0..self.blk_first_off() + 4 * b1],
            blk_start: &bytes[self.blk_start_off() + 4 * b0..self.blk_start_off() + 4 * b1],
            data: &bytes[self.data_off()..self.data_off() + self.data_len],
            entries: e1 - e0,
        }
    }

    /// Decode one row back into materialized entries (tests, layout
    /// conversion, and the mixed-layout fallback; not the query hot path).
    pub(crate) fn row_entries(&self, local: usize) -> Vec<(u32, Dist, Dist)> {
        let row = self.row(local);
        let mut out = Vec::with_capacity(row.entries);
        if let Some(mut c) = Cursor::start(&row) {
            loop {
                out.push((c.hub, c.dto, c.dfrom));
                if !c.advance(&row) {
                    break;
                }
            }
        }
        out
    }

    /// Full structural validation of the segment: section bounds, CSR
    /// monotonicity, block arithmetic, body-stream termination, and hub
    /// sortedness — everything the panic-free hot path assumes. Run once
    /// at `open_mmap` time so a corrupt or truncated file is a typed error
    /// at open, never a wrong answer (or index panic) at query time.
    ///
    /// Unlike [`Cursor`] (which serves *validated* data with plain
    /// indexing), this sweep decodes with bounds- and overflow-checked
    /// reads so arbitrary bytes cannot panic it.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        let corrupt = |what| ServeError::CorruptSegment { what };
        let bytes = self.buf.as_slice();
        if self.seg + self.seg_len() > bytes.len() {
            return Err(corrupt("segment sections past end of buffer"));
        }
        let re = |i| u32_at(bytes, self.row_entries_off() + 4 * i) as usize;
        let rb = |i| u32_at(bytes, self.row_blocks_off() + 4 * i) as usize;
        if re(self.nodes) != self.entries || re(0) != 0 {
            return Err(corrupt("row_entries CSR does not sum to entry count"));
        }
        if rb(self.nodes) != self.blocks || rb(0) != 0 {
            return Err(corrupt("row_blocks CSR does not sum to block count"));
        }
        let data = &bytes[self.data_off()..self.data_off() + self.data_len];
        for local in 0..self.nodes {
            let (e0, e1) = (re(local), re(local + 1));
            let (b0, b1) = (rb(local), rb(local + 1));
            if e1 < e0 || e1 > self.entries || b1 < b0 || b1 > self.blocks {
                return Err(corrupt("row CSR not monotone"));
            }
            if b1 - b0 != (e1 - e0).div_ceil(BLOCK) {
                return Err(corrupt("row block count inconsistent with entry count"));
            }
            let mut prev_hub: Option<u32> = None;
            for (bi, b) in (b0..b1).enumerate() {
                let blen = ((e1 - e0) - bi * BLOCK).min(BLOCK);
                let first = u32_at(bytes, self.blk_first_off() + 4 * b);
                if prev_hub.is_some_and(|p| p >= first) {
                    return Err(corrupt("row hubs not strictly ascending across blocks"));
                }
                let start = u32_at(bytes, self.blk_start_off() + 4 * b) as usize;
                if start + 3 > data.len() {
                    return Err(corrupt("block width bytes past end of body"));
                }
                let (bh, bd, bf) = (
                    data[start] as usize,
                    data[start + 1] as usize,
                    data[start + 2] as usize,
                );
                if !valid_width(bh) || !valid_width(bd) || !valid_width(bf) {
                    return Err(corrupt("invalid lane bit width"));
                }
                let mut p = start + 3;
                // dto_0 varint (every u64 is a valid distance bit pattern,
                // so only termination matters for the distance lanes).
                checked_varint(data, &mut p).ok_or(corrupt("block stream truncated"))?;
                // Bit-packed lanes: one bound check covers every load.
                let lanes =
                    lane_bytes(blen - 1, bh) + lane_bytes(blen - 1, bd) + lane_bytes(blen, bf);
                if p + lanes > data.len() {
                    return Err(corrupt("block lanes past end of body"));
                }
                let mut hub = u64::from(first);
                for j in 0..blen - 1 {
                    let gap = if bh == 0 { 0 } else { extract(data, p, j, bh) };
                    hub = hub
                        .checked_add(gap)
                        .and_then(|h| h.checked_add(1))
                        .filter(|&h| h <= u64::from(u32::MAX))
                        .ok_or(corrupt("hub gap overflows u32"))?;
                    // In-block ascent is structural (gap + 1 ≥ 1).
                }
                prev_hub = Some(hub as u32);
            }
        }
        Ok(())
    }
}

/// Bounds- and shift-checked LEB128 read for [`PackedShard::validate`]:
/// `None` on a stream that runs out of bytes or a varint longer than a
/// `u64` can hold.
fn checked_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Some(x);
        }
        shift += 7;
    }
}

/// Borrowed decode view of one packed row.
pub(crate) struct PackedRow<'a> {
    /// Skip header: first hub of each of the row's blocks.
    blk_first: &'a [u8],
    /// Skip header: body byte offset of each of the row's blocks.
    blk_start: &'a [u8],
    /// The shard's whole body stream (`blk_start` values index into it).
    data: &'a [u8],
    /// Entry count of the row.
    entries: usize,
}

impl PackedRow<'_> {
    #[inline]
    fn block_count(&self) -> usize {
        self.blk_first.len() / 4
    }

    #[inline]
    fn first_hub(&self, b: usize) -> u32 {
        u32_at(self.blk_first, 4 * b)
    }

    #[inline]
    fn start(&self, b: usize) -> usize {
        u32_at(self.blk_start, 4 * b) as usize
    }

    /// Entries in block `b` (all blocks hold [`BLOCK`] except the last).
    #[inline]
    fn block_len(&self, b: usize) -> usize {
        (self.entries - b * BLOCK).min(BLOCK)
    }
}

/// A streaming decoder positioned on one entry of a packed row.
struct Cursor {
    /// Current block index within the row.
    blk: usize,
    /// Lane bit widths of the current block.
    bh: usize,
    bd: usize,
    bf: usize,
    /// Byte offsets of the current block's H / D / F lanes.
    hbase: usize,
    dbase: usize,
    fbase: usize,
    /// Index of the current entry within its block.
    idx: usize,
    /// Entries still undecoded in the current block.
    rem_in_blk: usize,
    /// Current entry.
    hub: u32,
    dto: Dist,
    dfrom: Dist,
}

impl Cursor {
    /// Position on the row's first entry (`None` for an empty row).
    #[inline]
    fn start(row: &PackedRow<'_>) -> Option<Cursor> {
        (row.entries > 0).then(|| {
            let mut c = Cursor {
                blk: 0,
                bh: 0,
                bd: 0,
                bf: 0,
                hbase: 0,
                dbase: 0,
                fbase: 0,
                idx: 0,
                rem_in_blk: 0,
                hub: 0,
                dto: 0,
                dfrom: 0,
            };
            c.enter_block(row, 0);
            c
        })
    }

    /// Jump to block `b` and decode its first entry.
    #[inline]
    fn enter_block(&mut self, row: &PackedRow<'_>, b: usize) {
        self.blk = b;
        let start = row.start(b);
        let blen = row.block_len(b);
        let data = row.data;
        let (bh, bd, bf) = (
            data[start] as usize,
            data[start + 1] as usize,
            data[start + 2] as usize,
        );
        let mut p = start + 3;
        self.hub = row.first_hub(b);
        self.dto = read_varint(data, &mut p);
        (self.bh, self.bd, self.bf) = (bh, bd, bf);
        self.hbase = p;
        self.dbase = p + lane_bytes(blen - 1, bh);
        self.fbase = self.dbase + lane_bytes(blen - 1, bd);
        self.dfrom = if bf == 0 {
            self.dto
        } else {
            apply_delta(self.dto, extract(data, self.fbase, 0, bf))
        };
        self.idx = 0;
        self.rem_in_blk = blen - 1;
    }

    /// Step to the next entry; `false` once the row is exhausted.
    #[inline]
    fn advance(&mut self, row: &PackedRow<'_>) -> bool {
        if self.rem_in_blk == 0 {
            if self.blk + 1 >= row.block_count() {
                return false;
            }
            self.enter_block(row, self.blk + 1);
            return true;
        }
        let i = self.idx;
        self.idx = i + 1;
        let gap = if self.bh == 0 {
            0
        } else {
            extract(row.data, self.hbase, i, self.bh)
        };
        self.hub = self.hub + gap as u32 + 1;
        if self.bd != 0 {
            self.dto = apply_delta(self.dto, extract(row.data, self.dbase, i, self.bd));
        }
        self.dfrom = if self.bf == 0 {
            self.dto
        } else {
            apply_delta(self.dto, extract(row.data, self.fbase, i + 1, self.bf))
        };
        self.rem_in_blk -= 1;
        true
    }

    /// Position on the first entry with `hub >= key`: skip whole blocks
    /// through the skip headers (binary search — the packed counterpart of
    /// the flat decoder's gallop), then linear-decode inside the landing
    /// block. `false` once the row is exhausted below `key`.
    #[inline]
    fn seek(&mut self, row: &PackedRow<'_>, key: u32) -> bool {
        if self.hub >= key {
            return true;
        }
        // Last block (after the current one) whose first hub is <= key:
        // everything before it is provably < key, so jump straight there.
        if self.blk + 1 < row.block_count() && row.first_hub(self.blk + 1) <= key {
            let (mut lo, mut hi) = (self.blk + 1, row.block_count());
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if row.first_hub(mid) <= key {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            self.enter_block(row, lo);
            if self.hub >= key {
                return true;
            }
        }
        // In-block linear scan over packed bytes.
        loop {
            if !self.advance(row) {
                return false;
            }
            if self.hub >= key {
                return true;
            }
            // A block boundary crossed by `advance` may land below `key`
            // again only within the final candidate block, so the scan
            // stays bounded by one block plus the headers skipped above.
        }
    }
}

/// `dto` of an already-encoded entry (tiny helper to keep [`pack`]'s
/// delta chain readable).
#[inline]
fn prev_dto(e: &(u32, Dist, Dist)) -> Dist {
    e.1
}

/// Merge-join two packed rows: `a`'s forward lane meets `b`'s backward
/// lane — `min over common hubs of dto_a + dfrom_b`, bit-identical to
/// [`distlabel::decode_entries`] on the materialized rows. Early exits
/// mirror the flat decoder: empty rows answer [`INF`] immediately and a
/// running minimum of 0 cannot improve.
/// Rows at or below this many entries take the sequential fast path in
/// [`decode_packed`]: full-row decode into stack lanes + linear join.
/// Typical hub sets on corpus/bench instances sit well under it, and a
/// straight-line varint scan beats the cursor's skip machinery until rows
/// are long enough for whole-block skips to pay for themselves.
const SMALL_ROW: usize = 256;

/// Reused decoded lanes of one short packed row: hubs plus the one
/// distance lane the merge-join direction needs (`FWD` keeps `dto`, the
/// forward lane; `!FWD` keeps `dfrom`, the backward lane). Lives in a
/// thread-local scratch pair — zero-filling ~6 KB of fresh stack arrays
/// per query costs more than the decode itself.
struct SmallRow {
    hubs: [u32; SMALL_ROW],
    dist: [Dist; SMALL_ROW],
}

thread_local! {
    /// Per-thread decode scratch for [`decode_packed`]'s short-row path
    /// (one row per join side).
    static SCRATCH: std::cell::RefCell<Box<(SmallRow, SmallRow)>> =
        std::cell::RefCell::new(Box::new((SmallRow::new(), SmallRow::new())));
}

impl SmallRow {
    fn new() -> SmallRow {
        SmallRow {
            hubs: [0; SMALL_ROW],
            dist: [0; SMALL_ROW],
        }
    }

    /// Overwrite the first `row.entries` lanes slots from the packed
    /// bytes (earlier contents beyond that are stale and never read —
    /// [`join_small`] is bounded by the entry counts).
    #[inline]
    fn decode<const FWD: bool>(&mut self, row: &PackedRow<'_>) {
        let out = self;
        let data = row.data;
        let mut i0 = 0;
        for b in 0..row.block_count() {
            let blen = row.block_len(b);
            let start = row.start(b);
            let (bh, bd, bf) = (
                data[start] as usize,
                data[start + 1] as usize,
                data[start + 2] as usize,
            );
            let mut p = start + 3;
            let dto0 = read_varint(data, &mut p);
            let hbase = p;
            let dbase = hbase + lane_bytes(blen - 1, bh);
            let fbase = dbase + lane_bytes(blen - 1, bd);
            // One lane at a time: every value's bit address is known
            // upfront, so the loops below are pure independent loads plus
            // cheap running sums — no decode-length dependency chain.
            let mut hub = row.first_hub(b);
            out.hubs[i0] = hub;
            if bh == 0 {
                for j in 1..blen {
                    hub += 1;
                    out.hubs[i0 + j] = hub;
                }
            } else {
                for j in 1..blen {
                    hub += extract(data, hbase, j - 1, bh) as u32 + 1;
                    out.hubs[i0 + j] = hub;
                }
            }
            let mut dto = dto0;
            out.dist[i0] = dto;
            if bd == 0 {
                for j in 1..blen {
                    out.dist[i0 + j] = dto;
                }
            } else {
                for j in 1..blen {
                    dto = apply_delta(dto, extract(data, dbase, j - 1, bd));
                    out.dist[i0 + j] = dto;
                }
            }
            // The backward lane rewrites dist in place from the F deltas;
            // a forward row is done already (bf = 0 means dfrom = dto).
            if !FWD && bf != 0 {
                for j in 0..blen {
                    let d = out.dist[i0 + j];
                    out.dist[i0 + j] = apply_delta(d, extract(data, fbase, j, bf));
                }
            }
            i0 += blen;
        }
    }
}

/// Linear merge-join over two stack-decoded rows (`a` forward lane, `b`
/// backward lane).
#[inline]
fn join_small(a: &SmallRow, na: usize, b: &SmallRow, nb: usize) -> Dist {
    let (mut i, mut j) = (0, 0);
    let mut best = INF;
    while i < na && j < nb {
        let (ha, hb) = (a.hubs[i], b.hubs[j]);
        if ha < hb {
            i += 1;
        } else if ha > hb {
            j += 1;
        } else {
            best = best.min(dist_add(a.dist[i], b.dist[j]));
            if best == 0 {
                return 0;
            }
            i += 1;
            j += 1;
        }
    }
    best
}

#[inline]
pub(crate) fn decode_packed(a: &PackedRow<'_>, b: &PackedRow<'_>) -> Dist {
    if a.entries == 0 || b.entries == 0 {
        return INF;
    }
    if a.entries <= SMALL_ROW && b.entries <= SMALL_ROW {
        return SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            let (sa, sb) = &mut **s;
            sa.decode::<true>(a);
            sb.decode::<false>(b);
            join_small(sa, a.entries, sb, b.entries)
        });
    }
    let (Some(mut ca), Some(mut cb)) = (Cursor::start(a), Cursor::start(b)) else {
        return INF;
    };
    let mut best = INF;
    loop {
        match ca.hub.cmp(&cb.hub) {
            std::cmp::Ordering::Less => {
                if !ca.seek(a, cb.hub) {
                    break;
                }
            }
            std::cmp::Ordering::Greater => {
                if !cb.seek(b, ca.hub) {
                    break;
                }
            }
            std::cmp::Ordering::Equal => {
                best = best.min(dist_add(ca.dto, cb.dfrom));
                if best == 0 {
                    return 0;
                }
                if !ca.advance(a) || !cb.advance(b) {
                    break;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack_one(rows: Vec<Vec<(u32, Dist, Dist)>>) -> PackedShard {
        PackedShard::pack(0, 0, &rows).unwrap()
    }

    #[test]
    fn varint_and_zigzag_roundtrip() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, INF, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
        for (a, b) in [
            (0u64, 0u64),
            (5, 9),
            (9, 5),
            (INF, 0),
            (0, INF),
            (u64::MAX, 1),
            (1, u64::MAX),
        ] {
            assert_eq!(apply_delta(b, fold_delta(a, b)), a, "({a}, {b})");
        }
    }

    /// Row shapes straddling every block boundary: 0, 1, BLOCK−1, BLOCK,
    /// BLOCK+1, and several blocks — each must decode back bit-identically.
    #[test]
    fn rows_roundtrip_across_block_boundaries() {
        let lens = [0usize, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 7];
        let rows: Vec<Vec<(u32, Dist, Dist)>> = lens
            .iter()
            .map(|&len| {
                (0..len)
                    .map(|i| {
                        let i = i as u64;
                        (
                            (i * i + 3 * i) as u32, // superlinear gaps
                            i * 977 % 5000,
                            if i % 3 == 0 { i * 977 % 5000 } else { i + 1 },
                        )
                    })
                    .collect()
            })
            .collect();
        let shard = pack_one(rows.clone());
        assert_eq!(shard.nodes(), lens.len());
        assert_eq!(shard.entries(), lens.iter().sum::<usize>());
        for (local, want) in rows.iter().enumerate() {
            assert_eq!(&shard.row_entries(local), want, "row {local}");
        }
        shard.validate().unwrap();
    }

    #[test]
    fn extreme_distance_values_survive_packing() {
        // INF next to 0 produces the largest possible wrapping deltas.
        let rows = vec![vec![
            (0u32, INF, 0),
            (1, 0, INF),
            (2, u64::MAX, 0),
            (100, 0, u64::MAX),
        ]];
        let shard = pack_one(rows.clone());
        assert_eq!(shard.row_entries(0), rows[0]);
    }

    #[test]
    fn decode_matches_reference_merge_join() {
        // Seeded random rows of skewed lengths, decoded against
        // distlabel's reference decoder on the materialized entries.
        let mut state = 0x1234_5678_u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            (state >> 33) % m
        };
        for (la, lb) in [(0usize, 5usize), (5, 0), (1, 200), (200, 1), (90, 90)] {
            let mk = |len: usize, next: &mut dyn FnMut(u64) -> u64| {
                let mut hub = 0u32;
                (0..len)
                    .map(|_| {
                        hub += next(9) as u32 + 1;
                        (hub, next(1000), next(1000))
                    })
                    .collect::<Vec<_>>()
            };
            let (ra, rb) = (mk(la, &mut next), mk(lb, &mut next));
            let shard = pack_one(vec![ra.clone(), rb.clone()]);
            let want = distlabel::decode_entries(&ra, &rb);
            assert_eq!(decode_packed(&shard.row(0), &shard.row(1)), want);
            let want_rev = distlabel::decode_entries(&rb, &ra);
            assert_eq!(decode_packed(&shard.row(1), &shard.row(0)), want_rev);
        }
    }

    #[test]
    fn seek_skips_blocks_without_missing_hubs() {
        // A long row with hub gaps vs. singletons targeting block
        // interiors, boundaries, and gaps.
        let long: Vec<(u32, Dist, Dist)> = (0..5 * BLOCK as u32).map(|i| (3 * i, 7, 9)).collect();
        for probe in [
            0u32,
            1,
            3 * (BLOCK as u32) - 3,
            3 * (BLOCK as u32),
            3 * (BLOCK as u32) + 3,
            7 * (BLOCK as u32) + 2, // in a gap: no match
            3 * (5 * BLOCK as u32 - 1),
            3 * (5 * BLOCK as u32),
        ] {
            let single = vec![(probe, 100, 200)];
            let shard = pack_one(vec![long.clone(), single.clone()]);
            let want = distlabel::decode_entries(&long, &single);
            assert_eq!(
                decode_packed(&shard.row(0), &shard.row(1)),
                want,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn unsorted_rows_are_typed_errors() {
        let rows = vec![Vec::new(), vec![(5u32, 1, 1), (5, 2, 2)]];
        assert_eq!(
            PackedShard::pack(3, 10, &rows).map(|_| ()).unwrap_err(),
            ServeError::UnsortedNodeEntries { node: 11 }
        );
        let rows = vec![vec![(9u32, 1, 1), (2, 2, 2)]];
        assert!(matches!(
            PackedShard::pack(0, 0, &rows),
            Err(ServeError::UnsortedNodeEntries { node: 0 })
        ));
    }

    #[test]
    fn validation_rejects_corrupt_segments() {
        let shard = pack_one(vec![vec![(1, 2, 3), (5, 8, 8)]]);
        let mut bytes = shard.seg_bytes().to_vec();
        // Truncate: sections run past the buffer.
        let truncated = Arc::new(Storage::Heap(bytes[..bytes.len() - 1].to_vec()));
        match PackedShard::from_segment(0, truncated, 0) {
            Err(ServeError::CorruptSegment { .. }) => {}
            Ok(s) => assert!(matches!(
                s.validate(),
                Err(ServeError::CorruptSegment { .. })
            )),
            Err(e) => panic!("unexpected error {e:?}"),
        }
        // Corrupt the entry count: CSR no longer sums.
        bytes[4] = 0xEE;
        let corrupt = Arc::new(Storage::Heap(bytes));
        match PackedShard::from_segment(0, corrupt, 0) {
            Err(ServeError::CorruptSegment { .. }) => {}
            Ok(s) => assert!(matches!(
                s.validate(),
                Err(ServeError::CorruptSegment { .. })
            )),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
