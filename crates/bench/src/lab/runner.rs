//! Trial execution: run a planned grid through the drivers, in order,
//! with per-trial progress on stderr.

use crate::drivers;
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use std::time::Instant;

/// Run every trial, returning one row per trial in plan order.
pub fn run_trials(trials: &[Trial]) -> Vec<TrialRow> {
    let total = trials.len();
    let t_all = Instant::now();
    let mut rows = Vec::with_capacity(total);
    for (i, trial) in trials.iter().enumerate() {
        eprintln!("[{}/{total}] {}", i + 1, trial.id());
        let t = Instant::now();
        let row = drivers::run_trial(trial);
        eprintln!(
            "[{}/{total}] {} done ({:.1?})",
            i + 1,
            trial.id(),
            t.elapsed()
        );
        rows.push(row);
    }
    eprintln!("ran {total} trials in {:.1?}", t_all.elapsed());
    rows
}
