//! The wire protocol: varint-framed binary request/response messages.
//!
//! ## Framing
//!
//! Every message — either direction — is one *frame*:
//!
//! ```text
//! frame   := varint(payload_len) payload
//! varint  := LEB128, low 7 bits per byte, high bit = continuation
//! ```
//!
//! `payload_len` is bounded by the server's configured maximum; a frame
//! announcing more is a connection-level protocol error (there is no way
//! to resynchronize a stream after refusing to read a body).
//!
//! ## Requests
//!
//! ```text
//! payload := varint(req_id) opcode args
//! QUERY (0x01) := varint(s) varint(t)            one s→t distance
//! BATCH (0x02) := varint(k) k × (varint(s) varint(t))
//! EPOCH (0x03) :=                                the connection's pinned epoch
//! REPIN (0x04) :=                                re-pin to the current epoch
//! ```
//!
//! Vertex ids are `u32`; a varint that decodes above `u32::MAX` is
//! malformed. Trailing bytes after the last argument are malformed —
//! a frame is exactly one request.
//!
//! ## Responses
//!
//! ```text
//! payload := varint(req_id) status body
//! DIST        (0x00) := varint(d)                `INF` is sent as its value
//! BATCH_OK    (0x01) := varint(k) k × varint(d)
//! EPOCH_OK    (0x02) := varint(epoch)
//! UNKNOWN_NODE(0x10) := varint(node) varint(n)   typed ServeError over the wire
//! MALFORMED   (0x11) := varint(kind)             see [`ProtoError::kind_code`]
//! OVERLOADED  (0x12) := varint(queue_depth)      admission control pushed back
//! TOO_LARGE   (0x13) := varint(len) varint(max)  batch exceeded the admission cap
//! SHUTDOWN    (0x14) :=                          server is draining
//! INTERNAL    (0x15) :=                          engine failure not expressible above
//! ```
//!
//! Responses carry the request's `req_id`, so a client may pipeline.
//! Requests on one connection are answered in admission order; a request
//! refused by admission control (OVERLOADED / TOO_LARGE / MALFORMED) is
//! answered immediately and may therefore overtake queued work — match on
//! `req_id`, not arrival order, when pipelining.

use std::io::{self, Read};
use twgraph::Dist;

/// Default cap on one frame's payload, in bytes.
pub const MAX_FRAME_DEFAULT: usize = 1 << 20;

/// Longest legal varint encoding of a `u64`, in bytes.
pub const MAX_VARINT_BYTES: usize = 10;

const OP_QUERY: u8 = 0x01;
const OP_BATCH: u8 = 0x02;
const OP_EPOCH: u8 = 0x03;
const OP_REPIN: u8 = 0x04;

const ST_DIST: u8 = 0x00;
const ST_BATCH: u8 = 0x01;
const ST_EPOCH: u8 = 0x02;
const ST_UNKNOWN_NODE: u8 = 0x10;
const ST_MALFORMED: u8 = 0x11;
const ST_OVERLOADED: u8 = 0x12;
const ST_TOO_LARGE: u8 = 0x13;
const ST_SHUTDOWN: u8 = 0x14;
const ST_INTERNAL: u8 = 0x15;

/// One decoded request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Exact `d(s → t)` at the connection's pinned epoch.
    Query {
        /// Source vertex.
        s: u32,
        /// Target vertex.
        t: u32,
    },
    /// A batch of pairs, answered in order at the pinned epoch.
    Batch(Vec<(u32, u32)>),
    /// The epoch this connection is pinned to.
    Epoch,
    /// Re-pin the connection to the engine's current epoch.
    Repin,
}

/// A server-reported failure, as carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A query named a vertex outside the store's `0..n`.
    UnknownNode {
        /// The offending id.
        node: u32,
        /// The store's vertex-space size.
        n: u64,
    },
    /// The request payload could not be interpreted; the kind code is a
    /// [`ProtoError::kind_code`] value.
    Malformed {
        /// Which way the payload was malformed.
        kind: u64,
    },
    /// The connection's bounded request queue was full — retry later.
    Overloaded {
        /// The queue depth that was full.
        queue_depth: u64,
    },
    /// A batch exceeded the server's admission cap.
    BatchTooLarge {
        /// Pairs in the refused batch.
        len: u64,
        /// The server's cap.
        max: u64,
    },
    /// The server is draining; no new requests are admitted.
    Shutdown,
    /// An engine failure with no dedicated wire representation.
    Internal,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::UnknownNode { node, n } => {
                write!(f, "unknown node {node} (store holds 0..{n})")
            }
            WireError::Malformed { kind } => write!(f, "malformed request (kind {kind})"),
            WireError::Overloaded { queue_depth } => {
                write!(f, "connection queue full (depth {queue_depth})")
            }
            WireError::BatchTooLarge { len, max } => {
                write!(f, "batch of {len} pairs exceeds the cap of {max}")
            }
            WireError::Shutdown => write!(f, "server is draining"),
            WireError::Internal => write!(f, "internal serving error"),
        }
    }
}

/// One decoded response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A single distance ([`twgraph::INF`] travels as its numeric value).
    Dist(Dist),
    /// Batch answers, one per pair in request order.
    Batch(Vec<Dist>),
    /// An epoch number (answers both `Epoch` and `Repin`).
    Epoch(u64),
    /// A typed failure.
    Err(WireError),
}

/// Why a payload (or frame header) failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended in the middle of a field.
    Truncated,
    /// A varint ran past 10 bytes / 64 bits.
    VarintOverflow,
    /// The opcode byte names no known request.
    UnknownOpcode(u8),
    /// Bytes were left over after the last argument.
    TrailingBytes(usize),
    /// A vertex id decoded above `u32::MAX`.
    IdOverflow(u64),
    /// The frame header announced a payload beyond the configured cap.
    FrameTooLarge {
        /// Announced payload length.
        len: u64,
        /// The receiver's cap.
        max: usize,
    },
    /// The status byte names no known response.
    UnknownStatus(u8),
}

impl ProtoError {
    /// Stable numeric code carried inside MALFORMED responses.
    pub fn kind_code(&self) -> u64 {
        match *self {
            ProtoError::Truncated => 1,
            ProtoError::VarintOverflow => 2,
            ProtoError::UnknownOpcode(_) => 3,
            ProtoError::TrailingBytes(_) => 4,
            ProtoError::IdOverflow(_) => 5,
            ProtoError::FrameTooLarge { .. } => 6,
            ProtoError::UnknownStatus(_) => 7,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProtoError::Truncated => write!(f, "payload truncated mid-field"),
            ProtoError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::TrailingBytes(k) => write!(f, "{k} trailing bytes after request"),
            ProtoError::IdOverflow(v) => write!(f, "vertex id {v} exceeds u32"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::UnknownStatus(st) => write!(f, "unknown status {st:#04x}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Append the LEB128 encoding of `x`.
pub fn put_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode one varint starting at `*pos`, advancing it.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, ProtoError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(ProtoError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(ProtoError::VarintOverflow);
        }
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err(ProtoError::VarintOverflow);
        }
    }
}

fn get_id(buf: &[u8], pos: &mut usize) -> Result<u32, ProtoError> {
    let v = get_varint(buf, pos)?;
    u32::try_from(v).map_err(|_| ProtoError::IdOverflow(v))
}

/// Encode `req` as a complete frame (length prefix included) onto `out`.
pub fn encode_request(req_id: u64, req: &Request, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(16);
    put_varint(&mut payload, req_id);
    match req {
        Request::Query { s, t } => {
            payload.push(OP_QUERY);
            put_varint(&mut payload, u64::from(*s));
            put_varint(&mut payload, u64::from(*t));
        }
        Request::Batch(pairs) => {
            payload.push(OP_BATCH);
            put_varint(&mut payload, pairs.len() as u64);
            for &(s, t) in pairs {
                put_varint(&mut payload, u64::from(s));
                put_varint(&mut payload, u64::from(t));
            }
        }
        Request::Epoch => payload.push(OP_EPOCH),
        Request::Repin => payload.push(OP_REPIN),
    }
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Decode one request payload. On failure the error carries the `req_id`
/// when it was readable (so the server can address its MALFORMED
/// response) and 0 otherwise.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), (u64, ProtoError)> {
    let mut pos = 0usize;
    let req_id = get_varint(payload, &mut pos).map_err(|e| (0, e))?;
    let fail = |e: ProtoError| (req_id, e);
    let &op = payload.get(pos).ok_or(fail(ProtoError::Truncated))?;
    pos += 1;
    let req = match op {
        OP_QUERY => Request::Query {
            s: get_id(payload, &mut pos).map_err(fail)?,
            t: get_id(payload, &mut pos).map_err(fail)?,
        },
        OP_BATCH => {
            let k = get_varint(payload, &mut pos).map_err(fail)?;
            // Each pair is ≥ 2 bytes, so `k` beyond the remaining payload
            // is provably truncated — reject before reserving anything.
            if k > ((payload.len() - pos) / 2) as u64 {
                return Err(fail(ProtoError::Truncated));
            }
            let mut pairs = Vec::with_capacity(k as usize);
            for _ in 0..k {
                let s = get_id(payload, &mut pos).map_err(fail)?;
                let t = get_id(payload, &mut pos).map_err(fail)?;
                pairs.push((s, t));
            }
            Request::Batch(pairs)
        }
        OP_EPOCH => Request::Epoch,
        OP_REPIN => Request::Repin,
        other => return Err(fail(ProtoError::UnknownOpcode(other))),
    };
    if pos != payload.len() {
        return Err(fail(ProtoError::TrailingBytes(payload.len() - pos)));
    }
    Ok((req_id, req))
}

/// Encode `resp` as a complete frame (length prefix included) onto `out`.
pub fn encode_response(req_id: u64, resp: &Response, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(16);
    put_varint(&mut payload, req_id);
    match resp {
        Response::Dist(d) => {
            payload.push(ST_DIST);
            put_varint(&mut payload, *d);
        }
        Response::Batch(ds) => {
            payload.push(ST_BATCH);
            put_varint(&mut payload, ds.len() as u64);
            for &d in ds {
                put_varint(&mut payload, d);
            }
        }
        Response::Epoch(e) => {
            payload.push(ST_EPOCH);
            put_varint(&mut payload, *e);
        }
        Response::Err(err) => match *err {
            WireError::UnknownNode { node, n } => {
                payload.push(ST_UNKNOWN_NODE);
                put_varint(&mut payload, u64::from(node));
                put_varint(&mut payload, n);
            }
            WireError::Malformed { kind } => {
                payload.push(ST_MALFORMED);
                put_varint(&mut payload, kind);
            }
            WireError::Overloaded { queue_depth } => {
                payload.push(ST_OVERLOADED);
                put_varint(&mut payload, queue_depth);
            }
            WireError::BatchTooLarge { len, max } => {
                payload.push(ST_TOO_LARGE);
                put_varint(&mut payload, len);
                put_varint(&mut payload, max);
            }
            WireError::Shutdown => payload.push(ST_SHUTDOWN),
            WireError::Internal => payload.push(ST_INTERNAL),
        },
    }
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Decode one response payload into `(req_id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtoError> {
    let mut pos = 0usize;
    let req_id = get_varint(payload, &mut pos)?;
    let &st = payload.get(pos).ok_or(ProtoError::Truncated)?;
    pos += 1;
    let resp = match st {
        ST_DIST => Response::Dist(get_varint(payload, &mut pos)?),
        ST_BATCH => {
            let k = get_varint(payload, &mut pos)?;
            if k > (payload.len() - pos) as u64 {
                return Err(ProtoError::Truncated);
            }
            let mut ds = Vec::with_capacity(k as usize);
            for _ in 0..k {
                ds.push(get_varint(payload, &mut pos)?);
            }
            Response::Batch(ds)
        }
        ST_EPOCH => Response::Epoch(get_varint(payload, &mut pos)?),
        ST_UNKNOWN_NODE => Response::Err(WireError::UnknownNode {
            node: get_id(payload, &mut pos)?,
            n: get_varint(payload, &mut pos)?,
        }),
        ST_MALFORMED => Response::Err(WireError::Malformed {
            kind: get_varint(payload, &mut pos)?,
        }),
        ST_OVERLOADED => Response::Err(WireError::Overloaded {
            queue_depth: get_varint(payload, &mut pos)?,
        }),
        ST_TOO_LARGE => Response::Err(WireError::BatchTooLarge {
            len: get_varint(payload, &mut pos)?,
            max: get_varint(payload, &mut pos)?,
        }),
        ST_SHUTDOWN => Response::Err(WireError::Shutdown),
        ST_INTERNAL => Response::Err(WireError::Internal),
        other => return Err(ProtoError::UnknownStatus(other)),
    };
    if pos != payload.len() {
        return Err(ProtoError::TrailingBytes(payload.len() - pos));
    }
    Ok((req_id, resp))
}

/// What one [`read_frame`] call observed.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete payload now sits in the caller's buffer.
    Frame,
    /// The read timed out at a frame boundary (no byte consumed) — the
    /// caller may check its shutdown flag and come back.
    Idle,
    /// The peer closed cleanly at a frame boundary.
    Eof,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (including abort mid-frame on shutdown).
    Io(io::Error),
    /// Framing violation — the stream cannot be resynchronized.
    Proto(ProtoError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameError::Proto(e) => write!(f, "framing violation: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read exactly one frame's payload into `buf` (cleared first).
///
/// The reader may have a read timeout set: a timeout *before the first
/// header byte* surfaces as [`FrameEvent::Idle`]; a timeout mid-frame
/// retries until `abort()` turns true, at which point the partial frame is
/// abandoned as an `Io` error — this is what lets a draining server
/// unstick readers without dropping frames that were fully received.
pub fn read_frame(
    r: &mut impl Read,
    buf: &mut Vec<u8>,
    max_payload: usize,
    abort: impl Fn() -> bool,
) -> Result<FrameEvent, FrameError> {
    buf.clear();
    // Header: the length varint, one byte at a time.
    let mut len = 0u64;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if first {
                    Ok(FrameEvent::Eof)
                } else {
                    Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()))
                };
            }
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if first {
                    return Ok(FrameEvent::Idle);
                }
                if abort() {
                    return Err(FrameError::Io(io::ErrorKind::ConnectionAborted.into()));
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
        first = false;
        if shift >= 63 && byte[0] > 1 {
            return Err(FrameError::Proto(ProtoError::VarintOverflow));
        }
        len |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(FrameError::Proto(ProtoError::VarintOverflow));
        }
    }
    if len > max_payload as u64 {
        return Err(FrameError::Proto(ProtoError::FrameTooLarge {
            len,
            max: max_payload,
        }));
    }
    // Body: retry timeouts until complete or aborted.
    buf.resize(len as usize, 0);
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into())),
            Ok(k) => filled += k,
            Err(e) if is_timeout(&e) => {
                if abort() {
                    return Err(FrameError::Io(io::ErrorKind::ConnectionAborted.into()));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(FrameEvent::Frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::INF;

    fn roundtrip_request(req: Request) {
        let mut out = Vec::new();
        encode_request(77, &req, &mut out);
        let mut pos = 0usize;
        let len = get_varint(&out, &mut pos).unwrap() as usize;
        assert_eq!(pos + len, out.len(), "frame length must cover the payload");
        let (id, got) = decode_request(&out[pos..]).unwrap();
        assert_eq!(id, 77);
        assert_eq!(got, req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Query { s: 0, t: u32::MAX });
        roundtrip_request(Request::Batch(vec![]));
        roundtrip_request(Request::Batch(vec![(1, 2), (300, 40_000), (0, 0)]));
        roundtrip_request(Request::Epoch);
        roundtrip_request(Request::Repin);
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Dist(0),
            Response::Dist(INF),
            Response::Batch(vec![1, INF, 0, 1 << 40]),
            Response::Epoch(9),
            Response::Err(WireError::UnknownNode { node: 7, n: 4 }),
            Response::Err(WireError::Malformed { kind: 3 }),
            Response::Err(WireError::Overloaded { queue_depth: 64 }),
            Response::Err(WireError::BatchTooLarge {
                len: 9000,
                max: 8192,
            }),
            Response::Err(WireError::Shutdown),
            Response::Err(WireError::Internal),
        ] {
            let mut out = Vec::new();
            encode_response(5, &resp, &mut out);
            let mut pos = 0usize;
            let len = get_varint(&out, &mut pos).unwrap() as usize;
            assert_eq!(pos + len, out.len());
            assert_eq!(decode_response(&out[pos..]).unwrap(), (5, resp));
        }
    }

    #[test]
    fn varints_roundtrip_at_boundaries() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX, INF] {
            let mut buf = Vec::new();
            put_varint(&mut buf, x);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn malformed_payloads_are_typed_not_panics() {
        // Empty payload: not even a req_id.
        assert_eq!(decode_request(&[]), Err((0, ProtoError::Truncated)));
        // req_id but no opcode.
        assert_eq!(decode_request(&[9]), Err((9, ProtoError::Truncated)));
        // Unknown opcode.
        assert_eq!(
            decode_request(&[9, 0x7f]),
            Err((9, ProtoError::UnknownOpcode(0x7f)))
        );
        // Query truncated mid-argument.
        assert_eq!(
            decode_request(&[9, OP_QUERY, 3]),
            Err((9, ProtoError::Truncated))
        );
        // Trailing garbage after a complete request.
        assert_eq!(
            decode_request(&[9, OP_EPOCH, 1, 2]),
            Err((9, ProtoError::TrailingBytes(2)))
        );
        // Vertex id above u32.
        let mut p = vec![9, OP_QUERY];
        put_varint(&mut p, u64::from(u32::MAX) + 1);
        put_varint(&mut p, 0);
        assert_eq!(
            decode_request(&p),
            Err((9, ProtoError::IdOverflow(u64::from(u32::MAX) + 1)))
        );
        // Batch whose count cannot fit in the remaining bytes.
        let mut p = vec![9, OP_BATCH];
        put_varint(&mut p, 1 << 40);
        assert_eq!(decode_request(&p), Err((9, ProtoError::Truncated)));
        // A varint running past 64 bits.
        let p = [0x80u8; 11];
        assert_eq!(decode_request(&p), Err((0, ProtoError::VarintOverflow)));
        // Unknown status on the response side.
        assert_eq!(
            decode_response(&[5, 0x66]),
            Err(ProtoError::UnknownStatus(0x66))
        );
    }

    #[test]
    fn frame_reader_handles_split_eof_and_oversize() {
        use std::io::Cursor;
        // Two frames back to back.
        let mut wire = Vec::new();
        encode_request(1, &Request::Epoch, &mut wire);
        encode_request(2, &Request::Query { s: 3, t: 4 }, &mut wire);
        let mut cur = Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cur, &mut buf, 64, || false).unwrap(),
            FrameEvent::Frame
        ));
        assert_eq!(decode_request(&buf).unwrap().0, 1);
        assert!(matches!(
            read_frame(&mut cur, &mut buf, 64, || false).unwrap(),
            FrameEvent::Frame
        ));
        assert_eq!(
            decode_request(&buf).unwrap(),
            (2, Request::Query { s: 3, t: 4 })
        );
        assert!(matches!(
            read_frame(&mut cur, &mut buf, 64, || false).unwrap(),
            FrameEvent::Eof
        ));

        // EOF mid-frame is an error, not a silent truncation.
        let mut wire = Vec::new();
        encode_request(1, &Request::Query { s: 3, t: 4 }, &mut wire);
        wire.truncate(wire.len() - 1);
        let mut cur = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cur, &mut buf, 64, || false),
            Err(FrameError::Io(_))
        ));

        // A frame announcing more than the cap is refused before reading.
        let mut wire = Vec::new();
        put_varint(&mut wire, 1 << 30);
        let mut cur = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cur, &mut buf, 1 << 20, || false),
            Err(FrameError::Proto(ProtoError::FrameTooLarge { .. }))
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary byte soup never panics the request decoder — it
            /// either parses or returns a typed error.
            #[test]
            fn decoder_total_on_random_bytes(len in 0usize..64, seed in 0u64..1_000_000) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
                let _ = decode_request(&bytes);
                let _ = decode_response(&bytes);
                prop_assert!(true);
            }

            /// Seeded random requests roundtrip bit-exactly.
            #[test]
            fn random_requests_roundtrip(seed in 0u64..1_000_000, k in 0usize..40) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let pairs: Vec<(u32, u32)> =
                    (0..k).map(|_| (rng.gen_range(0..u32::MAX), rng.gen_range(0..u32::MAX))).collect();
                let req = Request::Batch(pairs);
                let id = rng.gen_range(0..u64::MAX);
                let mut out = Vec::new();
                encode_request(id, &req, &mut out);
                let mut pos = 0usize;
                let len = get_varint(&out, &mut pos).unwrap() as usize;
                prop_assert_eq!(pos + len, out.len());
                let decoded = decode_request(&out[pos..]);
                prop_assert_eq!(decoded, Ok((id, req)));
            }
        }
    }
}
