//! Seeded query workloads: the replayable traffic the scenario harness
//! and the `serve` bench fire at a [`QueryEngine`](crate::QueryEngine).
//!
//! Real label-serving traffic is skewed — a small set of pairs (popular
//! routes) dominates — which is exactly what a hot-pair cache exploits.
//! The generator models that as a two-level mixture: with probability
//! `hot_fraction` a query is drawn uniformly from a small seeded hot set,
//! otherwise both endpoints are drawn uniformly from the vertex space.
//! Everything is a pure function of `(n, spec, seed)`, so a workload can
//! be replayed bit-for-bit across runs, threads, and machines.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape of a seeded workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Total queries to generate.
    pub queries: usize,
    /// Size of the hot pair set.
    pub hot_pairs: usize,
    /// Probability a query comes from the hot set (clamped to `[0, 1]`).
    pub hot_fraction: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            queries: 10_000,
            hot_pairs: 64,
            hot_fraction: 0.75,
        }
    }
}

/// Generate the `(s, t)` query stream for a store over `0..n`.
/// Deterministic in `(n, spec, seed)`; empty when `n == 0` or
/// `spec.queries == 0`.
pub fn seeded_queries(n: usize, spec: &WorkloadSpec, seed: u64) -> Vec<(u32, u32)> {
    if n == 0 || spec.queries == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E3A_11AB_5EED_0001);
    let hot = hot_set(n, spec.hot_pairs, &mut rng);
    let hot_fraction = spec.hot_fraction.clamp(0.0, 1.0);
    (0..spec.queries)
        .map(|_| {
            if rng.gen_bool(hot_fraction) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))
            }
        })
        .collect()
}

/// Draw a hot set of *distinct* pairs, capped at the `n²` pair space.
/// Rejection-samples while the target is sparse relative to the space;
/// otherwise enumerates every pair and takes a seeded shuffle prefix —
/// either way the draw terminates on any `n`, including the tiny graphs
/// where `hot_pairs` exceeds the number of pairs that exist.
fn hot_set(n: usize, hot_pairs: usize, rng: &mut SmallRng) -> Vec<(u32, u32)> {
    let space = n.saturating_mul(n);
    let target = hot_pairs.max(1).min(space);
    if target.saturating_mul(2) <= space {
        let mut seen = HashSet::with_capacity(target);
        let mut hot = Vec::with_capacity(target);
        while hot.len() < target {
            let p = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
            if seen.insert(p) {
                hot.push(p);
            }
        }
        hot
    } else {
        let mut all: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|s| (0..n as u32).map(move |t| (s, t)))
            .collect();
        all.shuffle(rng);
        all.truncate(target);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let spec = WorkloadSpec {
            queries: 500,
            hot_pairs: 8,
            hot_fraction: 0.5,
        };
        let a = seeded_queries(40, &spec, 7);
        let b = seeded_queries(40, &spec, 7);
        assert_eq!(a, b, "same seed must replay identically");
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|&(s, t)| s < 40 && t < 40));
        let c = seeded_queries(40, &spec, 8);
        assert_ne!(a, c, "distinct seeds must differ");
    }

    #[test]
    fn hot_fraction_concentrates_mass() {
        let spec = WorkloadSpec {
            queries: 4_000,
            hot_pairs: 4,
            hot_fraction: 0.9,
        };
        let qs = seeded_queries(1_000, &spec, 3);
        let mut sorted = qs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // ~0.1 × 4000 uniform pairs over 10^6 possibilities are almost all
        // distinct, plus ≤ 4 hot pairs: far fewer distinct than queries.
        assert!(sorted.len() < 600, "hot set failed to concentrate");
        // Extremes degenerate gracefully.
        assert!(seeded_queries(0, &spec, 1).is_empty());
        let all_hot = seeded_queries(
            50,
            &WorkloadSpec {
                queries: 100,
                hot_pairs: 1,
                hot_fraction: 1.0,
            },
            2,
        );
        let mut u = all_hot.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 1, "single hot pair, fraction 1.0");
    }

    #[test]
    fn hot_set_is_distinct_and_capped_at_pair_space() {
        // hot_pairs far beyond the n² pair space must terminate and cap.
        for n in [1usize, 2, 3] {
            let spec = WorkloadSpec {
                queries: 200,
                hot_pairs: 10_000,
                hot_fraction: 1.0,
            };
            let qs = seeded_queries(n, &spec, 11);
            assert_eq!(qs.len(), 200);
            let mut u = qs;
            u.sort_unstable();
            u.dedup();
            assert!(
                u.len() <= n * n,
                "n = {n}: {} distinct hot pairs exceeds the n² = {} space",
                u.len(),
                n * n
            );
        }
        // The hot set itself holds distinct pairs even in sparse regimes.
        let mut rng = SmallRng::seed_from_u64(9);
        let hot = hot_set(100, 64, &mut rng);
        assert_eq!(hot.len(), 64);
        let mut u = hot;
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 64, "hot set drew a repeated pair");
    }
}
