//! Criterion: product construction and constrained SSSP (Theorem 3's
//! kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stateful_walks::{build_product, ConstrainedSssp, CountWalk};
use twgraph::MultiDigraph;

fn instance(n: usize, seed: u64) -> MultiDigraph {
    let g = twgraph::gen::banded_path(n, 3);
    let mut rng = SmallRng::seed_from_u64(seed);
    MultiDigraph::from_undirected_labeled(
        n,
        g.edges()
            .map(|(u, v)| (u, v, rng.gen_range(1..9), rng.gen_range(0..2))),
    )
}

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("product_build");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let inst = instance(n, 1);
        let constraint = CountWalk { c: 2 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| build_product(inst, &constraint).graph.n_arcs())
        });
    }
    group.finish();
}

fn bench_constrained_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("constrained_sssp");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let inst = instance(n, 2);
        let constraint = CountWalk { c: 1 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let s = ConstrainedSssp::run(inst, &constraint, 0);
                s.dist(n as u32 - 1, constraint.count_state(1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_product, bench_constrained_sssp);
criterion_main!(benches);
