//! Property net over the label-serving path.
//!
//! Four families of invariants, each on seeded random low-treewidth
//! instances (decompose → label → compact → serve):
//!
//! 1. **Compaction round-trip** — the store's SoA galloping decoder must
//!    agree with [`distlabel::decode`] on the uncompacted labels for
//!    arbitrary pairs (including self-pairs and disconnected components).
//! 2. **Batch order-invariance** — permuting a batch permutes the answers
//!    and nothing else, regardless of what the cache has seen before.
//! 3. **Cache on/off identity** — the hot-pair cache is an optimization,
//!    never a semantic: answers are bit-identical with caching disabled.
//! 4. **Relabeling equivariance** — serving a π-relabeled instance
//!    commutes with π (the store layout depends on vertex ids; the served
//!    distances must not).

use distlabel::Label;
use labelserve::{QueryEngine, ServeConfig, StoreBuilder, StoreLayout};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use twgraph::{MultiDigraph, UGraph};

/// Decompose one connected graph and build its labels (centralized —
/// the distributed path is covered by the scenario matrix).
fn build_labels(g: &UGraph, inst: &MultiDigraph, t0: u64, seed: u64) -> Vec<Label> {
    let cfg = treedec::SepConfig::practical(g.n());
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = treedec::decompose_centralized(g, t0, &cfg, &mut rng).expect("decomposition failed");
    distlabel::build_labels_centralized(inst, &out.td, &out.info)
}

/// Build a store + engine over a possibly-disconnected instance by
/// splitting components, labeling each, and compacting — the same recipe
/// the scenario harness uses. Returns the per-component labels in global
/// hub space alongside, for round-trip comparison.
fn build_engine(
    g: &UGraph,
    inst: &MultiDigraph,
    t0: u64,
    seed: u64,
    cfg: ServeConfig,
) -> (QueryEngine, Vec<Label>) {
    let (comp, k) = twgraph::alg::components(g);
    let mut builder = StoreBuilder::new(g.n());
    // Global-hub reference labels: entries mapped through old_of.
    let mut global_labels: Vec<Label> = (0..g.n() as u32).map(Label::new).collect();
    for c in 0..k {
        let keep: Vec<bool> = comp.iter().map(|&x| x as usize == c).collect();
        let (sub, old_of) = g.induced(&keep);
        let (sub_inst, _) = inst.induced(&keep);
        if sub.n() == 1 {
            builder.add_singleton(old_of[0]).unwrap();
            global_labels[old_of[0] as usize].merge(old_of[0], 0, 0);
            continue;
        }
        let labels = build_labels(&sub, &sub_inst, t0, seed ^ (c as u64) << 8);
        builder.add_component(&labels, &old_of).unwrap();
        for (i, l) in labels.iter().enumerate() {
            let gl = &mut global_labels[old_of[i] as usize];
            for &(hub, to, from) in &l.entries {
                gl.merge(old_of[hub as usize], to, from);
            }
        }
    }
    (
        QueryEngine::new(
            builder.build_layout(cfg.shard_size, cfg.layout).unwrap(),
            cfg,
        ),
        global_labels,
    )
}

/// Both physical layouts, as a proptest dimension (the offline stand-in
/// samples ranges, so the layout is an index): every property below must
/// hold over the packed store exactly as over the flat one.
fn layout_of(i: usize) -> StoreLayout {
    if i == 0 {
        StoreLayout::Flat
    } else {
        StoreLayout::Packed
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn store_roundtrips_distlabel_decode(
        n in 20usize..90,
        k in 1usize..4,
        seed in 0u64..500,
        shard_size in 1usize..40,
        layout_idx in 0usize..2,
    ) {
        let layout = layout_of(layout_idx);
        let g = twgraph::gen::partial_ktree(n, k, 0.6, seed);
        let inst = twgraph::gen::with_random_weights(&g, 17, seed);
        let cfg = ServeConfig { shard_size, cache_capacity: 16, layout };
        let (engine, labels) = build_engine(&g, &inst, k as u64 + 1, seed, cfg);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
        for _ in 0..256 {
            let (s, t) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
            let want = distlabel::decode(&labels[s as usize], &labels[t as usize]);
            prop_assert_eq!(engine.distance(s, t).unwrap(), want);
        }
        for v in 0..n as u32 {
            prop_assert_eq!(engine.distance(v, v).unwrap(), 0);
        }
    }

    #[test]
    fn store_roundtrip_spans_components(
        n in 24usize..70,
        seed in 0u64..300,
        layout_idx in 0usize..2,
    ) {
        let layout = layout_of(layout_idx);
        let g = twgraph::gen::multi_component(n, seed);
        let inst = twgraph::gen::with_random_weights(&g, 9, seed);
        let cfg = ServeConfig { shard_size: (n / 3).max(1), cache_capacity: 8, layout };
        let (engine, labels) = build_engine(&g, &inst, 3, seed, cfg);
        prop_assert!(engine.store().components() >= 2);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        for _ in 0..256 {
            let (s, t) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
            let want = distlabel::decode(&labels[s as usize], &labels[t as usize]);
            prop_assert_eq!(engine.distance(s, t).unwrap(), want);
            if engine.store().comp_of(s).unwrap() != engine.store().comp_of(t).unwrap() {
                prop_assert!(engine.distance(s, t).unwrap() >= twgraph::INF);
            }
        }
    }

    #[test]
    fn batches_are_order_invariant(
        n in 20usize..70,
        seed in 0u64..300,
        queries in 10usize..120,
        layout_idx in 0usize..2,
    ) {
        let layout = layout_of(layout_idx);
        let g = twgraph::gen::partial_ktree(n, 2, 0.6, seed);
        let inst = twgraph::gen::with_random_weights(&g, 11, seed);
        let cfg = ServeConfig { shard_size: 8, cache_capacity: 8, layout };
        let (engine, _) = build_engine(&g, &inst, 3, seed, cfg);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABBA);
        let qs: Vec<(u32, u32)> = (0..queries)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let base = engine.batch(&qs).unwrap();
        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.shuffle(&mut rng);
        let shuffled: Vec<(u32, u32)> = order.iter().map(|&i| qs[i]).collect();
        let got = engine.batch(&shuffled).unwrap();
        for (pos, &i) in order.iter().enumerate() {
            prop_assert_eq!(got[pos], base[i]);
        }
    }

    #[test]
    fn cache_is_semantically_invisible(
        n in 20usize..70,
        seed in 0u64..300,
        cache_capacity in 1usize..64,
        layout_idx in 0usize..2,
    ) {
        let layout = layout_of(layout_idx);
        let g = twgraph::gen::cactus(n, seed);
        let inst = twgraph::gen::with_random_weights(&g, 13, seed);
        let cached_cfg = ServeConfig { shard_size: 8, cache_capacity, layout };
        let (cached, _) = build_engine(&g, &inst, 3, seed, cached_cfg);
        let (raw, _) = build_engine(&g, &inst, 3, seed, cached_cfg.without_cache());
        let qs = labelserve::seeded_queries(
            n,
            &labelserve::WorkloadSpec { queries: 400, hot_pairs: 6, hot_fraction: 0.8 },
            seed,
        );
        // Heavy repetition: most answers come out of the cache on the
        // cached engine, none on the raw one.
        prop_assert_eq!(cached.batch(&qs).unwrap(), raw.batch(&qs).unwrap());
        prop_assert!(cached.stats().hits > 0, "hot workload never hit");
        prop_assert_eq!(raw.stats().hits, 0);
    }

    /// The tentpole contract in miniature: one accumulation compacted
    /// into both layouts must answer bit-identically on *every* pair —
    /// multi-component instances included, so cross-component INF flows
    /// through the packed decoder too — while the packed arena is the
    /// smaller of the two.
    #[test]
    fn packed_and_flat_stores_answer_bit_identically(
        n in 24usize..80,
        seed in 0u64..400,
        shard_size in 1usize..40,
    ) {
        let g = twgraph::gen::multi_component(n, seed);
        let inst = twgraph::gen::with_random_weights(&g, 17, seed);
        let flat_cfg = ServeConfig {
            shard_size,
            cache_capacity: 0,
            layout: StoreLayout::Flat,
        };
        let (flat, _) = build_engine(&g, &inst, 3, seed, flat_cfg);
        let (packed, _) =
            build_engine(&g, &inst, 3, seed, flat_cfg.with_layout(StoreLayout::Packed));
        prop_assert_eq!(packed.store().entries(), flat.store().entries());
        prop_assert!(
            packed.store().bytes() < flat.store().bytes(),
            "packed {} >= flat {}",
            packed.store().bytes(),
            flat.store().bytes()
        );
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                prop_assert_eq!(packed.distance(s, t).unwrap(), flat.distance(s, t).unwrap());
            }
        }
    }

    #[test]
    fn serving_commutes_with_relabeling(
        n in 20usize..60,
        seed in 0u64..200,
        layout_idx in 0usize..2,
    ) {
        let layout = layout_of(layout_idx);
        let g = twgraph::gen::series_parallel(n, seed);
        let inst = twgraph::gen::with_random_weights(&g, 15, seed);
        let cfg = treedec::SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = treedec::decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        let labels = distlabel::build_labels_centralized(&inst, &out.td, &out.info);

        let mut perm: Vec<u32> = (0..g.n() as u32).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0xA11CE));
        let info2: Vec<_> = out.info.iter().map(|ni| ni.relabeled(&perm)).collect();
        let labels2 = distlabel::build_labels_centralized(
            &inst.relabeled(&perm),
            &out.td.relabeled(&perm),
            &info2,
        );

        let ids: Vec<u32> = (0..g.n() as u32).collect();
        let serve_cfg = ServeConfig { shard_size: 8, cache_capacity: 16, layout };
        let mk = |ls: &[Label]| {
            let mut b = StoreBuilder::new(g.n());
            b.add_component(ls, &ids).unwrap();
            QueryEngine::new(
                b.build_layout(serve_cfg.shard_size, serve_cfg.layout).unwrap(),
                serve_cfg,
            )
        };
        let (e1, e2) = (mk(&labels), mk(&labels2));
        let mut qrng = SmallRng::seed_from_u64(seed ^ 0x5A5A);
        for _ in 0..200 {
            let (s, t) = (qrng.gen_range(0..n as u32), qrng.gen_range(0..n as u32));
            prop_assert_eq!(
                e1.distance(s, t).unwrap(),
                e2.distance(perm[s as usize], perm[t as usize]).unwrap()
            );
        }
    }
}
