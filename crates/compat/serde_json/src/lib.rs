//! Offline stand-in for `serde_json` (1.x API subset): [`Value`],
//! [`to_string`], and a [`json!`] macro covering flat objects, arrays and
//! scalars — the shapes the experiment harness emits as `#json` lines.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers the workspace produces are machine ints or floats;
    /// a signed/unsigned split mirrors serde_json's `Number` closely enough.
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(x) => out.push_str(&x.to_string()),
            Value::UInt(x) => out.push_str(&x.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => serde::escape_str_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::escape_str_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

impl serde::Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        self.write_into(out);
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::UInt(x as u64) }
        }
    )*};
}
macro_rules! impl_from_int {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::Int(x as i64) }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::Float(x as f64)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Value {
        Value::String(x.to_string())
    }
}

impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::String(x)
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(xs: Vec<T>) -> Value {
        Value::Array(xs.into_iter().map(Value::from).collect())
    }
}

static NULL: Value = Value::Null;

/// `value["key"]` on objects, mirroring `serde_json`: a missing key (or a
/// non-object receiver) yields `Value::Null` rather than panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// `value["key"] = v` on objects, mirroring `serde_json`: inserts the key
/// if absent, treats a `Null` receiver as an empty object, and panics on
/// scalar receivers (as the real crate does).
impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            panic!("cannot index-assign into a scalar Value");
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[pos].1;
        }
        entries.push((key.to_string(), Value::Null));
        &mut entries.last_mut().unwrap().1
    }
}

/// Serialization error. The stand-in serializer is infallible, but the
/// signature mirrors `serde_json::to_string` so call sites keep their
/// `?`/`unwrap()`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Build a [`Value`] from a JSON-shaped literal. Supports the forms the
/// workspace uses: flat `{"key": expr, ...}` objects, `[expr, ...]` arrays,
/// `null`, and bare expressions convertible via `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($val) ),* ])
    };
    ($val:expr) => { $crate::Value::from($val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_rendering() {
        let v = json!({
            "s": "he said \"hi\"",
            "n": 3u64,
            "neg": -4i32,
            "f": 2.5f64,
            "b": true,
            "null": Value::Null,
            "arr": vec![1u32, 2],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"s":"he said \"hi\"","n":3,"neg":-4,"f":2.5,"b":true,"null":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn nested_values_compose() {
        let inner = json!({"k": 1u64});
        let outer = json!({"inner": inner, "tag": "x"});
        assert_eq!(to_string(&outer).unwrap(), r#"{"inner":{"k":1},"tag":"x"}"#);
    }

    #[test]
    fn indexing_reads_and_inserts() {
        let mut v = json!({"a": 1u64});
        assert_eq!(v["a"], Value::UInt(1));
        assert_eq!(v["missing"], Value::Null);
        v["a"] = json!(2u64);
        v["b"] = json!("x");
        assert_eq!(to_string(&v).unwrap(), r#"{"a":2,"b":"x"}"#);
        // Null receivers become objects, as in real serde_json.
        let mut built = Value::Null;
        built["k"] = json!(1u64);
        assert_eq!(to_string(&built).unwrap(), r#"{"k":1}"#);
    }
}
