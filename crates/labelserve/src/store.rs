//! The compacted label store: per-node distance-label entries sharded by
//! node-id range, in one of two physical layouts.
//!
//! ## Layouts
//!
//! [`distlabel::Label`] keeps one heap `Vec` per node — fine for
//! construction, hostile to query serving (pointer chase per lookup,
//! allocator-scattered entries). [`StoreBuilder`] compacts the per-node
//! entry lists into per-shard arenas; [`StoreLayout`] picks the physical
//! form:
//!
//! * [`StoreLayout::Flat`] — structure-of-arrays CSR, 20 bytes/entry:
//!
//!   ```text
//!   shard s  (nodes [base, base + shard_size))
//!     offsets : u32  × (nodes + 1)     CSR row starts
//!     hubs    : u32  × entries         global hub ids, sorted per node
//!     dto     : Dist × entries         d(node → hub)
//!     dfrom   : Dist × entries         d(hub → node)
//!   ```
//!
//!   The decoder scans only `hubs` until it finds an intersection, so the
//!   hot loop touches 4-byte lanes (16 hubs per cache line); distance
//!   lanes load on matches only. Fastest per query, heaviest per node.
//!
//! * [`StoreLayout::Packed`] — delta-coded bit-packed streams in 64-entry
//!   blocks with per-block skip headers (see `packed.rs` for the exact
//!   format), typically 4–5x smaller. The merge-join becomes
//!   block-skip over the headers + in-block linear decode. Slightly
//!   slower per cold decode; the layout of choice once store bytes —
//!   not decode cycles — bound scale, and the only layout served
//!   zero-copy from an mmapped store file ([`crate::file`]).
//!
//! Either way, hub ids are **global** vertex ids (mapped through each
//! component's `old_of`), which makes cross-component intersections empty
//! by construction — a cross pair decodes to [`INF`], matching the
//! oracle's semantics for unreachable pairs — and lets the store
//! additionally keep a component map for an O(1) early exit.

use crate::error::ServeError;
use crate::packed::{decode_packed, PackedShard};
use distlabel::Label;
use std::sync::Arc;
use twgraph::{dist_add, Dist, INF};

const UNASSIGNED: u32 = u32::MAX;

/// Bytes per entry in the flat layout (one `u32` hub + two `u64` lanes).
const FLAT_ENTRY_BYTES: usize = 20;

/// The physical shard format a store compacts into.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StoreLayout {
    /// Flat CSR structure-of-arrays: fastest decode, 20 bytes/entry.
    #[default]
    Flat,
    /// Delta/varint block-packed streams: ~4–5x smaller, mmap-servable.
    Packed,
}

/// Guarded CSR offset: a shard whose entry count no longer fits the `u32`
/// offset lane is a typed error, never an `as u32` truncation that would
/// silently corrupt every subsequent row.
pub(crate) fn checked_offset(shard: usize, entries: usize) -> Result<u32, ServeError> {
    u32::try_from(entries).map_err(|_| ServeError::ShardTooLarge {
        shard,
        entries,
        bytes: entries.saturating_mul(FLAT_ENTRY_BYTES),
    })
}

/// Distinct component ids in a component map. [`LabelStore::rebuilt`] used
/// to report `max + 1`, overcounting once update-driven splits and merges
/// leave the id space non-dense (a merge that retires id 1 of {0, 1, 2}
/// leaves 2 components, not 3).
pub(crate) fn distinct_components(comp_of: &[u32]) -> usize {
    let Some(&max) = comp_of.iter().max() else {
        return 0;
    };
    // Dense-ish id spaces (the common case: ids were once 0..k) count via
    // a bitset; a pathologically sparse space falls back to sort-dedup.
    if (max as usize) < comp_of.len().saturating_mul(4).max(1024) {
        let mut seen = vec![false; max as usize + 1];
        let mut count = 0usize;
        for &c in comp_of {
            if !seen[c as usize] {
                seen[c as usize] = true;
                count += 1;
            }
        }
        count
    } else {
        let mut ids = comp_of.to_vec();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Accumulates per-component label sets, then compacts them into a
/// [`LabelStore`]. Components must partition the global vertex space
/// `0..n`; every violation is a typed [`ServeError`].
pub struct StoreBuilder {
    n: usize,
    comp_of: Vec<u32>,
    entries: Vec<Vec<(u32, Dist, Dist)>>,
    comps: u32,
}

impl StoreBuilder {
    /// Builder over the global vertex space `0..n`.
    pub fn new(n: usize) -> Self {
        StoreBuilder {
            n,
            comp_of: vec![UNASSIGNED; n],
            entries: vec![Vec::new(); n],
            comps: 0,
        }
    }

    /// Register one connected component: `labels[i]` is the label of the
    /// component-local vertex `i`, and `old_of[i]` its global id (sorted
    /// strictly ascending, as produced by component splitting — the
    /// monotone map is what keeps per-node hub lists sorted, and an
    /// unsorted map is rejected as
    /// [`ServeError::UnsortedComponentMap`] in every build profile).
    pub fn add_component(&mut self, labels: &[Label], old_of: &[u32]) -> Result<(), ServeError> {
        if labels.len() != old_of.len() {
            return Err(ServeError::ComponentShapeMismatch {
                labels: labels.len(),
                nodes: old_of.len(),
            });
        }
        if let Some(i) = old_of.windows(2).position(|w| w[0] >= w[1]) {
            return Err(ServeError::UnsortedComponentMap {
                index: i,
                prev: old_of[i],
                next: old_of[i + 1],
            });
        }
        let comp = self.comps;
        for (label, &global) in labels.iter().zip(old_of) {
            let slot = self
                .comp_of
                .get_mut(global as usize)
                .ok_or(ServeError::UnknownNode {
                    node: global,
                    n: self.n,
                })?;
            if *slot != UNASSIGNED {
                return Err(ServeError::DuplicateNode { node: global });
            }
            *slot = comp;
            let mapped: Result<Vec<(u32, Dist, Dist)>, ServeError> = label
                .entries
                .iter()
                .map(|&(hub, to, from)| {
                    old_of.get(hub as usize).map(|&gh| (gh, to, from)).ok_or(
                        ServeError::HubOutOfRange {
                            hub,
                            comp_n: old_of.len(),
                        },
                    )
                })
                .collect();
            self.entries[global as usize] = mapped?;
        }
        self.comps += 1;
        Ok(())
    }

    /// Register an isolated vertex as its own component: the synthesized
    /// label holds only the self-hub at distance 0, so `v → v` decodes to
    /// 0 and every other pair through `v` to [`INF`].
    pub fn add_singleton(&mut self, v: u32) -> Result<(), ServeError> {
        let slot = self
            .comp_of
            .get_mut(v as usize)
            .ok_or(ServeError::UnknownNode { node: v, n: self.n })?;
        if *slot != UNASSIGNED {
            return Err(ServeError::DuplicateNode { node: v });
        }
        *slot = self.comps;
        self.comps += 1;
        self.entries[v as usize] = vec![(v, 0, 0)];
        Ok(())
    }

    /// Compact into a flat-layout store (the historical default).
    pub fn build(self, shard_size: usize) -> Result<LabelStore, ServeError> {
        self.build_layout(shard_size, StoreLayout::Flat)
    }

    /// Compact into the sharded arena in the requested layout. Every
    /// vertex of `0..n` must have been covered by exactly one `add_*`
    /// call. Borrows the builder, so one accumulation can compact into
    /// both layouts (the differential suites do exactly that).
    pub fn build_layout(
        &self,
        shard_size: usize,
        layout: StoreLayout,
    ) -> Result<LabelStore, ServeError> {
        if let Some(v) = self.comp_of.iter().position(|&c| c == UNASSIGNED) {
            return Err(ServeError::UncoveredNode { node: v as u32 });
        }
        let shard_size = shard_size.max(1);
        let shard_count = self.n.div_ceil(shard_size).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut entries_total = 0usize;
        for s in 0..shard_count {
            let base = s * shard_size;
            let hi = ((s + 1) * shard_size).min(self.n);
            let shard = compact_shard(s, base as u32, &self.entries[base..hi], layout)?;
            entries_total += shard.entries();
            shards.push(shard);
        }
        Ok(LabelStore {
            n: self.n,
            shard_size,
            comp_of: self.comp_of.clone(),
            shards,
            entries_total,
            components: self.comps as usize,
            layout,
        })
    }
}

/// Compact one shard's rows into the requested physical form.
fn compact_shard(
    index: usize,
    base: u32,
    rows: &[Vec<(u32, Dist, Dist)>],
    layout: StoreLayout,
) -> Result<ShardData, ServeError> {
    match layout {
        StoreLayout::Packed => Ok(ShardData::Packed(Arc::new(PackedShard::pack(
            index, base, rows,
        )?))),
        StoreLayout::Flat => {
            let total: usize = rows.iter().map(|r| r.len()).sum();
            let mut offsets = Vec::with_capacity(rows.len() + 1);
            let mut hubs = Vec::with_capacity(total);
            let mut dto = Vec::with_capacity(total);
            let mut dfrom = Vec::with_capacity(total);
            offsets.push(0u32);
            for row in rows {
                for &(hub, to, from) in row {
                    hubs.push(hub);
                    dto.push(to);
                    dfrom.push(from);
                }
                offsets.push(checked_offset(index, hubs.len())?);
            }
            Ok(ShardData::Flat(Arc::new(FlatShard {
                base,
                offsets,
                hubs,
                dto,
                dfrom,
            })))
        }
    }
}

/// One node-range shard's flat CSR arena.
#[derive(Debug)]
pub(crate) struct FlatShard {
    pub(crate) base: u32,
    pub(crate) offsets: Vec<u32>,
    pub(crate) hubs: Vec<u32>,
    pub(crate) dto: Vec<Dist>,
    pub(crate) dfrom: Vec<Dist>,
}

/// One shard in whichever layout the store was compacted into. `Arc`ed so
/// an epoch-to-epoch rebuild ([`LabelStore::rebuilt`]) shares clean
/// shards with its predecessor instead of copying them.
#[derive(Clone, Debug)]
pub(crate) enum ShardData {
    /// Flat CSR lanes.
    Flat(Arc<FlatShard>),
    /// Delta/varint packed segment.
    Packed(Arc<PackedShard>),
}

impl ShardData {
    /// Label entries held by this shard.
    fn entries(&self) -> usize {
        match self {
            ShardData::Flat(s) => s.hubs.len(),
            ShardData::Packed(p) => p.entries(),
        }
    }

    /// Arena bytes of this shard (lanes + offsets for flat, the whole
    /// segment — headers included — for packed).
    fn bytes(&self) -> usize {
        match self {
            ShardData::Flat(s) => s.hubs.len() * FLAT_ENTRY_BYTES + s.offsets.len() * 4,
            ShardData::Packed(p) => p.seg_len(),
        }
    }

    /// Same physical arena as `other`?
    fn ptr_eq(&self, other: &ShardData) -> bool {
        match (self, other) {
            (ShardData::Flat(a), ShardData::Flat(b)) => Arc::ptr_eq(a, b),
            (ShardData::Packed(a), ShardData::Packed(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Materialize one local row (mixed-layout fallback and tests only —
    /// the hot paths decode in place).
    fn row_vec(&self, local: usize) -> Vec<(u32, Dist, Dist)> {
        match self {
            ShardData::Flat(s) => {
                let (lo, hi) = (s.offsets[local] as usize, s.offsets[local + 1] as usize);
                (lo..hi)
                    .map(|i| (s.hubs[i], s.dto[i], s.dfrom[i]))
                    .collect()
            }
            ShardData::Packed(p) => p.row_entries(local),
        }
    }
}

/// The compacted, sharded distance-label store. Immutable after build;
/// shared freely across query threads. Built in memory by
/// [`StoreBuilder`], or opened from a persisted store file by
/// [`LabelStore::open_mmap`].
#[derive(Debug)]
pub struct LabelStore {
    n: usize,
    shard_size: usize,
    comp_of: Vec<u32>,
    shards: Vec<ShardData>,
    entries_total: usize,
    components: usize,
    layout: StoreLayout,
}

/// First index of `hubs` with value `>= key` (exponential search; mirrors
/// `distlabel`'s galloping decoder on the SoA hub lane).
fn gallop(hubs: &[u32], key: u32) -> usize {
    if hubs.is_empty() || hubs[0] >= key {
        return 0;
    }
    let mut hi = 1usize;
    while hi < hubs.len() && hubs[hi] < key {
        hi *= 2;
    }
    let lo = hi / 2;
    lo + hubs[lo..hubs.len().min(hi + 1)].partition_point(|&h| h < key)
}

impl LabelStore {
    /// Assemble a store from already-validated parts (the file-open path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        shard_size: usize,
        comp_of: Vec<u32>,
        shards: Vec<ShardData>,
        entries_total: usize,
        components: usize,
        layout: StoreLayout,
    ) -> LabelStore {
        LabelStore {
            n,
            shard_size,
            comp_of,
            shards,
            entries_total,
            components,
            layout,
        }
    }

    /// Global vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The physical layout the shards were compacted into.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Number of node-range shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Nodes per shard (last shard may be partial).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total label entries across all shards.
    pub fn entries(&self) -> usize {
        self.entries_total
    }

    /// Connected components registered at build time.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Arena footprint in bytes: per-shard arenas (lanes + offsets for
    /// flat, whole segments for packed) plus the component map.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(ShardData::bytes).sum::<usize>() + self.comp_of.len() * 4
    }

    /// Component id of `v`.
    pub fn comp_of(&self, v: u32) -> Result<u32, ServeError> {
        self.comp_of
            .get(v as usize)
            .copied()
            .ok_or(ServeError::UnknownNode { node: v, n: self.n })
    }

    /// The full component map (for persistence).
    pub(crate) fn comp_of_slice(&self) -> &[u32] {
        &self.comp_of
    }

    /// The shards (for persistence).
    pub(crate) fn shards_data(&self) -> &[ShardData] {
        &self.shards
    }

    /// The shard index owning node `v` (valid ids only).
    pub fn shard_of(&self, v: u32) -> usize {
        v as usize / self.shard_size
    }

    /// `(hubs, d(v → hub), d(hub → v))` lanes of node `v` in a flat shard.
    fn flat_lanes(shard: &FlatShard, v: u32) -> (&[u32], &[Dist], &[Dist]) {
        let local = (v - shard.base) as usize;
        let (lo, hi) = (
            shard.offsets[local] as usize,
            shard.offsets[local + 1] as usize,
        );
        (
            &shard.hubs[lo..hi],
            &shard.dto[lo..hi],
            &shard.dfrom[lo..hi],
        )
    }

    /// Exact `d(s → t)` straight off the arena (no cache): the hub-
    /// intersection minimum — galloping merge-join on flat lanes,
    /// block-skip + in-block decode on packed segments — bit-identical to
    /// [`distlabel::decode`] on the uncompacted labels either way.
    pub fn distance(&self, s: u32, t: u32) -> Result<Dist, ServeError> {
        if s as usize >= self.n {
            return Err(ServeError::UnknownNode { node: s, n: self.n });
        }
        if t as usize >= self.n {
            return Err(ServeError::UnknownNode { node: t, n: self.n });
        }
        if self.comp_of[s as usize] != self.comp_of[t as usize] {
            return Ok(INF);
        }
        let (sa, sb) = (
            &self.shards[self.shard_of(s)],
            &self.shards[self.shard_of(t)],
        );
        match (sa, sb) {
            (ShardData::Flat(a), ShardData::Flat(b)) => {
                let (sh, sto, _) = Self::flat_lanes(a, s);
                let (th, _, tfrom) = Self::flat_lanes(b, t);
                Ok(decode_lanes(sh, sto, th, tfrom))
            }
            (ShardData::Packed(a), ShardData::Packed(b)) => Ok(decode_packed(
                &a.row((s - a.base) as usize),
                &b.row((t - b.base) as usize),
            )),
            // A store never mixes layouts today; decode via materialized
            // rows so the answer stays exact if one ever does.
            (a, b) => {
                let ra = a.row_vec((s as usize) % self.shard_size.max(1));
                let rb = b.row_vec((t as usize) % self.shard_size.max(1));
                Ok(distlabel::decode_entries(&ra, &rb))
            }
        }
    }

    /// Both directions at once: `(d(s → t), d(t → s))`.
    pub fn distance_pair(&self, s: u32, t: u32) -> Result<(Dist, Dist), ServeError> {
        Ok((self.distance(s, t)?, self.distance(t, s)?))
    }

    /// How many shard arenas `self` physically shares with `other`
    /// (same `Arc` allocation) — the epoch-versioning tests pin that a
    /// partial rebuild copies only dirty shards.
    pub fn shards_shared_with(&self, other: &LabelStore) -> usize {
        self.shards
            .iter()
            .zip(&other.shards)
            .filter(|(a, b)| a.ptr_eq(b))
            .count()
    }

    /// True when no vertex of shard `s` appears in the sorted `dirty` list.
    pub fn shard_clean(&self, s: usize, dirty: &[u32]) -> bool {
        let lo = (s * self.shard_size) as u32;
        let hi = (((s + 1) * self.shard_size).min(self.n)) as u32;
        let start = dirty.partition_point(|&v| v < lo);
        !(start < dirty.len() && dirty[start] < hi)
    }

    /// The next epoch's store: shards containing a vertex of `dirty`
    /// (sorted global ids) are recompacted from `entries_of` (global-hub
    /// entry list per vertex, sorted by hub) **in the store's own
    /// layout**; clean shards share their arena with `self` via `Arc`.
    /// `comp_of` is the updated component map — always replaced, since
    /// component renumbering is cheap and the INF early-exit must track
    /// the post-update component structure. The component count is the
    /// number of **distinct** ids in the new map (ids are non-dense after
    /// update-driven splits and merges).
    pub fn rebuilt(
        &self,
        dirty: &[u32],
        comp_of: Vec<u32>,
        entries_of: impl Fn(u32) -> Vec<(u32, Dist, Dist)>,
    ) -> Result<LabelStore, ServeError> {
        debug_assert_eq!(comp_of.len(), self.n);
        if let Some(&v) = dirty.iter().find(|&&v| v as usize >= self.n) {
            return Err(ServeError::UnknownNode { node: v, n: self.n });
        }
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut entries_total = 0usize;
        for (s, old) in self.shards.iter().enumerate() {
            if self.shard_clean(s, dirty) {
                entries_total += old.entries();
                shards.push(old.clone());
                continue;
            }
            let base = s * self.shard_size;
            let hi = ((s + 1) * self.shard_size).min(self.n);
            let rows: Vec<Vec<(u32, Dist, Dist)>> =
                (base..hi).map(|v| entries_of(v as u32)).collect();
            let shard = compact_shard(s, base as u32, &rows, self.layout)?;
            entries_total += shard.entries();
            shards.push(shard);
        }
        let components = distinct_components(&comp_of);
        Ok(LabelStore {
            n: self.n,
            shard_size: self.shard_size,
            comp_of,
            shards,
            entries_total,
            components,
            layout: self.layout,
        })
    }
}

/// Merge-join over two sorted hub lanes; `a`'s forward lane meets `b`'s
/// backward lane. Same early exits as `distlabel::decode_entries`.
fn decode_lanes(ah: &[u32], ato: &[Dist], bh: &[u32], bfrom: &[Dist]) -> Dist {
    if ah.is_empty() || bh.is_empty() || ah[ah.len() - 1] < bh[0] || bh[bh.len() - 1] < ah[0] {
        return INF;
    }
    let mut best = INF;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ah.len() && j < bh.len() {
        match ah[i].cmp(&bh[j]) {
            std::cmp::Ordering::Less => i += gallop(&ah[i..], bh[j]),
            std::cmp::Ordering::Greater => j += gallop(&bh[j..], ah[i]),
            std::cmp::Ordering::Equal => {
                best = best.min(dist_add(ato[i], bfrom[j]));
                if best == 0 {
                    return 0;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built two-component store: a 3-path {0,1,2} (unit weights,
    /// hubs = all three vertices for simplicity) and a singleton {3}.
    fn tiny_store_layout(shard_size: usize, layout: StoreLayout) -> LabelStore {
        let mut labels = Vec::new();
        let d = |a: i64, b: i64| (a - b).unsigned_abs();
        for v in 0..3i64 {
            let mut l = Label::new(v as u32);
            for h in 0..3i64 {
                l.merge(h as u32, d(v, h), d(h, v));
            }
            labels.push(l);
        }
        let mut b = StoreBuilder::new(4);
        b.add_component(&labels, &[0, 1, 2]).unwrap();
        b.add_singleton(3).unwrap();
        b.build_layout(shard_size, layout).unwrap()
    }

    fn tiny_store(shard_size: usize) -> LabelStore {
        tiny_store_layout(shard_size, StoreLayout::Flat)
    }

    #[test]
    fn distances_and_cross_component_inf() {
        for layout in [StoreLayout::Flat, StoreLayout::Packed] {
            for shard_size in [1, 2, 64] {
                let s = tiny_store_layout(shard_size, layout);
                assert_eq!(s.n(), 4);
                assert_eq!(s.layout(), layout);
                assert_eq!(s.components(), 2);
                assert_eq!(s.distance(0, 2).unwrap(), 2);
                assert_eq!(s.distance(2, 0).unwrap(), 2);
                assert_eq!(s.distance(1, 1).unwrap(), 0);
                assert_eq!(s.distance(3, 3).unwrap(), 0);
                assert_eq!(s.distance(0, 3).unwrap(), INF, "cross-component pair");
                assert_eq!(s.distance_pair(1, 2).unwrap(), (1, 1));
            }
        }
    }

    #[test]
    fn packed_store_is_smaller_and_answers_identically() {
        let flat = tiny_store_layout(2, StoreLayout::Flat);
        let packed = tiny_store_layout(2, StoreLayout::Packed);
        assert_eq!(flat.entries(), packed.entries());
        assert!(
            packed.bytes() < flat.bytes(),
            "packed {} vs flat {}",
            packed.bytes(),
            flat.bytes()
        );
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(flat.distance(s, t).unwrap(), packed.distance(s, t).unwrap());
            }
        }
    }

    #[test]
    fn unknown_node_is_typed() {
        let s = tiny_store(2);
        assert_eq!(
            s.distance(4, 0),
            Err(ServeError::UnknownNode { node: 4, n: 4 })
        );
        assert_eq!(
            s.distance(0, 9),
            Err(ServeError::UnknownNode { node: 9, n: 4 })
        );
        assert_eq!(s.comp_of(7), Err(ServeError::UnknownNode { node: 7, n: 4 }));
    }

    #[test]
    fn builder_rejects_partitioning_violations() {
        let mut b = StoreBuilder::new(2);
        b.add_singleton(0).unwrap();
        assert_eq!(
            b.add_singleton(0),
            Err(ServeError::DuplicateNode { node: 0 })
        );
        assert_eq!(
            b.build(4).map(|_| ()).unwrap_err(),
            ServeError::UncoveredNode { node: 1 }
        );

        let mut b = StoreBuilder::new(2);
        let mut bad = Label::new(0);
        bad.merge(5, 1, 1); // hub 5 outside a 1-vertex component
        assert_eq!(
            b.add_component(&[bad], &[0]),
            Err(ServeError::HubOutOfRange { hub: 5, comp_n: 1 })
        );
        assert_eq!(
            b.add_component(&[], &[1]),
            Err(ServeError::ComponentShapeMismatch {
                labels: 0,
                nodes: 1
            })
        );
    }

    /// Regression (issue 8): an unsorted `old_of` used to slip through
    /// release builds (`debug_assert!` only) and silently violate the
    /// sorted-hubs invariant the decoders rely on. It must be a typed
    /// error in *every* build profile — this test runs in the release CI
    /// suites too.
    #[test]
    fn unsorted_component_map_is_a_release_mode_error() {
        let labels: Vec<Label> = (0..3).map(Label::new).collect();
        let mut b = StoreBuilder::new(3);
        assert_eq!(
            b.add_component(&labels, &[0, 2, 1]),
            Err(ServeError::UnsortedComponentMap {
                index: 1,
                prev: 2,
                next: 1
            })
        );
        // Equal neighbours violate *strict* ascent too.
        let mut b = StoreBuilder::new(3);
        assert_eq!(
            b.add_component(&labels[..2], &[1, 1]),
            Err(ServeError::UnsortedComponentMap {
                index: 0,
                prev: 1,
                next: 1
            })
        );
        // The builder is still usable after the rejection.
        let mut b = StoreBuilder::new(1);
        b.add_singleton(0).unwrap();
        assert!(b.build(1).is_ok());
    }

    /// Regression (issue 8): CSR offsets were pushed with `as u32`; a
    /// shard past 2³² entries silently truncated. The checked conversion
    /// (which both layouts run through) must refuse with the coordinates.
    #[test]
    fn oversized_shard_is_a_typed_error_not_a_truncation() {
        assert_eq!(checked_offset(7, 1 << 20).unwrap(), 1 << 20);
        assert_eq!(checked_offset(0, u32::MAX as usize).unwrap(), u32::MAX);
        let too_big = u32::MAX as usize + 1;
        assert_eq!(
            checked_offset(3, too_big).unwrap_err(),
            ServeError::ShardTooLarge {
                shard: 3,
                entries: too_big,
                bytes: too_big * FLAT_ENTRY_BYTES,
            }
        );
    }

    #[test]
    fn sharding_covers_the_space_and_counts_bytes() {
        let s = tiny_store(3);
        assert_eq!(s.shard_count(), 2);
        assert_eq!(s.shard_of(2), 0);
        assert_eq!(s.shard_of(3), 1);
        assert_eq!(s.entries(), 3 * 3 + 1);
        assert!(s.bytes() >= s.entries() * 20);
    }

    #[test]
    fn rebuilt_shares_clean_shards_and_swaps_dirty_rows() {
        for layout in [StoreLayout::Flat, StoreLayout::Packed] {
            let s = tiny_store_layout(2, layout); // shards: {0,1}, {2,3}
                                                  // Dirty only vertex 3: shard 0 shared, shard 1 rebuilt.
            let comp_of: Vec<u32> = (0..4).map(|v| s.comp_of(v).unwrap()).collect();
            let r = s
                .rebuilt(&[3], comp_of, |v| {
                    assert!(v >= 2, "entries_of called for a clean-shard vertex");
                    if v == 3 {
                        vec![(3, 0, 0), (9, 7, 7)]
                    } else {
                        vec![(0, 2, 2), (1, 1, 1), (2, 0, 0)]
                    }
                })
                .unwrap();
            assert_eq!(r.layout(), layout, "rebuild must preserve the layout");
            assert_eq!(r.shards_shared_with(&s), 1);
            assert_eq!(r.distance(0, 2).unwrap(), s.distance(0, 2).unwrap());
            assert_eq!(r.entries(), s.entries() + 1);
            assert_eq!(r.components(), s.components());
            // The dirty row now carries the new entries.
            assert_eq!(r.distance(3, 3).unwrap(), 0);

            // Empty dirty list shares everything.
            let comp_of: Vec<u32> = (0..4).map(|v| s.comp_of(v).unwrap()).collect();
            let same = s.rebuilt(&[], comp_of, |_| unreachable!()).unwrap();
            assert_eq!(same.shards_shared_with(&s), 2);

            // Out-of-range dirty vertex is a typed error.
            assert_eq!(
                s.rebuilt(&[7], vec![0; 4], |_| Vec::new())
                    .map(|_| ())
                    .unwrap_err(),
                ServeError::UnknownNode { node: 7, n: 4 }
            );
        }
    }

    /// Regression (issue 8): `rebuilt` used to report `max(comp_of) + 1`
    /// components. After a merge leaves a non-dense id space (here ids
    /// {0, 2} — id 1 retired), the count must be the number of *distinct*
    /// ids, and queries must keep matching the map.
    #[test]
    fn rebuilt_counts_distinct_components_after_merges() {
        assert_eq!(distinct_components(&[]), 0);
        assert_eq!(distinct_components(&[0, 0, 0]), 1);
        assert_eq!(distinct_components(&[0, 2, 0, 2]), 2);
        assert_eq!(distinct_components(&[5, 1_000_000, 5]), 2);

        let s = tiny_store(2);
        assert_eq!(s.components(), 2);
        // Post-"merge" map: vertices {0,1} keep id 0, {2,3} now share the
        // non-dense id 2 (ids 1 and the old component of 3 are retired).
        let r = s
            .rebuilt(&[0, 1, 2, 3], vec![0, 0, 2, 2], |v| match v {
                2 => vec![(2, 0, 0), (3, 4, 4)],
                3 => vec![(2, 4, 4), (3, 0, 0)],
                v => vec![
                    (0, u64::from(v), u64::from(v)),
                    (1, u64::from(1 - v), u64::from(1 - v)),
                ],
            })
            .unwrap();
        assert_eq!(r.components(), 2, "distinct ids, not max + 1 = 3");
        // Merge-then-query: the rewritten rows serve, and the component
        // early-exit follows the *new* map.
        assert_eq!(r.distance(2, 3).unwrap(), 4);
        assert_eq!(r.distance(0, 2).unwrap(), INF, "different components");
        assert_eq!(r.distance(0, 1).unwrap(), 1);
    }
}
