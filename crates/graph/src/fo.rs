//! A tiny first-order formula DSL over graphs (the FO-property pipeline).
//!
//! Grammar (quantifier depth ≤ 2, two variables `x` = var 0, `y` = var 1):
//!
//! ```text
//! sentence ::= Q var sentence | body
//! Q        ::= ∃ | ∀
//! body     ::= atom | ¬body | (body ∧ body) | (body ∨ body)
//! atom     ::= adj(v, v) | v = v | dist(v, v) ≤ k
//! ```
//!
//! FO model checking is fixed-parameter tractable on sparse / bounded
//! -treewidth graph classes; the `fo` scenario pipeline evaluates these
//! sentences over distributed-gathered bounded-distance data and checks
//! the verdicts against the naive quantifier-expansion oracle in
//! `baselines::oracles::fo_oracle`. This module owns only the shared AST,
//! the seeded sentence generator, and the pretty-printer — **both
//! evaluators are implemented independently** of each other so the
//! differential comparison is meaningful.

use crate::gen::derive_rng;
use rand::Rng;
use std::fmt;

/// Variable index: `0` renders as `x`, `1` as `y`.
pub type Var = u8;

/// An atomic predicate over bound variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Atom {
    /// `adj(a, b)` — the two vertices are distinct and joined by an edge.
    Adj(Var, Var),
    /// `a = b` — the two vertices are identical.
    Eq(Var, Var),
    /// `dist(a, b) ≤ k` — hop distance at most `k` (true when `a = b`;
    /// false across connected components).
    DistLe(Var, Var, u32),
}

/// A formula of the DSL. Sentences produced by [`seeded_sentences`] are
/// closed, use at most two variables, and nest at most two quantifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// An atomic predicate.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification over all vertices.
    Exists(Var, Box<Formula>),
    /// Universal quantification over all vertices.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// Maximum quantifier nesting depth.
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Formula::Atom(_) => 0,
            Formula::Not(f) => f.quantifier_depth(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }

    /// The largest radius appearing in any `dist ≤ k` atom (0 if none) —
    /// the hop-distance horizon an evaluator must know about.
    pub fn max_radius(&self) -> u32 {
        match self {
            Formula::Atom(Atom::DistLe(_, _, k)) => *k,
            Formula::Atom(_) => 0,
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => f.max_radius(),
            Formula::And(a, b) | Formula::Or(a, b) => a.max_radius().max(b.max_radius()),
        }
    }

    /// True when every variable occurrence is bound by an enclosing
    /// quantifier (the generator only ever emits closed sentences; this is
    /// the check a consumer can assert).
    pub fn is_sentence(&self) -> bool {
        fn closed(f: &Formula, bound: [bool; 2]) -> bool {
            let var_ok = |v: Var| (v as usize) < 2 && bound[v as usize];
            match f {
                Formula::Atom(Atom::Adj(a, b) | Atom::Eq(a, b)) => var_ok(*a) && var_ok(*b),
                Formula::Atom(Atom::DistLe(a, b, _)) => var_ok(*a) && var_ok(*b),
                Formula::Not(g) => closed(g, bound),
                Formula::And(a, b) | Formula::Or(a, b) => closed(a, bound) && closed(b, bound),
                Formula::Exists(v, g) | Formula::Forall(v, g) => {
                    let mut inner = bound;
                    if (*v as usize) < 2 {
                        inner[*v as usize] = true;
                    } else {
                        return false;
                    }
                    closed(g, inner)
                }
            }
        }
        closed(self, [false, false])
    }
}

fn var_name(v: Var) -> char {
    if v == 0 {
        'x'
    } else {
        'y'
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(Atom::Adj(a, b)) => {
                write!(f, "adj({}, {})", var_name(*a), var_name(*b))
            }
            Formula::Atom(Atom::Eq(a, b)) => write!(f, "{} = {}", var_name(*a), var_name(*b)),
            Formula::Atom(Atom::DistLe(a, b, k)) => {
                write!(f, "dist({}, {}) <= {k}", var_name(*a), var_name(*b))
            }
            Formula::Not(g) => write!(f, "!({g})"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Exists(v, g) => write!(f, "E{}. {g}", var_name(*v)),
            Formula::Forall(v, g) => write!(f, "A{}. {g}", var_name(*v)),
        }
    }
}

/// Shorthand constructors (the generator and the tests read better with
/// them; external callers are welcome too).
pub mod build {
    use super::{Atom, Formula, Var};

    /// `adj(a, b)` atom.
    pub fn adj(a: Var, b: Var) -> Formula {
        Formula::Atom(Atom::Adj(a, b))
    }
    /// `a = b` atom.
    pub fn eq(a: Var, b: Var) -> Formula {
        Formula::Atom(Atom::Eq(a, b))
    }
    /// `dist(a, b) ≤ k` atom.
    pub fn dist_le(a: Var, b: Var, k: u32) -> Formula {
        Formula::Atom(Atom::DistLe(a, b, k))
    }
    /// Negation.
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }
    /// Conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }
    /// Disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }
    /// Existential quantifier.
    pub fn exists(v: Var, f: Formula) -> Formula {
        Formula::Exists(v, Box::new(f))
    }
    /// Universal quantifier.
    pub fn forall(v: Var, f: Formula) -> Formula {
        Formula::Forall(v, Box::new(f))
    }
}

/// A random quantifier-free body over both variables: a combinator tree of
/// bounded depth over the three atom kinds.
fn random_body(rng: &mut impl Rng, max_radius: u32, depth: usize) -> Formula {
    use build::*;
    if depth == 0 || rng.gen_bool(0.4) {
        let a = rng.gen_range(0..2) as Var;
        let b = rng.gen_range(0..2) as Var;
        return match rng.gen_range(0..3) {
            0 => adj(a, b),
            1 => eq(a, b),
            _ => dist_le(a, b, rng.gen_range(1..=max_radius.max(1))),
        };
    }
    let l = random_body(rng, max_radius, depth - 1);
    match rng.gen_range(0..3) {
        0 => not(l),
        1 => and(l, random_body(rng, max_radius, depth - 1)),
        _ => or(l, random_body(rng, max_radius, depth - 1)),
    }
}

/// `count` deterministic closed sentences under the workspace seed rule.
///
/// The first three are fixed structural templates whose truth values
/// separate the corpus families (edge existence, "every vertex has another
/// vertex within r", "some vertex r-covers the graph"); the rest are
/// seeded random `Q x. Q y. body` sentences. All results satisfy
/// [`Formula::is_sentence`], nest ≤ 2 quantifiers, and keep every
/// `dist` radius in `1..=max_radius`.
pub fn seeded_sentences(count: usize, max_radius: u32, seed: u64) -> Vec<Formula> {
    use build::*;
    let r = max_radius.max(1);
    let mut out = vec![
        // Some edge exists.
        exists(0, exists(1, adj(0, 1))),
        // Every vertex has a distinct vertex within distance r — false as
        // soon as some component is an isolated vertex (or r-far from all).
        forall(0, exists(1, and(not(eq(0, 1)), dist_le(0, 1, r)))),
        // Some vertex r-covers every other vertex (an r-center exists).
        exists(0, forall(1, dist_le(0, 1, r))),
    ];
    let mut i = 0u64;
    while out.len() < count {
        let mut rng = derive_rng("fo_sentence", &[i], seed);
        i += 1;
        let body = random_body(&mut rng, r, 2);
        let inner: Formula = if rng.gen_bool(0.5) {
            exists(1, body)
        } else {
            forall(1, body)
        };
        let s = if rng.gen_bool(0.5) {
            exists(0, inner)
        } else {
            forall(0, inner)
        };
        debug_assert!(s.is_sentence());
        out.push(s);
    }
    out.truncate(count);
    out
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn templates_and_random_sentences_are_closed() {
        for f in seeded_sentences(10, 2, 42) {
            assert!(f.is_sentence(), "open sentence generated: {f}");
            assert!(f.quantifier_depth() <= 2, "too deep: {f}");
            assert!(f.max_radius() <= 2, "radius blew the horizon: {f}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(seeded_sentences(8, 2, 7), seeded_sentences(8, 2, 7));
        assert_ne!(seeded_sentences(8, 2, 7), seeded_sentences(8, 2, 8));
    }

    #[test]
    fn open_formulas_are_rejected() {
        assert!(!adj(0, 1).is_sentence());
        assert!(!exists(0, adj(0, 1)).is_sentence(), "y unbound");
        assert!(exists(0, exists(1, adj(0, 1))).is_sentence());
    }

    #[test]
    fn display_renders_the_grammar() {
        let f = forall(0, exists(1, and(not(eq(0, 1)), dist_le(0, 1, 2))));
        assert_eq!(f.to_string(), "Ax. Ey. (!(x = y) & dist(x, y) <= 2)");
    }

    #[test]
    fn radius_and_depth_introspection() {
        let f = exists(0, forall(1, or(adj(0, 1), dist_le(0, 1, 3))));
        assert_eq!(f.max_radius(), 3);
        assert_eq!(f.quantifier_depth(), 2);
        assert_eq!(exists(0, eq(0, 0)).max_radius(), 0);
    }
}
