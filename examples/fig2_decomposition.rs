//! Figure 2 reproduction: the G_x / B_x / G'_{x·i} recursion.
//!
//! Decomposes a small grid and prints each tree node's separator, bag and
//! child components — the structure the paper's Figure 2 sketches.
//!
//! ```sh
//! cargo run --release --example fig2_decomposition
//! ```

use lowtw::prelude::*;
use lowtw::twgraph;

fn main() {
    let g = twgraph::gen::grid(4, 40);
    println!("4×40 grid: n = {}, m = {}, τ = 4\n", g.n(), g.m());
    let session = Session::decompose(&g, 5, 3).unwrap();
    session.td.verify(&g).expect("decomposition must be valid");

    let depths = session.td.depths();
    for (x, depth) in depths.iter().enumerate().take(session.td.bags.len()) {
        let ni = &session.info[x];
        let indent = "  ".repeat(*depth);
        let string: Vec<String> = session
            .td
            .string_of(x)
            .into_iter()
            .map(|r| r.to_string())
            .collect();
        let name = if string.is_empty() {
            "ψ".to_string()
        } else {
            format!("ψ·{}", string.join("·"))
        };
        if ni.is_leaf {
            println!(
                "{indent}{name}: leaf — |V(G_x)| = {}, bag = V(G_x) ({} vertices)",
                ni.gpx.len() + ni.inherited.len(),
                session.td.bags[x].len()
            );
        } else {
            println!(
                "{indent}{name}: |G'_x| = {:>3}, separator S'_x = {:?}, |B_x| = {}, children = {}",
                ni.gpx.len(),
                &ni.sep,
                session.td.bags[x].len(),
                session.td.children[x].len()
            );
        }
    }
    let stats = session.td.stats();
    println!(
        "\nwidth = {}, depth = {}, nodes = {} (Theorem 1: width O(τ² log n), depth O(log n))",
        stats.width, stats.depth, stats.nodes
    );
}
