//! The `update` bench: incremental label maintenance vs from-scratch
//! rebuild under live queries. Builds a maintained labeling + versioned
//! serving engine over a large partial k-tree, then applies single-edge
//! batches (a heavy insert deep in the decomposition, then its deletion)
//! while reader threads query the engine continuously — measuring the
//! incremental apply+publish wall against a full scratch rebuild of the
//! same mutated instance, and proving queries were served throughout (no
//! epoch gap). Writes `BENCH_update.json`.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin update              # n = 100_000
//! cargo run --release -p lowtw-bench --bin update -- 20000 2   # smaller
//! ```
//!
//! Positional arguments: `n` (default 100_000), `k` (default 2), `keep`
//! (default 0.5), `seed` (default 1) — the `serve` bench family, so the
//! scratch-side numbers line up with `BENCH_serve.json`.

use labelserve::{ServeConfig, VersionedEngine};
use lowtw::{distlabel, twgraph};
use lowtw_bench::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use twgraph::EdgeBatch;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, default: f64| -> f64 {
        args.get(i)
            .map(|s| s.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let n = arg(0, 100_000.0) as usize;
    let k = arg(1, 2.0) as usize;
    let keep = arg(2, 0.5);
    let seed = arg(3, 1.0) as u64;

    eprintln!("generating partial {k}-tree, n = {n}, keep = {keep}, seed = {seed} ...");
    let g = twgraph::gen::partial_ktree(n, k, keep, seed);
    let inst = twgraph::gen::with_random_weights(&g, 30, seed);
    let m = g.m();

    // Scratch build: the baseline every incremental apply competes with.
    let t = Instant::now();
    let mut dl =
        distlabel::DynamicLabeling::build(&inst, k as u64 + 1, seed).expect("initial build failed");
    let wall_build = t.elapsed();
    let serve_cfg = ServeConfig::default();
    let t = Instant::now();
    let eng = VersionedEngine::from_labeling(&dl, serve_cfg).expect("store build failed");
    let wall_store = t.elapsed();
    let part = &dl.parts()[0];
    eprintln!(
        "scratch build: width = {}, depth = {}, label {:.1?} + store {:.1?}",
        part.td().width(),
        part.td().stats().depth,
        wall_build,
        wall_store
    );

    // Pick an edit site deep in the decomposition: the deepest leaf with a
    // region pair that is NOT already adjacent. An edge between two of its
    // region vertices dirties only that subtree's labels — and because no
    // original edge joins the pair, deleting it restores the exact initial
    // instance (a delete removes every arc with those endpoints, so an
    // adjacent pair would sever original edges and force a split/rebuild).
    let adjacent = |u: u32, v: u32| {
        let inst = dl.inst();
        inst.out_arcs(u)
            .iter()
            .any(|&a| inst.arc(twgraph::ArcId(a)).dst == v)
            || inst
                .out_arcs(v)
                .iter()
                .any(|&a| inst.arc(twgraph::ArcId(a)).dst == u)
    };
    let depths = part.td().depths();
    let mut leaves: Vec<usize> = (0..part.info().len())
        .filter(|&x| part.info()[x].is_leaf && part.info()[x].gpx.len() >= 2)
        .collect();
    leaves.sort_unstable_by_key(|&x| std::cmp::Reverse(depths[x]));
    let (leaf, ga, gb) = leaves
        .iter()
        .find_map(|&x| {
            let gpx = &part.info()[x].gpx;
            (0..gpx.len()).find_map(|i| {
                (i + 1..gpx.len()).find_map(|j| {
                    let ga = part.old_of()[gpx[i] as usize];
                    let gb = part.old_of()[gpx[j] as usize];
                    (!adjacent(ga, gb)).then_some((x, ga, gb))
                })
            })
        })
        .expect("no leaf region with a non-adjacent vertex pair");
    eprintln!(
        "edit site: leaf node {leaf} at depth {}, global edge ({ga}, {gb})",
        depths[leaf]
    );

    // A weight far above any shortest path (n · wmax < 25_000 · scale)
    // cannot improve ancestor bag distances, so the scoped gate passes and
    // the rebuild stays confined to the dirty subtree.
    let heavy = 25_000u64.max(n as u64);
    let batches = [
        ("insert_heavy", EdgeBatch::new().insert(ga, gb, heavy)),
        ("delete_heavy", EdgeBatch::new().delete(ga, gb)),
        ("insert_heavy_2", EdgeBatch::new().insert(ga, gb, heavy + 1)),
        ("delete_heavy_2", EdgeBatch::new().delete(ga, gb)),
    ];

    // Readers hammer the engine for the whole incremental phase; every
    // query must answer (no epoch gap), and the epochs they observe span
    // the publishes happening under them.
    let stop = AtomicBool::new(false);
    let queries_during = AtomicU64::new(0);
    let epochs_seen = AtomicU64::new(0);
    let mut results = Vec::new();

    // Raised on every exit path — a panicking writer must still release
    // the readers or the scope join below waits on them forever.
    struct StopGuard<'a>(&'a AtomicBool);
    impl Drop for StopGuard<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }

    std::thread::scope(|scope| {
        for r in 0..4u64 {
            let eng = &eng;
            let stop = &stop;
            let queries_during = &queries_during;
            let epochs_seen = &epochs_seen;
            scope.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Acquire) {
                    let snap = eng.snapshot();
                    epochs_seen.fetch_max(snap.epoch(), Ordering::Relaxed);
                    let s = ((i * 2_654_435_761) % n as u64) as u32;
                    let t = ((i * 40_503 + 7) % n as u64) as u32;
                    snap.distance(s, t).expect("query failed mid-publish");
                    queries_during.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        let _stop_guard = StopGuard(&stop);
        for (name, batch) in &batches {
            let t = Instant::now();
            let rep = dl.apply(batch).expect("incremental apply failed");
            let wall_apply = t.elapsed();
            let t = Instant::now();
            let stats = eng.publish_from(&dl, &rep.dirty).expect("publish failed");
            let wall_publish = t.elapsed();
            eprintln!(
                "{name}: apply {:.1?} + publish {:.1?} (dirty {}, scoped {}, fallbacks {}, {}:{} shards dirty, {} pairs carried)",
                wall_apply,
                wall_publish,
                rep.dirty.len(),
                rep.parts_scoped,
                rep.fallbacks,
                stats.dirty_shards,
                stats.total_shards,
                stats.carried_pairs
            );
            results.push((name.to_string(), wall_apply, wall_publish, rep, stats));
        }
    });
    for (name, _, _, rep, _) in &results {
        assert_eq!(
            rep.fallbacks, 0,
            "{name}: heavy edge must take the scoped path"
        );
    }

    // Correctness spot-check on the final graph (heavy edge deleted, so it
    // must equal the original instance's distances).
    let truth = twgraph::alg::dijkstra(dl.inst(), ga);
    for t in [gb, 0, (n / 2) as u32, n as u32 - 1] {
        assert_eq!(
            eng.distance(ga, t).unwrap(),
            truth.dist[t as usize],
            "post-update serve diverged at ({ga}, {t})"
        );
    }

    // Scratch rebuild of the same final instance: what every batch would
    // have cost without incremental maintenance.
    let t = Instant::now();
    let scratch = distlabel::DynamicLabeling::build(dl.inst(), k as u64 + 1, seed ^ 0xBEEF)
        .expect("scratch rebuild failed");
    let scratch_store =
        VersionedEngine::from_labeling(&scratch, serve_cfg).expect("scratch store failed");
    let wall_scratch = t.elapsed();
    drop(scratch_store);

    let incr_us: Vec<u64> = results
        .iter()
        .map(|(_, a, p, _, _)| (a.as_micros() + p.as_micros()) as u64)
        .collect();
    let worst_incr = *incr_us.iter().max().unwrap();
    let scratch_us = wall_scratch.as_micros() as u64;
    // Clamp to the 1 µs floor: a sub-tick incremental apply must not
    // divide the committed JSON into `inf` (issue 7 rate satellite).
    let speedup = scratch_us as f64 / worst_incr.max(1) as f64;
    let served = queries_during.load(Ordering::Relaxed);
    eprintln!(
        "scratch rebuild {:.1?} vs worst incremental {} us → {:.1}x; {} queries served during rebuilds (max epoch {})",
        wall_scratch,
        fmt(worst_incr),
        speedup,
        fmt(served),
        epochs_seen.load(Ordering::Relaxed)
    );
    assert!(served > 0, "readers must have been served during rebuilds");

    let doc = serde_json::json!({
        "bench": "update",
        "family": "partial_ktree",
        "n": n,
        "m": m,
        "k": k,
        "keep": keep,
        "seed": seed,
        "width": dl.parts()[0].td().width(),
        "depth": dl.parts()[0].td().stats().depth,
        "scratch_us": serde_json::json!({
            "label_build": wall_build.as_micros() as u64,
            "store_build": wall_store.as_micros() as u64,
            "full_rebuild": scratch_us,
        }),
        "batches": results
            .iter()
            .map(|(name, a, p, rep, stats)| serde_json::json!({
                "name": name.as_str(),
                "apply_us": a.as_micros() as u64,
                "publish_us": p.as_micros() as u64,
                "dirty": rep.dirty.len(),
                "scoped_parts": rep.parts_scoped,
                "reused_parts": rep.parts_reused,
                "fallbacks": rep.fallbacks,
                "region_nodes": rep.region_nodes,
                "dirty_shards": stats.dirty_shards,
                "total_shards": stats.total_shards,
                "carried_pairs": stats.carried_pairs,
                "epoch": stats.epoch,
            }))
            .collect::<Vec<_>>(),
        "worst_incremental_us": worst_incr,
        "speedup_vs_scratch": speedup,
        "queries_during_rebuild": served,
        "max_epoch_observed_by_readers": epochs_seen.load(Ordering::Relaxed),
    });
    std::fs::write(
        "BENCH_update.json",
        serde_json::to_string(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_update.json");
    assert!(
        speedup >= 5.0,
        "incremental must beat scratch by 5x (got {speedup:.1}x)"
    );
}
