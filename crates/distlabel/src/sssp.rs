//! Single-source shortest paths from a distance labeling (paper §1.2):
//! the source broadcasts its Õ(τ²)-word label; every node decodes locally.

use crate::label::{decode, Label};
use congest_sim::{CongestError, Network};
use subgraph_ops::global::build_global_tree;
use subgraph_ops::{pa, Parts};
use twgraph::Dist;

/// Centralized SSSP: decode the source label against every vertex label.
pub fn sssp_centralized(labels: &[Label], src: u32) -> Vec<Dist> {
    labels
        .iter()
        .map(|lv| decode(&labels[src as usize], lv))
        .collect()
}

/// Distributed SSSP: ship `la(src)` to every node over the global BFS tree
/// (one part-wise broadcast; O(D + |label|) rounds, measured), then decode
/// locally. Returns the distances and the rounds charged.
pub fn sssp_distributed(
    net: &mut Network,
    labels: &[Label],
    src: u32,
) -> Result<(Vec<Dist>, u64), CongestError> {
    let n = net.n();
    assert_eq!(labels.len(), n);
    let start = net.metrics().rounds;
    let gtree = build_global_tree(net)?;
    let parts = Parts::from_labels(&vec![Some(0u32); n]);
    let roles = pa::steiner_roles(&gtree, &parts);
    let entries = labels[src as usize].entries.clone();
    let got = pa::broadcast(net, &roles, |v, _p| {
        if v == src {
            entries.iter().map(|&(s, to, from)| (s, to, from)).collect()
        } else {
            Vec::new()
        }
    })?;
    // Local decode at each node from the received label copy.
    let dists = (0..n)
        .map(|v| {
            let mut la_src = Label::new(src);
            for &(_, (s, to, from)) in &got[v] {
                la_src.merge(s, to, from);
            }
            decode(&la_src, &labels[v])
        })
        .collect();
    let rounds = net.metrics().rounds - start;
    net.snapshot("distlabel/query");
    Ok((dists, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_labels_centralized;
    use congest_sim::{Network, NetworkConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::alg::dijkstra;
    use twgraph::gen::{banded_path, with_random_weights};

    #[test]
    fn sssp_matches_dijkstra() {
        let g = banded_path(80, 3);
        let inst = with_random_weights(&g, 12, 4);
        let cfg = SepConfig::practical(80);
        let mut rng = SmallRng::seed_from_u64(2);
        let dec = decompose_centralized(&g, 4, &cfg, &mut rng).unwrap();
        let labels = build_labels_centralized(&inst, &dec.td, &dec.info);

        let truth = dijkstra(&inst, 17).dist;
        assert_eq!(sssp_centralized(&labels, 17), truth);

        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (dists, rounds) = sssp_distributed(&mut net, &labels, 17).unwrap();
        assert_eq!(dists, truth);
        assert!(rounds > 0);
        // Broadcast cost ≈ D + 3·|label| with Steiner overhead, well under
        // the Θ(n·D)-ish cost of n separate floods.
        let label_words = labels[17].words() as u64;
        assert!(
            rounds < 20 * (g.n() as u64 + label_words),
            "rounds = {rounds}"
        );
    }
}
