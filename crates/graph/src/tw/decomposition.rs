//! Rooted tree decompositions (paper §2.2) and their verifier.
//!
//! The paper identifies decomposition-tree vertices with strings over
//! `[0, n-1]` (the root being the empty string ψ, `x•i` the i-th child of
//! `x`). We store the equivalent rooted forest with integer node ids plus
//! parent/children links; [`TreeDecomposition::string_of`] recovers the
//! paper's string identifiers when a trace wants to print them.

use crate::ugraph::UGraph;

/// A rooted tree decomposition Φ = (T, {B_x}).
#[derive(Clone, Debug, Default)]
pub struct TreeDecomposition {
    /// Bag contents, sorted ascending. Indexed by tree-node id.
    pub bags: Vec<Vec<u32>>,
    /// Parent tree-node id; the root has `parent[x] == x`.
    pub parent: Vec<usize>,
    /// Children lists.
    pub children: Vec<Vec<usize>>,
    /// The root node id (the paper's ψ).
    pub root: usize,
}

/// Summary statistics used by the experiment tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeDecompositionStats {
    /// Number of tree nodes.
    pub nodes: usize,
    /// Width = max bag size − 1.
    pub width: usize,
    /// Depth of the rooted tree (root alone = 0).
    pub depth: usize,
    /// Sum of bag sizes (label-size driver in Theorem 2).
    pub total_bag_size: usize,
}

impl TreeDecomposition {
    /// A decomposition with a single bag containing every vertex (valid for
    /// any graph; width n−1).
    pub fn trivial(n: usize) -> Self {
        TreeDecomposition {
            bags: vec![(0..n as u32).collect()],
            parent: vec![0],
            children: vec![Vec::new()],
            root: 0,
        }
    }

    /// Allocate a new tree node with the given (will-be-sorted) bag under
    /// `parent` (pass `None` for the root). Returns its id.
    pub fn push_bag(&mut self, parent: Option<usize>, mut bag: Vec<u32>) -> usize {
        bag.sort_unstable();
        bag.dedup();
        let id = self.bags.len();
        self.bags.push(bag);
        self.children.push(Vec::new());
        match parent {
            Some(p) => {
                self.parent.push(p);
                self.children[p].push(id);
            }
            None => {
                self.parent.push(id);
                self.root = id;
            }
        }
        id
    }

    /// The same tree with every bag mapped through the vertex renaming
    /// `perm` (a permutation of the decomposed graph's vertices): a valid
    /// decomposition of [`UGraph::relabeled`]`(perm)` with identical tree
    /// structure, widths and depths.
    pub fn relabeled(&self, perm: &[u32]) -> TreeDecomposition {
        let map = |bag: &Vec<u32>| -> Vec<u32> {
            let mut b: Vec<u32> = bag.iter().map(|&v| perm[v as usize]).collect();
            b.sort_unstable();
            b
        };
        TreeDecomposition {
            bags: self.bags.iter().map(map).collect(),
            parent: self.parent.clone(),
            children: self.children.clone(),
            root: self.root,
        }
    }

    /// Width = max bag size − 1 (0 for an empty decomposition).
    pub fn width(&self) -> usize {
        self.bags.iter().map(|b| b.len()).max().unwrap_or(1) - 1
    }

    /// Depth per tree node (root = 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.bags.len()];
        // Parents precede children in `push_bag` construction order, but be
        // safe and iterate in BFS order from the root.
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            for &c in &self.children[x] {
                depth[c] = depth[x] + 1;
                stack.push(c);
            }
        }
        depth
    }

    /// Summary statistics.
    pub fn stats(&self) -> TreeDecompositionStats {
        TreeDecompositionStats {
            nodes: self.bags.len(),
            width: self.width(),
            depth: self.depths().into_iter().max().unwrap_or(0),
            total_bag_size: self.bags.iter().map(|b| b.len()).sum(),
        }
    }

    /// The paper's string identifier of tree node `x` (child ranks along the
    /// root path; ψ = empty).
    pub fn string_of(&self, x: usize) -> Vec<usize> {
        let mut rev = Vec::new();
        let mut cur = x;
        while self.parent[cur] != cur {
            let p = self.parent[cur];
            let rank = self.children[p].iter().position(|&c| c == cur).unwrap();
            rev.push(rank);
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// For every graph vertex `u`, the *canonical* tree node c*(u): the
    /// shallowest bag containing `u` (unique by condition (c); if the
    /// decomposition is invalid this returns an arbitrary shallowest one).
    pub fn canonical_node(&self, n_vertices: usize) -> Vec<usize> {
        let depth = self.depths();
        let mut canon = vec![usize::MAX; n_vertices];
        for (x, bag) in self.bags.iter().enumerate() {
            for &u in bag {
                let cur = canon[u as usize];
                if cur == usize::MAX || depth[x] < depth[cur] {
                    canon[u as usize] = x;
                }
            }
        }
        canon
    }

    /// Union of the bags on the root path of `x`, sorted — the paper's
    /// B↑ set when evaluated at `x = c*(u)` (§4.1).
    pub fn ancestor_bag_union(&self, x: usize) -> Vec<u32> {
        let mut acc = Vec::new();
        let mut cur = x;
        loop {
            acc.extend_from_slice(&self.bags[cur]);
            if self.parent[cur] == cur {
                break;
            }
            cur = self.parent[cur];
        }
        acc.sort_unstable();
        acc.dedup();
        acc
    }

    /// Verify the three conditions of §2.2 against `g`. Returns a
    /// human-readable description of the first violation, if any.
    pub fn verify(&self, g: &UGraph) -> Result<(), String> {
        if self.bags.is_empty() {
            return if g.n() == 0 {
                Ok(())
            } else {
                Err("decomposition has no bags but the graph has vertices".into())
            };
        }
        // Structural sanity of the tree itself.
        let mut seen_root = false;
        for x in 0..self.bags.len() {
            if self.parent[x] == x {
                if seen_root {
                    return Err("multiple roots".into());
                }
                if x != self.root {
                    return Err(format!("self-parented node {x} is not the declared root"));
                }
                seen_root = true;
            } else if !self.children[self.parent[x]].contains(&x) {
                return Err(format!("node {x} missing from its parent's child list"));
            }
        }
        if !seen_root {
            return Err("no root".into());
        }

        // (a) every vertex covered.
        let mut covered = vec![false; g.n()];
        for bag in &self.bags {
            for &u in bag {
                if u as usize >= g.n() {
                    return Err(format!("bag vertex {u} out of range"));
                }
                covered[u as usize] = true;
            }
        }
        if let Some(u) = covered.iter().position(|&c| !c) {
            return Err(format!("condition (a) violated: vertex {u} in no bag"));
        }

        // (b) every edge covered.
        'edge: for (u, v) in g.edges() {
            for bag in &self.bags {
                if bag.binary_search(&u).is_ok() && bag.binary_search(&v).is_ok() {
                    continue 'edge;
                }
            }
            return Err(format!("condition (b) violated: edge ({u},{v}) in no bag"));
        }

        // (c) bags containing each vertex form a connected subtree:
        // count, for each vertex u, the tree nodes containing u and the tree
        // edges with u on both endpoints' bags; connected iff
        // #edges == #nodes − 1 for every u (subforest is always acyclic).
        let mut node_count = vec![0u32; g.n()];
        let mut edge_count = vec![0u32; g.n()];
        for (x, bag) in self.bags.iter().enumerate() {
            for &u in bag {
                node_count[u as usize] += 1;
            }
            if self.parent[x] != x {
                let pbag = &self.bags[self.parent[x]];
                for &u in bag {
                    if pbag.binary_search(&u).is_ok() {
                        edge_count[u as usize] += 1;
                    }
                }
            }
        }
        for u in 0..g.n() {
            if node_count[u] > 0 && edge_count[u] != node_count[u] - 1 {
                return Err(format!(
                    "condition (c) violated: vertex {u} appears in {} bags with {} connecting tree edges",
                    node_count[u], edge_count[u]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGraph;

    fn path4() -> UGraph {
        UGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    fn path4_decomp() -> TreeDecomposition {
        let mut td = TreeDecomposition::default();
        let r = td.push_bag(None, vec![1, 2]);
        td.push_bag(Some(r), vec![0, 1]);
        td.push_bag(Some(r), vec![2, 3]);
        td
    }

    #[test]
    fn valid_path_decomposition() {
        let td = path4_decomp();
        assert!(td.verify(&path4()).is_ok());
        assert_eq!(td.width(), 1);
        assert_eq!(td.stats().depth, 1);
    }

    #[test]
    fn trivial_is_valid() {
        let g = path4();
        let td = TreeDecomposition::trivial(4);
        assert!(td.verify(&g).is_ok());
        assert_eq!(td.width(), 3);
    }

    #[test]
    fn detects_missing_vertex() {
        let mut td = TreeDecomposition::default();
        td.push_bag(None, vec![0, 1]);
        td.push_bag(Some(0), vec![1, 2]);
        let err = td.verify(&path4()).unwrap_err();
        assert!(err.contains("condition (a)"), "{err}");
    }

    #[test]
    fn detects_missing_edge() {
        let mut td = TreeDecomposition::default();
        let r = td.push_bag(None, vec![0, 1]);
        td.push_bag(Some(r), vec![1, 2]);
        td.push_bag(Some(r), vec![3]);
        let err = td.verify(&path4()).unwrap_err();
        assert!(err.contains("condition (b)"), "{err}");
    }

    #[test]
    fn detects_disconnected_occurrences() {
        let mut td = TreeDecomposition::default();
        // Vertex 1 appears in two bags that are not adjacent in T.
        let r = td.push_bag(None, vec![0, 1]);
        let c = td.push_bag(Some(r), vec![0, 2]);
        td.push_bag(Some(c), vec![1, 2, 3]);
        let err = td.verify(&path4()).unwrap_err();
        assert!(err.contains("condition (c)"), "{err}");
    }

    #[test]
    fn canonical_nodes_and_strings() {
        let td = path4_decomp();
        let canon = td.canonical_node(4);
        assert_eq!(canon[1], 0); // vertex 1 appears at the root first
        assert_eq!(canon[0], 1);
        assert_eq!(canon[3], 2);
        assert_eq!(td.string_of(0), Vec::<usize>::new());
        assert_eq!(td.string_of(1), vec![0]);
        assert_eq!(td.string_of(2), vec![1]);
    }

    #[test]
    fn ancestor_union() {
        let td = path4_decomp();
        assert_eq!(td.ancestor_bag_union(1), vec![0, 1, 2]);
        assert_eq!(td.ancestor_bag_union(0), vec![1, 2]);
    }
}
