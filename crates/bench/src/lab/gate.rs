//! The regression gate: diff a candidate lab run against a committed
//! baseline report.
//!
//! Semantics (documented for users in `docs/EXPERIMENTS.md`):
//!
//! * **Deterministic metrics** (`det`) must be bit-identical. Any drift,
//!   missing row, extra row, or changed key set is a hard failure — the
//!   paper's charged quantities are exactly reproducible, so an exact
//!   gate is both possible and the whole point.
//! * **Wall clocks** (`wall_us`) fail when the candidate exceeds the
//!   baseline by strictly more than `wall_tolerance` (default 20% — a
//!   candidate at exactly +20% passes), and only when the *baseline* is at
//!   or above `wall_floor_us` (default 50 ms): relative noise on short
//!   spans is unbounded, so sub-floor baselines carry no gating signal.
//! * **Cross-host runs** (`baseline.host != candidate.host`) downgrade
//!   wall findings to warnings; `det` stays enforced. Committed baselines
//!   are generated wherever `--bless` ran, while CI executes elsewhere —
//!   charged metrics transfer exactly, wall clocks do not.
//! * **Profile or schema mismatch** refuses to compare at all, with a
//!   typed error instead of a confusing diff.
//! * `info` metrics are never compared.

use crate::lab::results::{BaselineError, LabReport, TrialRow};
use std::fmt;

/// Gate thresholds.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Relative wall-clock headroom; fail strictly above it.
    pub wall_tolerance: f64,
    /// Ignore wall comparisons whose baseline sits under this floor.
    pub wall_floor_us: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            wall_tolerance: 0.20,
            wall_floor_us: 50_000,
        }
    }
}

impl GateConfig {
    /// The default config with a validated wall tolerance: the fraction
    /// must be finite and non-negative (`0.0` means "any slowdown fails",
    /// which is legitimate on a quiet dedicated host).
    pub fn with_wall_tolerance(t: f64) -> Result<GateConfig, GateError> {
        if !t.is_finite() || t < 0.0 {
            return Err(GateError::InvalidTolerance { value: t });
        }
        Ok(GateConfig {
            wall_tolerance: t,
            ..GateConfig::default()
        })
    }
}

/// Why the gate refused to run the comparison at all.
#[derive(Debug, PartialEq)]
pub enum GateError {
    /// Baseline and candidate were produced under different profiles.
    ProfileMismatch { baseline: String, candidate: String },
    /// The baseline could not be loaded (schema mismatch, malformed, IO).
    Baseline(BaselineError),
    /// The wall tolerance is not a usable fraction (NaN, ±∞, or negative).
    InvalidTolerance { value: f64 },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::ProfileMismatch {
                baseline,
                candidate,
            } => write!(
                f,
                "profile mismatch: baseline ran profile {baseline:?}, candidate ran {candidate:?}; \
                 rerun with the matching --profile"
            ),
            GateError::Baseline(e) => write!(f, "{e}"),
            GateError::InvalidTolerance { value } => write!(
                f,
                "wall tolerance must be a finite non-negative fraction, got {value}"
            ),
        }
    }
}

impl std::error::Error for GateError {}

impl From<BaselineError> for GateError {
    fn from(e: BaselineError) -> Self {
        GateError::Baseline(e)
    }
}

/// One comparison discrepancy.
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// A deterministic metric changed value.
    DetDrift {
        id: String,
        key: String,
        baseline: u64,
        candidate: u64,
    },
    /// A baseline row has no candidate counterpart.
    MissingRow { id: String },
    /// A candidate row has no baseline counterpart.
    ExtraRow { id: String },
    /// A baseline det key disappeared from the candidate row.
    DetKeyMissing { id: String, key: String },
    /// A candidate det key the baseline row does not have.
    DetKeyExtra { id: String, key: String },
    /// A wall clock regressed beyond the tolerance.
    WallRegression {
        id: String,
        key: String,
        baseline_us: u64,
        candidate_us: u64,
        ratio: f64,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::DetDrift {
                id,
                key,
                baseline,
                candidate,
            } => write!(
                f,
                "{id}: deterministic metric `{key}` drifted: {baseline} -> {candidate}"
            ),
            Finding::MissingRow { id } => write!(f, "{id}: row missing from the candidate run"),
            Finding::ExtraRow { id } => write!(f, "{id}: row not present in the baseline"),
            Finding::DetKeyMissing { id, key } => {
                write!(
                    f,
                    "{id}: deterministic metric `{key}` missing from candidate"
                )
            }
            Finding::DetKeyExtra { id, key } => {
                write!(f, "{id}: new deterministic metric `{key}` not in baseline")
            }
            Finding::WallRegression {
                id,
                key,
                baseline_us,
                candidate_us,
                ratio,
            } => write!(
                f,
                "{id}: wall `{key}` regressed {ratio:.2}x ({baseline_us} us -> {candidate_us} us)"
            ),
        }
    }
}

/// The gate verdict: failures block, warnings inform.
#[derive(Debug, Default)]
pub struct GateOutcome {
    pub failures: Vec<Finding>,
    pub warnings: Vec<Finding>,
    /// Rows present on both sides.
    pub rows_compared: usize,
    /// Det key pairs compared exactly.
    pub det_compared: usize,
    /// Wall key pairs compared against the tolerance.
    pub wall_compared: usize,
}

impl GateOutcome {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Merge another experiment's outcome into this aggregate.
    pub fn absorb(&mut self, other: GateOutcome) {
        self.failures.extend(other.failures);
        self.warnings.extend(other.warnings);
        self.rows_compared += other.rows_compared;
        self.det_compared += other.det_compared;
        self.wall_compared += other.wall_compared;
    }
}

/// Diff `candidate` against `baseline` under `cfg`.
pub fn gate(
    baseline: &LabReport,
    candidate: &LabReport,
    cfg: &GateConfig,
) -> Result<GateOutcome, GateError> {
    // A NaN tolerance would make every ratio comparison silently false
    // (never regressing); refuse with a typed error instead.
    if !cfg.wall_tolerance.is_finite() || cfg.wall_tolerance < 0.0 {
        return Err(GateError::InvalidTolerance {
            value: cfg.wall_tolerance,
        });
    }
    if baseline.profile != candidate.profile {
        return Err(GateError::ProfileMismatch {
            baseline: baseline.profile.clone(),
            candidate: candidate.profile.clone(),
        });
    }
    let same_host = baseline.host == candidate.host;
    let mut out = GateOutcome::default();

    for brow in &baseline.rows {
        let Some(crow) = candidate.rows.iter().find(|r| r.id == brow.id) else {
            out.failures.push(Finding::MissingRow {
                id: brow.id.clone(),
            });
            continue;
        };
        out.rows_compared += 1;
        compare_det(brow, crow, &mut out);
        compare_wall(brow, crow, cfg, same_host, &mut out);
    }
    for crow in &candidate.rows {
        if !baseline.rows.iter().any(|r| r.id == crow.id) {
            out.failures.push(Finding::ExtraRow {
                id: crow.id.clone(),
            });
        }
    }
    Ok(out)
}

fn compare_det(brow: &TrialRow, crow: &TrialRow, out: &mut GateOutcome) {
    for (key, bval) in &brow.det {
        match crow.det_get(key) {
            Some(cval) => {
                out.det_compared += 1;
                if cval != *bval {
                    out.failures.push(Finding::DetDrift {
                        id: brow.id.clone(),
                        key: key.clone(),
                        baseline: *bval,
                        candidate: cval,
                    });
                }
            }
            None => out.failures.push(Finding::DetKeyMissing {
                id: brow.id.clone(),
                key: key.clone(),
            }),
        }
    }
    for (key, _) in &crow.det {
        if brow.det_get(key).is_none() {
            out.failures.push(Finding::DetKeyExtra {
                id: crow.id.clone(),
                key: key.clone(),
            });
        }
    }
}

fn compare_wall(
    brow: &TrialRow,
    crow: &TrialRow,
    cfg: &GateConfig,
    same_host: bool,
    out: &mut GateOutcome,
) {
    for (key, bval) in &brow.wall_us {
        let Some(cval) = crow.wall_get(key) else {
            // Wall keys are advisory; a disappeared span is only a warning.
            out.warnings.push(Finding::DetKeyMissing {
                id: brow.id.clone(),
                key: format!("wall:{key}"),
            });
            continue;
        };
        out.wall_compared += 1;
        if *bval < cfg.wall_floor_us {
            continue;
        }
        let ratio = cval as f64 / (*bval).max(1) as f64;
        // Strictly above tolerance: a candidate at exactly +20% passes.
        if ratio > 1.0 + cfg.wall_tolerance {
            let finding = Finding::WallRegression {
                id: brow.id.clone(),
                key: key.clone(),
                baseline_us: *bval,
                candidate_us: cval,
                ratio,
            };
            if same_host {
                out.failures.push(finding);
            } else {
                out.warnings.push(finding);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::results::SCHEMA_VERSION;

    fn row(id: &str, det: &[(&str, u64)], wall: &[(&str, u64)]) -> TrialRow {
        TrialRow {
            id: id.to_string(),
            experiment: "e".into(),
            scenario: "-".into(),
            pipeline: "-".into(),
            variant: "-".into(),
            rep: 0,
            det: det.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            wall_us: wall.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            info: Vec::new(),
        }
    }

    fn report(host: &str, rows: Vec<TrialRow>) -> LabReport {
        LabReport {
            schema_version: SCHEMA_VERSION,
            host: host.into(),
            profile: "quick".into(),
            rows,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let b = report(
            "h",
            vec![row("e/-/-/-#0", &[("rounds", 7)], &[("t", 100_000)])],
        );
        let out = gate(&b, &b.clone(), &GateConfig::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.rows_compared, 1);
        assert_eq!(out.det_compared, 1);
        assert_eq!(out.wall_compared, 1);
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn det_drift_fails_hard() {
        // The acceptance-criteria test: an injected charged-metric drift
        // must fail the build even when every wall clock improved.
        let b = report(
            "h",
            vec![row(
                "e/-/-/-#0",
                &[("charged_rounds", 100), ("congestion", 8)],
                &[("t", 1_000_000)],
            )],
        );
        let c = report(
            "h",
            vec![row(
                "e/-/-/-#0",
                &[("charged_rounds", 101), ("congestion", 8)],
                &[("t", 100_000)],
            )],
        );
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert!(!out.passed());
        assert_eq!(
            out.failures,
            vec![Finding::DetDrift {
                id: "e/-/-/-#0".into(),
                key: "charged_rounds".into(),
                baseline: 100,
                candidate: 101,
            }]
        );
    }

    #[test]
    fn wall_boundary_is_strictly_above_20_percent() {
        let b = report("h", vec![row("e/-/-/-#0", &[], &[("t", 1_000_000)])]);
        // Exactly +20%: passes.
        let c = report("h", vec![row("e/-/-/-#0", &[], &[("t", 1_200_000)])]);
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert!(out.passed(), "exactly-20% must pass: {:?}", out.failures);
        // One microsecond above: fails.
        let c = report("h", vec![row("e/-/-/-#0", &[], &[("t", 1_200_001)])]);
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert!(!out.passed());
        assert!(matches!(
            out.failures[0],
            Finding::WallRegression {
                candidate_us: 1_200_001,
                ..
            }
        ));
        // Improvements never fail.
        let c = report("h", vec![row("e/-/-/-#0", &[], &[("t", 10)])]);
        assert!(gate(&b, &c, &GateConfig::default()).unwrap().passed());
    }

    #[test]
    fn sub_floor_walls_are_ignored() {
        let b = report("h", vec![row("e/-/-/-#0", &[], &[("t", 1_000)])]);
        // 60x slower, but a 1 ms baseline carries no gating signal.
        let c = report("h", vec![row("e/-/-/-#0", &[], &[("t", 60_000)])]);
        assert!(gate(&b, &c, &GateConfig::default()).unwrap().passed());
        // A baseline at the floor gates normally.
        let b = report("h", vec![row("e/-/-/-#0", &[], &[("t", 50_000)])]);
        let c = report("h", vec![row("e/-/-/-#0", &[], &[("t", 61_000)])]);
        assert!(!gate(&b, &c, &GateConfig::default()).unwrap().passed());
    }

    #[test]
    fn cross_host_downgrades_wall_but_not_det() {
        let b = report(
            "alpha",
            vec![row("e/-/-/-#0", &[("rounds", 5)], &[("t", 1_000_000)])],
        );
        let c = report(
            "beta",
            vec![row("e/-/-/-#0", &[("rounds", 5)], &[("t", 9_000_000)])],
        );
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.warnings.len(), 1);

        let c = report(
            "beta",
            vec![row("e/-/-/-#0", &[("rounds", 6)], &[("t", 1_000_000)])],
        );
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert!(!out.passed(), "det drift must fail even cross-host");
    }

    #[test]
    fn missing_and_extra_rows_fail() {
        let b = report(
            "h",
            vec![
                row("e/-/-/a#0", &[("rounds", 1)], &[]),
                row("e/-/-/b#0", &[("rounds", 2)], &[]),
            ],
        );
        let c = report(
            "h",
            vec![
                row("e/-/-/a#0", &[("rounds", 1)], &[]),
                row("e/-/-/c#0", &[("rounds", 3)], &[]),
            ],
        );
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert_eq!(out.failures.len(), 2);
        assert!(out
            .failures
            .iter()
            .any(|f| matches!(f, Finding::MissingRow { id } if id == "e/-/-/b#0")));
        assert!(out
            .failures
            .iter()
            .any(|f| matches!(f, Finding::ExtraRow { id } if id == "e/-/-/c#0")));
    }

    #[test]
    fn det_key_set_changes_fail() {
        let b = report(
            "h",
            vec![row("e/-/-/-#0", &[("rounds", 1), ("words", 2)], &[])],
        );
        let c = report(
            "h",
            vec![row("e/-/-/-#0", &[("rounds", 1), ("msgs", 2)], &[])],
        );
        let out = gate(&b, &c, &GateConfig::default()).unwrap();
        assert_eq!(out.failures.len(), 2);
        assert!(out
            .failures
            .iter()
            .any(|f| matches!(f, Finding::DetKeyMissing { key, .. } if key == "words")));
        assert!(out
            .failures
            .iter()
            .any(|f| matches!(f, Finding::DetKeyExtra { key, .. } if key == "msgs")));
    }

    #[test]
    fn invalid_tolerances_are_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.2] {
            match GateConfig::with_wall_tolerance(bad) {
                Err(GateError::InvalidTolerance { value }) => {
                    assert!(value.is_nan() == bad.is_nan() && (value.is_nan() || value == bad))
                }
                other => panic!("tolerance {bad} must be rejected, got {other:?}"),
            }
            // The gate itself refuses a hand-built config too: a NaN
            // would silently disable every wall comparison.
            let cfg = GateConfig {
                wall_tolerance: bad,
                ..GateConfig::default()
            };
            let b = report("h", vec![]);
            assert!(matches!(
                gate(&b, &b.clone(), &cfg),
                Err(GateError::InvalidTolerance { .. })
            ));
        }
        // Zero is legitimate: any same-host slowdown fails.
        let cfg = GateConfig::with_wall_tolerance(0.0).unwrap();
        let b = report("h", vec![row("e/-/-/-#0", &[], &[("t", 1_000_000)])]);
        let c = report("h", vec![row("e/-/-/-#0", &[], &[("t", 1_000_001)])]);
        assert!(!gate(&b, &c, &cfg).unwrap().passed());
    }

    #[test]
    fn profile_mismatch_refuses_to_compare() {
        let b = report("h", vec![]);
        let mut c = report("h", vec![]);
        c.profile = "full".into();
        match gate(&b, &c, &GateConfig::default()) {
            Err(GateError::ProfileMismatch {
                baseline,
                candidate,
            }) => {
                assert_eq!(baseline, "quick");
                assert_eq!(candidate, "full");
            }
            other => panic!("expected ProfileMismatch, got {other:?}"),
        }
    }
}
