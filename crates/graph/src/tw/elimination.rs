//! Elimination-order machinery: width upper bounds via greedy heuristics and
//! a degeneracy lower bound.
//!
//! Greedy elimination (min-degree / min-fill) gives a *valid* tree
//! decomposition whose width upper-bounds the treewidth; the experiments use
//! it as the "near-optimal centralized reference" the paper's O(τ² log n)
//! widths are compared against. Degeneracy lower-bounds treewidth, which
//! pins the generated families' τ from below.

use super::decomposition::TreeDecomposition;
use crate::ugraph::UGraph;
use std::collections::BTreeSet;

/// Working copy of a graph supporting vertex elimination with fill-in.
struct FillGraph {
    adj: Vec<BTreeSet<u32>>,
    alive: Vec<bool>,
}

impl FillGraph {
    fn new(g: &UGraph) -> Self {
        FillGraph {
            adj: g
                .vertices()
                .map(|v| g.neighbors(v).iter().copied().collect())
                .collect(),
            alive: vec![true; g.n()],
        }
    }

    fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Number of fill edges eliminating `v` would create.
    fn fill_cost(&self, v: u32) -> usize {
        let nb: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        let mut missing = 0;
        for i in 0..nb.len() {
            for j in i + 1..nb.len() {
                if !self.adj[nb[i] as usize].contains(&nb[j]) {
                    missing += 1;
                }
            }
        }
        missing
    }

    /// Eliminate `v`: make its neighbourhood a clique, remove `v`.
    /// Returns the neighbourhood at elimination time (the bag minus `v`).
    fn eliminate(&mut self, v: u32) -> Vec<u32> {
        let nb: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        for i in 0..nb.len() {
            for j in i + 1..nb.len() {
                self.adj[nb[i] as usize].insert(nb[j]);
                self.adj[nb[j] as usize].insert(nb[i]);
            }
        }
        for &u in &nb {
            self.adj[u as usize].remove(&v);
        }
        self.adj[v as usize].clear();
        self.alive[v as usize] = false;
        nb
    }
}

/// Greedy minimum-degree elimination order.
pub fn min_degree_order(g: &UGraph) -> Vec<u32> {
    let mut fg = FillGraph::new(g);
    let mut order = Vec::with_capacity(g.n());
    for _ in 0..g.n() {
        let v = (0..g.n() as u32)
            .filter(|&v| fg.alive[v as usize])
            .min_by_key(|&v| (fg.degree(v), v))
            .unwrap();
        fg.eliminate(v);
        order.push(v);
    }
    order
}

/// Greedy minimum-fill elimination order (slower, usually tighter width).
pub fn min_fill_order(g: &UGraph) -> Vec<u32> {
    let mut fg = FillGraph::new(g);
    let mut order = Vec::with_capacity(g.n());
    for _ in 0..g.n() {
        let v = (0..g.n() as u32)
            .filter(|&v| fg.alive[v as usize])
            .min_by_key(|&v| (fg.fill_cost(v), fg.degree(v), v))
            .unwrap();
        fg.eliminate(v);
        order.push(v);
    }
    order
}

/// Width induced by an elimination order = max bag size − 1 along the order.
pub fn elimination_width(g: &UGraph, order: &[u32]) -> usize {
    let mut fg = FillGraph::new(g);
    let mut width = 0usize;
    for &v in order {
        width = width.max(fg.degree(v));
        fg.eliminate(v);
    }
    width
}

/// Degeneracy of `g` — a lower bound on treewidth (repeatedly remove a
/// minimum-degree vertex; the max degree seen is the degeneracy).
pub fn degeneracy(g: &UGraph) -> usize {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut degen = 0usize;
    // Simple O(n²)-ish loop; fine at experiment scale and obviously correct.
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| deg[v])
            .unwrap();
        degen = degen.max(deg[v]);
        removed[v] = true;
        for &u in g.neighbors(v as u32) {
            if !removed[u as usize] {
                deg[u as usize] -= 1;
            }
        }
    }
    degen
}

/// Build the standard tree decomposition induced by an elimination order:
/// the bag of `v` is `{v} ∪ N_later(v)` in the fill graph; `v`'s tree parent
/// is the bag of the earliest-eliminated vertex of `N_later(v)`.
pub fn treedec_from_elimination(g: &UGraph, order: &[u32]) -> TreeDecomposition {
    assert_eq!(order.len(), g.n());
    let n = g.n();
    if n == 0 {
        return TreeDecomposition::default();
    }
    let mut fg = FillGraph::new(g);
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    // bag_of[v] = {v} ∪ neighbourhood at elimination time.
    let mut raw_bags: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &v in order {
        let mut bag = fg.eliminate(v);
        bag.push(v);
        bag.sort_unstable();
        raw_bags[v as usize] = bag;
    }
    // Tree structure: parent(v) = argmin position among later neighbours.
    // Build nodes in *reverse* elimination order so parents exist first.
    let mut td = TreeDecomposition::default();
    let mut node_of = vec![usize::MAX; n];
    for &v in order.iter().rev() {
        let later_min = raw_bags[v as usize]
            .iter()
            .copied()
            .filter(|&u| u != v)
            .min_by_key(|&u| pos[u as usize]);
        let parent = later_min.map(|u| node_of[u as usize]);
        // A vertex in another component of the fill graph can have no later
        // neighbour; attach it under the root to keep T a tree (its bag is a
        // singleton, so conditions (b)/(c) are unaffected).
        let parent = match parent {
            Some(p) => Some(p),
            None if td.bags.is_empty() => None,
            None => Some(td.root),
        };
        node_of[v as usize] = td.push_bag(parent, raw_bags[v as usize].clone());
    }
    td
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGraph;

    fn cycle(n: usize) -> UGraph {
        UGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
    }

    #[test]
    fn tree_has_width_1() {
        let g = UGraph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]);
        let order = min_degree_order(&g);
        assert_eq!(elimination_width(&g, &order), 1);
        let td = treedec_from_elimination(&g, &order);
        assert!(td.verify(&g).is_ok());
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn cycle_has_width_2() {
        let g = cycle(8);
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            assert_eq!(elimination_width(&g, &order), 2);
            let td = treedec_from_elimination(&g, &order);
            assert!(td.verify(&g).is_ok());
            assert_eq!(td.width(), 2);
        }
    }

    #[test]
    fn clique_width_n_minus_1() {
        let n = 6u32;
        let g = UGraph::from_edges(
            n as usize,
            (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))),
        );
        let order = min_degree_order(&g);
        assert_eq!(elimination_width(&g, &order), 5);
        assert_eq!(degeneracy(&g), 5);
    }

    #[test]
    fn degeneracy_lower_bounds_heuristic_width() {
        let g = cycle(10);
        assert!(degeneracy(&g) <= elimination_width(&g, &min_degree_order(&g)));
    }

    #[test]
    fn disconnected_graph_decomposes() {
        let g = UGraph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let order = min_degree_order(&g);
        let td = treedec_from_elimination(&g, &order);
        assert!(td.verify(&g).is_ok());
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn grid_width_bounded() {
        // 4x4 grid: treewidth 4; heuristics should land in [4, 6].
        let rows = 4u32;
        let cols = 4u32;
        let idx = |r: u32, c: u32| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = UGraph::from_edges((rows * cols) as usize, edges);
        let w = elimination_width(&g, &min_fill_order(&g));
        assert!((4..=6).contains(&w), "width {w}");
        let td = treedec_from_elimination(&g, &min_fill_order(&g));
        assert!(td.verify(&g).is_ok());
    }
}
