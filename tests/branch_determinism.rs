//! Locks for the copy-free recursion rebuild.
//!
//! 1. **Schedule equivalence** (proptest): the distributed decomposition's
//!    sibling-branch scheduling (`BranchSchedule::Parallel` vs
//!    `Sequential`) must be observably identical — same tree, same
//!    recursion records, same charged metrics — on every scenario-registry
//!    family. The parallel path only fans out charge-free local work; this
//!    suite keeps it that way.
//! 2. **Repeated-run bit-identity**: two executions in the same process
//!    (fresh hasher state per `HashMap`) must agree bit for bit — the
//!    guard behind the duplicate-key determinism sweep (stable sorts /
//!    full tiebreak keys everywhere order can leak from hash iteration).
//! 3. **Cross-component decode regression**: in the global vertex-id
//!    space, labels of different components share no targets, so
//!    `distlabel::decode` must return the infinite distance for every
//!    cross-component pair of a `multi_component` scenario.

use congest_sim::{Metrics, Network, NetworkConfig};
use lowtw::{distlabel, treedec, twgraph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scenarios::{corpus, split_components};
use treedec::{BranchSchedule, DistDecompOutcome};
use twgraph::{UGraph, INF};

/// Decompose one connected graph under the given schedule.
fn decompose_with(
    g: &UGraph,
    t0: u64,
    seed: u64,
    schedule: BranchSchedule,
) -> (DistDecompOutcome, Metrics) {
    let mut cfg = treedec::SepConfig::practical(g.n());
    cfg.branch_schedule = schedule;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let out =
        treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng).expect("decomposition failed");
    (out, *net.metrics())
}

fn assert_outcomes_identical(a: &DistDecompOutcome, b: &DistDecompOutcome, ctx: &str) {
    assert_eq!(a.td.bags, b.td.bags, "{ctx}: bags diverged");
    assert_eq!(a.td.children, b.td.children, "{ctx}: tree shape diverged");
    assert_eq!(a.t_used, b.t_used, "{ctx}: t diverged");
    assert_eq!(a.rounds, b.rounds, "{ctx}: rounds diverged");
    assert_eq!(
        a.backbone_rounds, b.backbone_rounds,
        "{ctx}: backbone diverged"
    );
    assert_eq!(a.info.len(), b.info.len(), "{ctx}: record count diverged");
    for (x, (ia, ib)) in a.info.iter().zip(b.info.iter()).enumerate() {
        assert_eq!(ia.gpx, ib.gpx, "{ctx}: node {x} G'_x diverged");
        assert_eq!(
            ia.inherited, ib.inherited,
            "{ctx}: node {x} boundary diverged"
        );
        assert_eq!(ia.sep, ib.sep, "{ctx}: node {x} separator diverged");
        assert_eq!(ia.is_leaf, ib.is_leaf, "{ctx}: node {x} leaf flag diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Every scenario-registry family, every component: parallel and
    /// sequential branch schedules produce identical decompositions and
    /// identical charged metrics.
    #[test]
    fn branch_schedules_agree(seed in 0u64..500) {
        for sc in corpus() {
            let mut sc = sc;
            sc.seed = sc.seed.wrapping_add(seed);
            let g = sc.graph();
            let inst = sc.instance();
            for (ci, part) in split_components(&g, &inst).iter().enumerate() {
                if part.graph.n() <= 1 {
                    continue;
                }
                let ctx = format!("{}#c{ci}", sc.name);
                let (par, m_par) =
                    decompose_with(&part.graph, sc.t0, sc.seed, BranchSchedule::Parallel);
                let (seq, m_seq) =
                    decompose_with(&part.graph, sc.t0, sc.seed, BranchSchedule::Sequential);
                assert_outcomes_identical(&par, &seq, &ctx);
                assert_eq!(m_par, m_seq, "{ctx}: charged metrics diverged");
            }
        }
    }
}

/// Two runs in one process (distinct hasher states for every `HashMap`)
/// must agree bit for bit: decomposition output AND charged metrics.
#[test]
fn repeated_runs_bit_identical() {
    // ktree exercises the split/CCD paths; the denser partial k-tree at a
    // small t0 also drives the sampled-pair MVC fallback where hash-order
    // message ties are possible.
    let graphs = [
        twgraph::gen::ktree(150, 3, 4),
        twgraph::gen::partial_ktree(160, 3, 0.9, 7),
        twgraph::gen::grid(9, 9),
    ];
    for (gi, g) in graphs.iter().enumerate() {
        let (a, ma) = decompose_with(g, 2, 11, BranchSchedule::Parallel);
        let (b, mb) = decompose_with(g, 2, 11, BranchSchedule::Parallel);
        assert_outcomes_identical(&a, &b, &format!("graph {gi}"));
        assert_eq!(ma, mb, "graph {gi}: metrics diverged across repeated runs");
    }
}

/// Cross-component pairs decode to the infinite distance once labels live
/// in the global vertex-id space; within components the decode stays exact.
#[test]
fn multi_component_cross_pairs_decode_infinite() {
    let sc = corpus()
        .into_iter()
        .find(|sc| sc.name.starts_with("multi_component"))
        .expect("multi_component scenario registered");
    let g = sc.graph();
    let inst = sc.instance();
    let parts = split_components(&g, &inst);
    assert!(parts.len() >= 2, "scenario must be disconnected");

    // Per-component distributed labels, remapped into global vertex ids
    // (what a deployment stores at each node).
    let mut global_labels: Vec<distlabel::Label> =
        (0..g.n() as u32).map(distlabel::Label::new).collect();
    let mut comp_of = vec![usize::MAX; g.n()];
    for (ci, part) in parts.iter().enumerate() {
        for &v in &part.old_of {
            comp_of[v as usize] = ci;
        }
        if part.graph.n() == 1 {
            // Singleton: its label carries only itself at distance zero.
            let v = part.old_of[0];
            global_labels[v as usize].merge(v, 0, 0);
            continue;
        }
        let mut net = Network::new(part.graph.clone(), NetworkConfig::default());
        let cfg = treedec::SepConfig::practical(part.graph.n());
        let mut rng = SmallRng::seed_from_u64(sc.seed);
        let out = treedec::decompose_distributed(&mut net, sc.t0, &cfg, &mut rng).unwrap();
        let (labels, _) =
            distlabel::build_labels_distributed(&mut net, &part.inst, &out.td, &out.info).unwrap();
        for (local, la) in labels.iter().enumerate() {
            let owner = part.old_of[local];
            let gl = &mut global_labels[owner as usize];
            for &(target, to, from) in &la.entries {
                gl.merge(part.old_of[target as usize], to, from);
            }
        }
    }

    let mut cross_checked = 0usize;
    let mut within_checked = 0usize;
    for u in 0..g.n() {
        let oracle = lowtw::baselines::sssp_oracle(&inst, u as u32);
        for v in 0..g.n() {
            let got = distlabel::decode(&global_labels[u], &global_labels[v]);
            if comp_of[u] != comp_of[v] {
                assert_eq!(
                    got, INF,
                    "cross-component pair ({u}, {v}) decoded a finite distance"
                );
                cross_checked += 1;
            } else {
                assert_eq!(got, oracle[v], "within-component pair ({u}, {v}) diverged");
                within_checked += 1;
            }
        }
    }
    assert!(cross_checked > 0 && within_checked > 0);
}
