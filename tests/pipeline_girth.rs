//! End-to-end girth pipeline (Theorem 5): directed and undirected,
//! including the girth/diameter separation family (§1.2).

use lowtw::prelude::*;
use lowtw::{baselines, girth, twgraph};

#[test]
fn undirected_girth_on_weighted_families() {
    for (seed, n, k) in [(1u64, 28usize, 2usize), (2, 36, 3)] {
        let g = twgraph::gen::partial_ktree(n, k, 0.8, seed);
        let inst = twgraph::gen::with_random_weights(&g, 7, seed);
        let want = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, k as u64 + 1, seed).unwrap();
        let got = session.girth_undirected(&inst, seed + 50).unwrap();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn directed_girth_matches_oracle() {
    let g = twgraph::gen::banded_path(60, 3);
    let inst = twgraph::gen::random_orientation(&g, 11, 0.6, 8);
    let session = Session::decompose(&g, 4, 8).unwrap();
    let got = session.girth_directed(&inst);
    assert_eq!(got, baselines::girth_directed_centralized(&inst));
}

#[test]
fn girth_diameter_separation_family() {
    // The bit-gadget family: constant diameter, log treewidth. Diameter
    // computation (pipelined APSP) is forced to Ω(n) rounds; the girth
    // pipeline's per-trial cost is measured for the E8 table. At laptop
    // scale the polylog-vs-n gap is about constants, so here we verify
    // correctness and that both costs are recorded; the bench harness
    // sweeps n to exhibit the trend.
    let g = twgraph::gen::bit_gadget(4);
    let inst = twgraph::gen::with_unit_weights(&g);
    let want = baselines::girth_exact_centralized(&inst);

    let session = Session::decompose(&g, 10, 3).unwrap();
    let cfg = girth::GirthConfig {
        trials_per_c: 6,
        seed: 7,
        measure_distributed: true,
    };
    let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
    assert_eq!(run.girth, want);
    assert!(run.rounds_per_trial > 0);

    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let (_, apsp_rounds) = baselines::apsp_pipelined_distributed(&mut net).unwrap();
    assert!(
        apsp_rounds as usize >= g.n() / 2,
        "diameter baseline must pay Ω(n)"
    );
    println!(
        "bit_gadget(4): n = {}, girth per-trial = {} rounds, APSP = {apsp_rounds} rounds",
        g.n(),
        run.rounds_per_trial
    );
}

#[test]
fn girth_never_underestimates_anywhere() {
    for seed in 0..4 {
        let g = twgraph::gen::cycle(12 + seed as usize * 3);
        let inst = twgraph::gen::with_random_weights(&g, 9, seed);
        let want = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 3, seed).unwrap();
        let cfg = girth::GirthConfig {
            trials_per_c: 1, // deliberately starved
            seed,
            measure_distributed: false,
        };
        let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
        assert!(run.girth >= want, "seed {seed}: Lemma 6 violated");
    }
}
