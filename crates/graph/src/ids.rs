//! Index newtypes.
//!
//! All graphs in the workspace index nodes, arcs and undirected edges with
//! `u32` (sufficient for laptop-scale simulation and half the memory of
//! `usize` on 64-bit targets — see the type-size guidance in the perf book).
//! The newtypes prevent accidental cross-indexing between the three spaces.

use std::fmt;

/// A vertex index, valid for the graph it was issued by.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A directed arc index into a [`crate::MultiDigraph`]'s arc table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub u32);

/// An undirected edge identity. Arcs that arose from the same undirected
/// edge of an input instance share one `UEdgeId` (needed e.g. to flip a
/// matching edge consistently, or to give both directions one random label).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UEdgeId(pub u32);

impl NodeId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ArcId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl UEdgeId {
    /// Sentinel for "this arc has no undirected counterpart".
    pub const NONE: UEdgeId = UEdgeId(u32::MAX);

    /// Convert to a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Whether this id refers to a real undirected edge.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != u32::MAX
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Debug for UEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "e{}", self.0)
        } else {
            write!(f, "e-")
        }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uedge_sentinel() {
        assert!(!UEdgeId::NONE.is_some());
        assert!(UEdgeId(0).is_some());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(3)), "v3");
        assert_eq!(format!("{:?}", ArcId(7)), "a7");
        assert_eq!(format!("{:?}", UEdgeId::NONE), "e-");
    }
}
