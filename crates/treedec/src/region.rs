//! Scoped re-decomposition of a dirty region — the tree-surgery half of
//! incremental label maintenance.
//!
//! When an edge batch lands entirely inside `V(G'_x)` for some tree node
//! `x`, the decomposition outside `subtree(x)` is untouched: `V(G'_x)` is
//! disjoint from every ancestor bag, so the recursion state of every other
//! node is a function of unchanged vertices and edges. [`decompose_region`]
//! re-runs the §3.4 recursion on the (possibly now disconnected) region
//! against the unchanged parent bag, producing replacement subtrees that
//! splice in where `subtree(x)` was. The caller (see
//! `distlabel::incremental`) owns the splice and the relabeling.

use crate::config::SepConfig;
use crate::decomp::{adjacent_subset, components_of, DecompError, NodeInfo};
use crate::sep::{sep_doubling, SepOutcome};
use rand::Rng;
use std::collections::VecDeque;
use twgraph::UGraph;

/// One replacement tree node produced by [`decompose_region`].
#[derive(Clone, Debug)]
pub struct RegionNode {
    /// Parent *within the returned list* (parents always precede
    /// children), or `None` for a region root — a node that attaches to
    /// the dirty node's former parent.
    pub parent: Option<usize>,
    /// The node's bag, sorted.
    pub bag: Vec<u32>,
    /// The recursion record, aligned with the surrounding decomposition's
    /// [`NodeInfo`] convention.
    pub info: NodeInfo,
}

/// Replacement subtrees for the region.
#[derive(Clone, Debug, Default)]
pub struct RegionOutcome {
    /// Replacement nodes in creation (BFS) order; parents precede children.
    pub nodes: Vec<RegionNode>,
    /// The largest `t` any `Sep` call settled on.
    pub t_used: u64,
}

/// Re-decompose `region` (the old `V(G'_x)`, as a sorted vertex list of
/// `g`) against the unchanged `boundary` (the old `B_{p(x)}`). `g` is the
/// *updated* graph. Each connected component of `g[region]` becomes one
/// replacement subtree whose root inherits the boundary vertices adjacent
/// to it — exactly the recursion state `decompose_centralized` would hand
/// a child of `p(x)`, so the splice preserves Proposition 3 for every
/// node, old and new.
pub fn decompose_region(
    g: &UGraph,
    region: &[u32],
    boundary: &[u32],
    t0: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> Result<RegionOutcome, DecompError> {
    let n = g.n();
    let mut region_mask = vec![false; n];
    for &v in region {
        region_mask[v as usize] = true;
    }

    struct Work {
        parent: Option<usize>,
        gpx: Vec<u32>,
        inherited: Vec<u32>,
    }
    let mut queue = VecDeque::new();
    for comp in components_of(g, &region_mask) {
        let mut comp_mask = vec![false; n];
        for &v in &comp {
            comp_mask[v as usize] = true;
        }
        let inherited = adjacent_subset(g, boundary, &comp_mask);
        queue.push_back(Work {
            parent: None,
            gpx: comp,
            inherited,
        });
    }

    let mut out = RegionOutcome {
        nodes: Vec::new(),
        t_used: t0.max(2),
    };
    while let Some(w) = queue.pop_front() {
        let mut members = vec![false; n];
        let mut mu = vec![0u64; n];
        for &v in &w.gpx {
            members[v as usize] = true;
            mu[v as usize] = 1;
        }
        let SepOutcome {
            separator: sep,
            t_used: t_here,
            ..
        } = sep_doubling(g, &members, &mu, out.t_used, cfg, rng)?;
        out.t_used = out.t_used.max(t_here);

        let gx_size = w.gpx.len() + w.inherited.len();
        let sx_size = sep.len() + w.inherited.len();
        if gx_size <= 2 * sx_size {
            let mut bag: Vec<u32> = w.gpx.iter().chain(w.inherited.iter()).copied().collect();
            bag.sort_unstable();
            out.nodes.push(RegionNode {
                parent: w.parent,
                bag,
                info: NodeInfo {
                    gpx: w.gpx,
                    inherited: w.inherited,
                    sep,
                    is_leaf: true,
                },
            });
            continue;
        }

        let mut bag: Vec<u32> = w.inherited.iter().chain(sep.iter()).copied().collect();
        bag.sort_unstable();
        bag.dedup();
        let x = out.nodes.len();

        let mut child_members = members.clone();
        for &s in &sep {
            child_members[s as usize] = false;
        }
        for comp in components_of(g, &child_members) {
            let mut comp_mask = vec![false; n];
            for &v in &comp {
                comp_mask[v as usize] = true;
            }
            let child_inherited = adjacent_subset(g, &bag, &comp_mask);
            queue.push_back(Work {
                parent: Some(x),
                gpx: comp,
                inherited: child_inherited,
            });
        }
        out.nodes.push(RegionNode {
            parent: w.parent,
            bag,
            info: NodeInfo {
                gpx: w.gpx,
                inherited: w.inherited,
                sep,
                is_leaf: false,
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose_centralized;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use twgraph::gen::banded_path;

    /// Re-decomposing a leaf's own region against its parent bag yields
    /// subtree(s) whose vertex sets partition the region and whose roots
    /// inherit only boundary vertices.
    #[test]
    fn region_matches_recursion_state() {
        let g = banded_path(200, 2);
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(3);
        let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        let x = (0..dec.td.bags.len())
            .find(|&x| dec.info[x].is_leaf && dec.td.parent[x] != x)
            .expect("a non-root leaf exists");
        let p = dec.td.parent[x];
        let out =
            decompose_region(&g, &dec.info[x].gpx, &dec.td.bags[p], 3, &cfg, &mut rng).unwrap();
        assert!(!out.nodes.is_empty());
        let mut covered: Vec<u32> = out.nodes.iter().flat_map(|n| n.info.gpx.clone()).collect();
        covered.sort_unstable();
        // Children partition each node's G'_x − S'_x, so the union of all
        // gpx sets is exactly the region plus nothing (internal nodes
        // repeat separator vertices of their own gpx — dedup first).
        covered.dedup();
        let roots: Vec<&RegionNode> = out.nodes.iter().filter(|n| n.parent.is_none()).collect();
        let mut root_union: Vec<u32> = roots.iter().flat_map(|n| n.info.gpx.clone()).collect();
        root_union.sort_unstable();
        assert_eq!(root_union, dec.info[x].gpx, "roots partition the region");
        for r in &roots {
            for b in &r.info.inherited {
                assert!(
                    dec.td.bags[p].binary_search(b).is_ok(),
                    "inherited vertex outside the boundary"
                );
            }
        }
        // Parents precede children.
        for (i, node) in out.nodes.iter().enumerate() {
            if let Some(pp) = node.parent {
                assert!(pp < i);
            }
        }
    }
}
