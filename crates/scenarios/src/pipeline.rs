//! The ten end-to-end pipelines behind one uniform interface.
//!
//! Every pipeline consumes a [`Scenario`], runs the full distributed (or
//! charged-virtual) machinery per connected component, **differentially
//! checks its outputs against the centralized oracles in
//! [`baselines::oracles`]**, and returns a [`CellReport`]. A report is only
//! ever produced for a verified cell — divergence panics with the scenario
//! name, so `run_matrix` doubles as the differential suite.

use crate::registry::Scenario;
use crate::report::{fold_checksum, CellError, CellReport};
use crate::runner::{decompose_part, decompose_part_distributed, split_components};
use congest_sim::NetworkConfig;
use stateful_walks::{CdlLabeling, ColoredWalk, StateId, StatefulConstraint};
use twgraph::alg::bfs_dist;
use twgraph::gen::BipartiteInstance;
use twgraph::INF;

/// Finite events-per-second on sub-tick wall clocks: seconds clamp to the
/// 1 µs reporting floor so rate detail keys are always present and never
/// cast an `inf` to `u64::MAX` (issue 7's rate-computation satellite —
/// tiny cells can finish inside one clock tick on fast machines).
fn rate_per_sec(count: u64, secs: f64) -> u64 {
    (count as f64 / secs.max(1e-6)) as u64
}

/// One end-to-end pipeline runnable on any scenario.
pub trait Pipeline {
    /// Stable pipeline name (report key).
    fn name(&self) -> &'static str;
    /// Run on `sc`, differentially checked. Panics on divergence (a broken
    /// invariant); operational failures (simulator violations, invalid
    /// decomposition inputs) surface as a typed [`CellError`].
    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError>;
}

/// Adapter: tag an underlying error (any [`CellFailure`] source — decomp
/// or serve) with the failing cell's coordinates.
fn cell_err<'a, E: Into<crate::report::CellFailure>>(
    sc: &'a Scenario,
    pipeline: &'static str,
) -> impl Fn(E) -> CellError + 'a {
    move |e| CellError {
        scenario: sc.name.to_string(),
        pipeline,
        source: e.into(),
    }
}

/// All ten pipelines, in canonical order.
pub fn all_pipelines() -> Vec<Box<dyn Pipeline>> {
    vec![
        Box::new(SsspPipeline),
        Box::new(DistLabelPipeline),
        Box::new(GirthPipeline),
        Box::new(MatchingPipeline),
        Box::new(WalksPipeline),
        Box::new(ServePipeline),
        Box::new(UpdatePipeline),
        Box::new(MaxflowPipeline),
        Box::new(CountingPipeline),
        Box::new(FoPipeline),
    ]
}

/// Tree decomposition → distance labeling → one label-broadcast SSSP
/// query from global vertex 0, all charged on the simulator; checked
/// vertex-for-vertex against centralized Dijkstra.
pub struct SsspPipeline;

impl Pipeline for SsspPipeline {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let parts = split_components(&g, &inst);
        rep.components = parts.len();
        let src = 0u32;
        let mut dists = vec![INF; g.n()];
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() == 1 {
                if part.old_of[0] == src {
                    dists[src as usize] = 0;
                }
                continue;
            }
            let (out, mut net) =
                decompose_part_distributed(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            out.td.verify(&part.graph).unwrap();
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            let (labels, _) =
                distlabel::build_labels_distributed(&mut net, &part.inst, &out.td, &out.info)
                    .map_err(|e| ce(e.into()))?;
            if let Some(local_src) = part.local_of(src) {
                let (d, _) = distlabel::sssp_distributed(&mut net, &labels, local_src)
                    .map_err(|e| ce(e.into()))?;
                for (local, &dv) in d.iter().enumerate() {
                    dists[part.old_of[local] as usize] = dv;
                }
            }
            rep.metrics.absorb(net.metrics());
            rep.note_phases(ci, net.phase_log());
        }
        let oracle = baselines::sssp_oracle(&inst, src);
        assert_eq!(
            dists, oracle,
            "{}: sssp diverged from the Dijkstra oracle",
            sc.name
        );
        rep.checked = g.n();
        rep.output = dists
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &d)| fold_checksum(acc, i as u64, d));
        Ok(rep)
    }
}

/// Distance labeling build + decode: distributed label construction per
/// component, then pairwise `dec(la(u), la(v))` decoding checked against
/// per-source Dijkstra rows, including cross-component ∞ pairs.
pub struct DistLabelPipeline;

impl Pipeline for DistLabelPipeline {
    fn name(&self) -> &'static str {
        "distlabel"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let parts = split_components(&g, &inst);
        rep.components = parts.len();
        let mut label_words = 0u64;
        let mut max_label_words = 0u64;
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() == 1 {
                continue;
            }
            let (out, mut net) =
                decompose_part_distributed(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            let (labels, _) =
                distlabel::build_labels_distributed(&mut net, &part.inst, &out.td, &out.info)
                    .map_err(|e| ce(e.into()))?;
            rep.metrics.absorb(net.metrics());
            rep.note_phases(ci, net.phase_log());
            for l in &labels {
                label_words += l.words() as u64;
                max_label_words = max_label_words.max(l.words() as u64);
            }
            // Decode a source stride against Dijkstra rows on the *full*
            // instance (mapped through old ids), every target vertex.
            let pn = part.graph.n();
            for local_u in (0..pn as u32).step_by((pn / 4).max(1)) {
                let oracle = baselines::sssp_oracle(&inst, part.old_of[local_u as usize]);
                for local_v in 0..pn as u32 {
                    let got =
                        distlabel::decode(&labels[local_u as usize], &labels[local_v as usize]);
                    let want = oracle[part.old_of[local_v as usize] as usize];
                    assert_eq!(
                        got, want,
                        "{}: decode({}, {}) diverged",
                        sc.name, part.old_of[local_u as usize], part.old_of[local_v as usize]
                    );
                    rep.output = fold_checksum(
                        rep.output,
                        u64::from(part.old_of[local_u as usize]) * g.n() as u64
                            + u64::from(part.old_of[local_v as usize]),
                        got,
                    );
                    rep.checked += 1;
                }
                // Cross-component pairs have no common label space, so no
                // decode exists; consistency-check (without counting it as
                // a differential verification) that the oracle agrees such
                // pairs are unreachable.
                for other in parts.iter().filter(|o| o.old_of != part.old_of) {
                    for &ov in other.old_of.iter().take(2) {
                        assert!(
                            oracle[ov as usize] >= INF,
                            "{}: oracle finds a cross-component path {} → {ov}",
                            sc.name,
                            part.old_of[local_u as usize]
                        );
                    }
                }
            }
        }
        rep.detail.push(("label_words_total", label_words));
        rep.detail.push(("label_words_max", max_label_words));
        Ok(rep)
    }
}

/// Probabilistic undirected weighted girth per cyclic component (one
/// representative trial charged through the virtual product network),
/// checked for exactness against the centralized shortest-cycle oracle.
pub struct GirthPipeline;

impl Pipeline for GirthPipeline {
    fn name(&self) -> &'static str {
        "girth"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let parts = split_components(&g, &inst);
        rep.components = parts.len();
        let mut best = INF;
        let mut trials = 0u64;
        for (ci, part) in parts.iter().enumerate() {
            // Connected with m ≤ n − 1 ⇒ acyclic ⇒ girth ∞; skip.
            if part.graph.m() < part.graph.n() {
                continue;
            }
            let out = decompose_part(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            // Half the `practical` trial count: the matrix asserts exact
            // equality per cell anyway (deterministic given the seed), so a
            // missed trial shows up as a hard failure, not silent flakiness.
            let cfg = girth::GirthConfig {
                trials_per_c: 2 + (part.graph.n().max(2).ilog2() as usize) / 2,
                seed: sc.seed.wrapping_mul(31).wrapping_add(ci as u64),
                measure_distributed: true,
            };
            let run = girth::girth_undirected(&part.inst, &out.td, &out.info, &cfg)
                .map_err(|e| ce(e.into()))?;
            let want = baselines::girth_exact_centralized(&part.inst);
            assert_eq!(
                run.girth, want,
                "{}: component {ci} girth diverged from the oracle",
                sc.name
            );
            rep.checked += 1;
            best = best.min(run.girth);
            trials += run.trials as u64;
            rep.metrics.absorb_rounds(run.rounds_total);
            rep.detail.push(("rounds_per_trial", run.rounds_per_trial));
        }
        // The whole-graph girth is the min over components; the oracle on
        // the full (possibly disconnected) instance must agree.
        let want_full = baselines::girth_exact_centralized(&inst);
        assert_eq!(best, want_full, "{}: full-graph girth diverged", sc.name);
        rep.checked += 1;
        rep.detail.push(("trials", trials));
        rep.output = if best >= INF { u64::MAX } else { best };
        Ok(rep)
    }
}

/// Separator-hierarchy bipartite matching on the BFS-parity
/// bipartification of every component, augmentations charged through the
/// virtual CDL network, checked against Hopcroft–Karp.
pub struct MatchingPipeline;

impl Pipeline for MatchingPipeline {
    fn name(&self) -> &'static str {
        "matching"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err(sc, self.name());
        let g = sc.graph();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let inst = sc.instance();
        let parts = split_components(&g, &inst);
        rep.components = parts.len();
        let mut total = 0usize;
        let mut augmentations = 0u64;
        let mut attempts = 0u64;
        // Globally advancing decomposition index: sub-components of
        // different parts must not share separator RNG streams.
        let mut decomp_idx = 0usize;
        for part in &parts {
            // Bipartify: 2-color by BFS-layer parity, keep cross edges.
            let depth = bfs_dist(&part.graph, 0);
            let side: Vec<bool> = depth.iter().map(|&d| d % 2 == 0).collect();
            let mut bb = twgraph::UGraphBuilder::new(part.graph.n());
            for (u, v) in part.graph.edges() {
                if side[u as usize] != side[v as usize] {
                    bb.add_edge(u, v);
                }
            }
            let bg = bb.build();
            // Dropping intra-layer edges may disconnect; recurse on the
            // sub-components of the derived bipartite graph.
            let bunit = twgraph::gen::with_unit_weights(&bg);
            for sub in &split_components(&bg, &bunit) {
                if sub.graph.n() == 1 {
                    continue;
                }
                let sside: Vec<bool> = sub.old_of.iter().map(|&ov| side[ov as usize]).collect();
                let want = baselines::matching_oracle(&sub.graph, &sside);
                let out = decompose_part(sub, sc.t0, sc.seed, decomp_idx).map_err(&ce)?;
                decomp_idx += 1;
                rep.note_decomposition(out.td.width(), out.td.stats().depth);
                let bi = BipartiteInstance::new(sub.graph.clone(), sside);
                let got =
                    bmatch::max_matching(&bi, &out.td, &out.info, bmatch::MatchMode::Distributed)
                        .map_err(|e| ce(e.into()))?;
                assert_eq!(
                    got.size(),
                    want,
                    "{}: matching diverged from Hopcroft–Karp",
                    sc.name
                );
                rep.checked += 1;
                total += got.size();
                augmentations += got.augmentations as u64;
                attempts += got.attempts as u64;
                rep.metrics.absorb_rounds(got.rounds);
            }
        }
        rep.detail.push(("augmentations", augmentations));
        rep.detail.push(("attempts", attempts));
        rep.output = total as u64;
        Ok(rep)
    }
}

/// Constrained distance labeling CDL(C_col(2)) on the edge-colored
/// instance: distributed construction through the charged virtual product
/// network per component, decoded walk distances checked against product
/// Dijkstra for every state.
pub struct WalksPipeline;

impl Pipeline for WalksPipeline {
    fn name(&self) -> &'static str {
        "walks"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err(sc, self.name());
        let g = sc.graph();
        let colored = sc.colored_instance(2);
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let c = ColoredWalk { colors: 2 };
        let parts = split_components(&g, &colored);
        rep.components = parts.len();
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() == 1 {
                continue;
            }
            let out = decompose_part(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            let (cdl, metrics) = CdlLabeling::build_distributed(
                &part.inst,
                &c,
                &out.td,
                &out.info,
                NetworkConfig::default(),
            )
            .map_err(|e| ce(e.into()))?;
            rep.metrics.absorb(&metrics);
            let pn = part.graph.n();
            for s in (0..pn as u32).step_by((pn / 4).max(1)) {
                let oracle = baselines::constrained_sssp_oracle(&part.inst, &c, s);
                for t in 0..pn as u32 {
                    for q in 0..c.n_states() as StateId {
                        let got = cdl.dist(s, t, q);
                        assert_eq!(
                            got, oracle[t as usize][q as usize],
                            "{}: CDL({s} → {t}, state {q}) diverged",
                            sc.name
                        );
                        rep.output = fold_checksum(
                            rep.output,
                            (u64::from(s) * pn as u64 + u64::from(t)) * 8 + u64::from(q),
                            got,
                        );
                        rep.checked += 1;
                    }
                }
            }
        }
        Ok(rep)
    }
}

/// Query serving: distributed label construction per component, compaction
/// into a sharded `labelserve` store, then a batched query replay through
/// the cached [`labelserve::QueryEngine`] — every answer differentially
/// checked against per-source Dijkstra rows (exhaustive pairs for
/// n ≤ 200, a seeded source/target sample otherwise), cross-component
/// pairs included (the store must answer the oracle's ∞). A seeded skewed
/// workload is then replayed to report throughput and cache behavior.
pub struct ServePipeline;

/// Exhaustive-check cutoff: at or below this vertex count every ordered
/// pair is verified; above it a seeded sample of full source rows is.
const SERVE_EXHAUSTIVE_N: usize = 200;

impl Pipeline for ServePipeline {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err::<treedec::DecompError>(sc, self.name());
        let se = cell_err::<labelserve::ServeError>(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let parts = split_components(&g, &inst);
        rep.components = parts.len();

        // Build: distributed label construction per component (charged on
        // the simulator), compacted into one global sharded store.
        let mut builder = labelserve::StoreBuilder::new(g.n());
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() == 1 {
                builder.add_singleton(part.old_of[0]).map_err(&se)?;
                continue;
            }
            let (out, mut net) =
                decompose_part_distributed(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            let (labels, _) =
                distlabel::build_labels_distributed(&mut net, &part.inst, &out.td, &out.info)
                    .map_err(|e| ce(e.into()))?;
            builder.add_component(&labels, &part.old_of).map_err(&se)?;
            rep.metrics.absorb(net.metrics());
            rep.note_phases(ci, net.phase_log());
        }
        let cfg = labelserve::ServeConfig {
            // Small graphs still exercise real sharding: at least 4 shards.
            shard_size: (g.n() / 4).max(1),
            cache_capacity: 512,
            layout: labelserve::StoreLayout::Flat,
        };
        // One accumulation, both physical layouts: the flat store serves
        // the oracle differential and the workload replay; the packed
        // store rides along as a per-cell differential (below) and for the
        // bytes/node comparison the compression work is judged on.
        let store = builder
            .build_layout(cfg.shard_size, cfg.layout)
            .map_err(&se)?;
        let packed = builder
            .build_layout(cfg.shard_size, labelserve::StoreLayout::Packed)
            .map_err(&se)?;
        rep.detail.push(("store_bytes", store.bytes() as u64));
        rep.detail
            .push(("store_bytes_packed", packed.bytes() as u64));
        rep.detail.push(("store_entries", store.entries() as u64));
        let engine = labelserve::QueryEngine::new(store, cfg);

        // Differential: batched engine answers against Dijkstra rows on
        // the full instance — cross-component pairs must answer ∞.
        let n = g.n();
        let sources: Vec<u32> = if n <= SERVE_EXHAUSTIVE_N {
            (0..n as u32).collect()
        } else {
            let mut rng = twgraph::gen::derive_rng("serve_sample", &[n as u64], sc.seed);
            use rand::Rng;
            (0..32).map(|_| rng.gen_range(0..n as u32)).collect()
        };
        for &u in &sources {
            let oracle = baselines::sssp_oracle(&inst, u);
            let row: Vec<(u32, u32)> = (0..n as u32).map(|v| (u, v)).collect();
            let got = engine.batch(&row).map_err(&se)?;
            for (v, &d) in got.iter().enumerate() {
                assert_eq!(
                    d, oracle[v],
                    "{}: serve({u} → {v}) diverged from the Dijkstra oracle",
                    sc.name
                );
                rep.output = fold_checksum(rep.output, u64::from(u) * n as u64 + v as u64, d);
                rep.checked += 1;
            }
        }

        // Replay the seeded skewed workload for throughput and cache
        // behavior (answers drawn from the just-verified pair space).
        engine.reset();
        let spec = labelserve::WorkloadSpec {
            queries: 8 * n.max(8),
            hot_pairs: (n / 8).max(8),
            hot_fraction: 0.75,
        };
        let queries = labelserve::seeded_queries(n, &spec, sc.seed);
        let t = std::time::Instant::now();
        let answers = engine.batch(&queries).map_err(&se)?;
        let wall = t.elapsed();
        for (i, &d) in answers.iter().enumerate() {
            rep.output = fold_checksum(rep.output, i as u64, d);
        }
        // Packed differential: the compressed layout must answer the
        // whole replayed workload bit-identically to the flat store.
        for (q, &d) in queries.iter().zip(&answers) {
            let pd = packed.distance(q.0, q.1).map_err(&se)?;
            assert_eq!(
                pd, d,
                "{}: packed({} → {}) diverged from the flat store",
                sc.name, q.0, q.1
            );
        }
        rep.detail.push(("packed_checked", queries.len() as u64));
        let stats = engine.stats();
        rep.detail.push(("queries", queries.len() as u64));
        rep.detail.push(("cache_hits", stats.hits));
        rep.detail.push(("cache_misses", stats.misses));
        rep.detail
            .push(("cache_hit_pct", (stats.hit_rate() * 100.0).round() as u64));
        rep.detail.push((
            "qps",
            rate_per_sec(queries.len() as u64, wall.as_secs_f64()),
        ));
        Ok(rep)
    }
}

/// One update:query traffic mix — the churn axis of the matrix.
#[derive(Clone, Copy, Debug)]
pub struct UpdateMix {
    /// Mix name (stable report key fragment).
    pub name: &'static str,
    /// Edge edits per batch round.
    pub updates: usize,
    /// Relative query volume per round (scaled by the pipeline).
    pub queries: usize,
    /// Static detail key under which this mix's QPS is reported.
    pub qps_key: &'static str,
}

/// The pinned update:query ratios every scenario replays.
pub fn update_mixes() -> Vec<UpdateMix> {
    vec![
        UpdateMix {
            name: "read_heavy",
            updates: 1,
            queries: 16,
            qps_key: "qps_read_heavy",
        },
        UpdateMix {
            name: "balanced",
            updates: 4,
            queries: 4,
            qps_key: "qps_balanced",
        },
        UpdateMix {
            name: "write_heavy",
            updates: 16,
            queries: 1,
            qps_key: "qps_write_heavy",
        },
    ]
}

/// Batch rounds replayed per mix.
const UPDATE_ROUNDS: usize = 2;

/// Dynamic graphs: build a maintained labeling once, then replay seeded
/// insert/delete batches at three update:query ratios. Every batch goes
/// through [`distlabel::DynamicLabeling::apply`] (scoped dirty-subtree
/// relabeling with full-rebuild fallback) and is published as a new epoch
/// of a [`labelserve::VersionedEngine`]; after **every** publish the
/// current epoch is checked exhaustively against Dijkstra rows on the
/// *post-update* instance — cross-component ∞ pairs included, so component
/// splits and merges are verified, not just weight churn. Reports rebuild
/// scope (reused / scoped / rebuilt parts, fallbacks), publish latency,
/// and QPS under churn per mix.
pub struct UpdatePipeline;

impl Pipeline for UpdatePipeline {
    fn name(&self) -> &'static str {
        "update"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        use rand::Rng;
        let ce = cell_err::<treedec::DecompError>(sc, self.name());
        let se = cell_err::<labelserve::ServeError>(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let n = g.n();
        let wmax = match sc.weights {
            crate::registry::WeightModel::Unit => 1,
            crate::registry::WeightModel::Uniform { wmax } => wmax,
            crate::registry::WeightModel::HeavyTailed { wmax, .. } => wmax,
        };

        // Initial build: decompose and label every component once. Only
        // this decomposition is width-checked — random churn edges may
        // leave the declared family (that is the point of the test).
        let mut dl = distlabel::DynamicLabeling::build(&inst, sc.t0, sc.seed).map_err(&ce)?;
        rep.components = dl.parts().len();
        for part in dl.parts() {
            if part.n() > 1 {
                rep.note_decomposition(part.td().width(), part.td().stats().depth);
            }
        }
        let cfg = labelserve::ServeConfig {
            shard_size: (n / 4).max(1),
            cache_capacity: 512,
            ..labelserve::ServeConfig::default()
        };
        let eng = labelserve::VersionedEngine::from_labeling(&dl, cfg).map_err(&se)?;

        let mut updates_applied = 0u64;
        let mut publishes = 0u64;
        let mut publish_us_total = 0u64;
        let mut dirty_total = 0u64;
        let mut scoped_parts = 0u64;
        let mut rebuilt_parts = 0u64;
        let mut reused_parts = 0u64;
        let mut fallbacks = 0u64;
        let mut queries_total = 0u64;
        let mut churn_secs = 0.0f64;
        let mut qps_mix = Vec::new();

        for (mi, mix) in update_mixes().iter().enumerate() {
            for round in 0..UPDATE_ROUNDS {
                let mut rng =
                    twgraph::gen::derive_rng("update_batch", &[mi as u64, round as u64], sc.seed);
                // Seeded batch: a mixture of deletions of existing edges
                // and fresh weighted insertions.
                let mut batch = twgraph::EdgeBatch::new();
                for _ in 0..mix.updates {
                    let arcs = dl.inst().arcs();
                    if rng.gen_bool(0.5) && !arcs.is_empty() {
                        let a = &arcs[rng.gen_range(0..arcs.len())];
                        batch = batch.delete(a.src, a.dst);
                    } else {
                        let u = rng.gen_range(0..n as u32);
                        let v = rng.gen_range(0..n as u32);
                        batch = batch.insert(u, v, rng.gen_range(1..=wmax));
                    }
                }
                let ur = dl.apply(&batch).map_err(&ce)?;
                updates_applied += 1;
                dirty_total += ur.dirty.len() as u64;
                scoped_parts += ur.parts_scoped as u64;
                rebuilt_parts += ur.parts_rebuilt as u64;
                reused_parts += ur.parts_reused as u64;
                fallbacks += ur.fallbacks as u64;
                let stats = eng.publish_from(&dl, &ur.dirty).map_err(&se)?;
                publishes += 1;
                publish_us_total += stats.publish_us;
                assert_eq!(
                    stats.epoch, publishes,
                    "{}: epochs must advance one per publish",
                    sc.name
                );

                // Exhaustive differential on the post-update instance: the
                // just-published epoch must answer Dijkstra on the *new*
                // graph for every ordered pair (∞ across components).
                let snap = eng.snapshot();
                for u in 0..n as u32 {
                    let oracle = baselines::sssp_oracle(dl.inst(), u);
                    let row: Vec<(u32, u32)> = (0..n as u32).map(|v| (u, v)).collect();
                    let got = snap.engine().batch(&row).map_err(&se)?;
                    for (v, &d) in got.iter().enumerate() {
                        assert_eq!(
                            d, oracle[v],
                            "{}/{}: update({u} → {v}) diverged after batch {updates_applied}",
                            sc.name, mix.name
                        );
                        rep.output =
                            fold_checksum(rep.output, u64::from(u) * n as u64 + v as u64, d);
                        rep.checked += 1;
                    }
                }
            }

            // QPS under churn: replay this mix's seeded skewed stream
            // against the current epoch.
            let spec = labelserve::WorkloadSpec {
                queries: (mix.queries * n.max(8)).max(64),
                hot_pairs: (n / 8).max(8),
                hot_fraction: 0.75,
            };
            let stream = labelserve::seeded_queries(n, &spec, sc.seed.wrapping_add(mi as u64));
            let t = std::time::Instant::now();
            let answers = eng.batch(&stream).map_err(&se)?;
            let wall = t.elapsed().as_secs_f64();
            for (i, &d) in answers.iter().enumerate() {
                rep.output = fold_checksum(rep.output, i as u64, d);
            }
            queries_total += stream.len() as u64;
            churn_secs += wall;
            qps_mix.push((mix.qps_key, rate_per_sec(stream.len() as u64, wall)));
        }

        rep.detail.push(("updates_applied", updates_applied));
        rep.detail.push(("publishes", publishes));
        rep.detail.push(("publish_us_total", publish_us_total));
        rep.detail.push(("dirty_total", dirty_total));
        rep.detail.push(("scoped_parts", scoped_parts));
        rep.detail.push(("rebuilt_parts", rebuilt_parts));
        rep.detail.push(("reused_parts", reused_parts));
        rep.detail.push(("fallbacks", fallbacks));
        rep.detail.push(("queries", queries_total));
        rep.detail
            .push(("qps_churn", rate_per_sec(queries_total, churn_secs)));
        rep.detail.extend(qps_mix);
        Ok(rep)
    }
}

/// Random terminal pairs sampled per component by the max-flow pipeline
/// (one extra deliberately-adjacent pair rides along when the component
/// has an edge, pinning the ∞-agreement path).
const MAXFLOW_PAIRS: usize = 3;

/// Small-capacity max-flow / vertex-disjoint paths between seeded terminal
/// pairs: the batched distributed min-vertex-cut primitive
/// ([`subgraph_ops::mvc::batch_min_vertex_cut`], charged on the same
/// network the decomposition ran on) against the centralized
/// augmenting-path oracle [`baselines::maxflow_oracle`]. The capacity
/// budget is `width + 1`: any two non-adjacent vertices are separated by
/// some bag of the decomposition, so a finite answer inside the budget is
/// itself a decomposition invariant the pipeline asserts.
pub struct MaxflowPipeline;

impl Pipeline for MaxflowPipeline {
    fn name(&self) -> &'static str {
        "maxflow"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        use rand::Rng;
        let ce = cell_err::<treedec::DecompError>(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let parts = split_components(&g, &inst);
        rep.components = parts.len();
        let mut pairs_total = 0u64;
        let mut flow_total = 0u64;
        let mut inf_pairs = 0u64;
        let mut cap_max = 0u64;
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() < 2 {
                continue;
            }
            let (out, mut net) =
                decompose_part_distributed(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            let cap = out.td.width() + 1;
            cap_max = cap_max.max(cap as u64);
            let pn = part.graph.n() as u32;
            let mut rng = twgraph::gen::derive_rng("maxflow_pairs", &[ci as u64], sc.seed);
            let mut pairs: Vec<(u32, u32)> = (0..MAXFLOW_PAIRS)
                .map(|_| {
                    let s = rng.gen_range(0..pn);
                    let mut t = rng.gen_range(0..pn);
                    while t == s {
                        t = rng.gen_range(0..pn);
                    }
                    (s, t)
                })
                .collect();
            // One deliberately adjacent pair: both sides must answer ∞.
            let s = rng.gen_range(0..pn);
            if let Some(&t) = part.graph.neighbors(s).first() {
                pairs.push((s, t));
            }
            let instances: Vec<subgraph_ops::mvc::CutInstance> = pairs
                .iter()
                .map(|&(s, t)| subgraph_ops::mvc::CutInstance {
                    members: None,
                    sources: vec![s],
                    sinks: vec![t],
                })
                .collect();
            let results = subgraph_ops::mvc::batch_min_vertex_cut(&mut net, &instances, cap)
                .map_err(|e| ce(treedec::DecompError::Congest(e)))?;
            rep.metrics.absorb(net.metrics());
            rep.note_phases(ci, net.phase_log());
            for (pi, (&(s, t), got)) in pairs.iter().zip(&results).enumerate() {
                let want = baselines::maxflow_oracle(&part.graph, None, &[s], &[t], cap)
                    .map_err(|e| ce(treedec::DecompError::Mincut(e)))?;
                let adjacent = part.graph.neighbors(s).binary_search(&t).is_ok();
                // Decomposition invariant: non-adjacent terminals are
                // separated by some bag minus the terminals, ≤ width + 1.
                assert!(
                    adjacent || want.is_some(),
                    "{}: non-adjacent pair {s} → {t} needs a cut above width + 1 = {cap}",
                    sc.name
                );
                let flow = match (got, &want) {
                    (subgraph_ops::mvc::CutResult::Cut(cut), Some(wcut)) => {
                        assert_eq!(
                            cut.len(),
                            wcut.len(),
                            "{}: pair {s} → {t} flow diverged from the oracle",
                            sc.name
                        );
                        assert!(
                            cut_separates(&part.graph, cut, s, t),
                            "{}: distributed cut {cut:?} does not separate {s} from {t}",
                            sc.name
                        );
                        flow_total += cut.len() as u64;
                        cut.len() as u64
                    }
                    (subgraph_ops::mvc::CutResult::TooBig, None) => {
                        inf_pairs += 1;
                        u64::MAX
                    }
                    (got, want) => panic!(
                        "{}: pair {s} → {t} diverged: distributed {got:?} vs oracle {want:?}",
                        sc.name
                    ),
                };
                rep.checked += 1;
                pairs_total += 1;
                rep.output = fold_checksum(rep.output, (ci as u64) << 8 | pi as u64, flow);
            }
        }
        rep.detail.push(("pairs", pairs_total));
        rep.detail.push(("flow_total", flow_total));
        rep.detail.push(("inf_pairs", inf_pairs));
        rep.detail.push(("cap_max", cap_max));
        Ok(rep)
    }
}

/// Does removing `cut` disconnect `s` from `t`? Independent of both the
/// distributed primitive and the oracle (plain component scan).
fn cut_separates(g: &twgraph::UGraph, cut: &[u32], s: u32, t: u32) -> bool {
    let keep: Vec<bool> = (0..g.n() as u32).map(|v| !cut.contains(&v)).collect();
    if !keep[s as usize] || !keep[t as usize] {
        return false;
    }
    let (h, old_of) = g.induced(&keep);
    let (comp, _) = twgraph::alg::components(&h);
    let pos = |v: u32| old_of.iter().position(|&o| o == v).unwrap();
    comp[pos(s)] != comp[pos(t)]
}

/// Subgraph counting: triangles and 4-/5-cycles per component. Triangles
/// are enumerated bag-locally (every clique lies inside some bag of a
/// valid decomposition) with the separator overlaps deduplicated; the
/// longer cycles come from the distributed closed-walk spectrum
/// ([`subgraph_ops::probe::closed_walk_spectrum`], charged) via the trace
/// inclusion–exclusion identities
/// `c3 = tr A³ / 6`,
/// `c4 = (tr A⁴ + 2m − 2 Σ d_v²) / 8`,
/// `c5 = (tr A⁵ − 5 tr A³ − 5 Σ (d_v − 2)(A³)_vv) / 10`.
/// The two triangle counts cross-check each other, and all three counts
/// are differentially checked against the brute-force enumeration oracle
/// [`baselines::cycle_counts_oracle`] per component *and* on the full
/// (possibly disconnected) graph.
pub struct CountingPipeline;

impl Pipeline for CountingPipeline {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        let ce = cell_err::<treedec::DecompError>(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let parts = split_components(&g, &inst);
        rep.components = parts.len();
        let mut total = baselines::CycleCounts::default();
        let mut bag_triples = 0u64;
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() < 3 {
                continue;
            }
            let (out, mut net) =
                decompose_part_distributed(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);

            // Bag-local triangle join: enumerate adjacent triples inside
            // every bag; bags overlap on separators, so the global set
            // union is the inclusion–exclusion-correct count.
            let adj = |a: u32, b: u32| part.graph.neighbors(a).binary_search(&b).is_ok();
            let mut tris = std::collections::BTreeSet::new();
            for bag in &out.td.bags {
                for (i, &a) in bag.iter().enumerate() {
                    for (j, &b) in bag.iter().enumerate().skip(i + 1) {
                        if !adj(a, b) {
                            continue;
                        }
                        for &c in bag.iter().skip(j + 1) {
                            bag_triples += 1;
                            if adj(a, c) && adj(b, c) {
                                tris.insert((a, b, c));
                            }
                        }
                    }
                }
            }

            // Distributed closed-walk spectrum on the same charged network.
            let active: Vec<u32> = (0..part.graph.n() as u32).collect();
            let spectrum = subgraph_ops::probe::closed_walk_spectrum(&mut net, &active, 5)
                .map_err(|e| ce(treedec::DecompError::Congest(e)))?;
            rep.metrics.absorb(net.metrics());
            rep.note_phases(ci, net.phase_log());
            let (mut tr3, mut tr4, mut tr5) = (0i128, 0i128, 0i128);
            let (mut sum_d2, mut mixed) = (0i128, 0i128);
            for s in &spectrum {
                let d = s.degree as i128;
                tr3 += s.diag[2] as i128;
                tr4 += s.diag[3] as i128;
                tr5 += s.diag[4] as i128;
                sum_d2 += d * d;
                mixed += (d - 2) * s.diag[2] as i128;
            }
            let m2 = 2 * part.graph.m() as i128;
            let counts = [
                ("tr A³ / 6", tr3, 6),
                ("4-cycle inclusion–exclusion", tr4 + m2 - 2 * sum_d2, 8),
                ("5-cycle inclusion–exclusion", tr5 - 5 * tr3 - 5 * mixed, 10),
            ]
            .map(|(what, num, den)| {
                assert!(
                    num >= 0 && num % den == 0,
                    "{}: {what} produced the non-count {num}/{den}",
                    sc.name
                );
                (num / den) as u64
            });
            let comp_counts = baselines::CycleCounts {
                c3: counts[0],
                c4: counts[1],
                c5: counts[2],
            };
            // Cross-check: the bag join and the walk trace count the same
            // triangles through disjoint mechanisms.
            assert_eq!(
                tris.len() as u64,
                comp_counts.c3,
                "{}: bag-local triangles diverged from tr A³ / 6",
                sc.name
            );
            rep.checked += 1;
            let want = baselines::cycle_counts_oracle(&part.graph);
            assert_eq!(
                comp_counts, want,
                "{}: component {ci} cycle counts diverged from the enumeration oracle",
                sc.name
            );
            rep.checked += 3;
            total.c3 += comp_counts.c3;
            total.c4 += comp_counts.c4;
            total.c5 += comp_counts.c5;
        }
        // Cycles never span components: the full-graph oracle must equal
        // the component sum even on the disconnected corpus entries.
        let want_full = baselines::cycle_counts_oracle(&g);
        assert_eq!(
            total, want_full,
            "{}: full-graph cycle counts diverged",
            sc.name
        );
        rep.checked += 3;
        rep.detail.push(("triangles", total.c3));
        rep.detail.push(("cycles4", total.c4));
        rep.detail.push(("cycles5", total.c5));
        rep.detail.push(("bag_triples_scanned", bag_triples));
        rep.output = [(3u64, total.c3), (4, total.c4), (5, total.c5)]
            .iter()
            .fold(0, |acc, &(k, v)| fold_checksum(acc, k, v));
        Ok(rep)
    }
}

/// Sentences evaluated per cell by the FO pipeline.
const FO_SENTENCES: usize = 6;

/// Largest `dist ≤ k` radius the generated sentences may use.
const FO_RADIUS: u32 = 2;

/// FO-property checking: a seeded batch of closed sentences from the
/// [`twgraph::fo`] DSL (∃/∀ over vertices, adjacency / equality /
/// distance-≤k atoms, quantifier depth ≤ 2) evaluated over
/// distributed-gathered bounded hop distances
/// ([`subgraph_ops::probe::bounded_hop_distances`] per component, charged
/// on the decomposition's network — adjacency is decided as `dist = 1`
/// from the gathered tables, never read off the graph), with every
/// verdict differentially checked against the naive quantifier-expansion
/// oracle [`baselines::fo_oracle`] on the full graph (cross-component
/// pairs answer `dist = ∞` on both sides).
pub struct FoPipeline;

impl Pipeline for FoPipeline {
    fn name(&self) -> &'static str {
        "fo"
    }

    fn run(&self, sc: &Scenario) -> Result<CellReport, CellError> {
        use twgraph::fo::{Atom, Formula};
        let ce = cell_err::<treedec::DecompError>(sc, self.name());
        let g = sc.graph();
        let inst = sc.instance();
        let mut rep = CellReport::new(sc.name, self.name(), g.n(), g.m());
        let sentences = twgraph::fo::seeded_sentences(FO_SENTENCES, FO_RADIUS, sc.seed);
        let radius = sentences.iter().map(|f| f.max_radius()).max().unwrap_or(1);
        let parts = split_components(&g, &inst);
        rep.components = parts.len();

        // Gather: per-component bounded hop-distance tables, mapped back
        // to original vertex ids. Absent pairs are beyond the radius (or
        // cross-component) — both read as "false" by every dist atom.
        let mut dist: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
        for (ci, part) in parts.iter().enumerate() {
            if part.graph.n() < 2 {
                dist.insert((part.old_of[0], part.old_of[0]), 0);
                continue;
            }
            let (out, mut net) =
                decompose_part_distributed(part, sc.t0, sc.seed, ci).map_err(&ce)?;
            rep.note_decomposition(out.td.width(), out.td.stats().depth);
            let active: Vec<u32> = (0..part.graph.n() as u32).collect();
            let tables = subgraph_ops::probe::bounded_hop_distances(&mut net, &active, radius)
                .map_err(|e| ce(treedec::DecompError::Congest(e)))?;
            rep.metrics.absorb(net.metrics());
            rep.note_phases(ci, net.phase_log());
            for (local, table) in tables.iter().enumerate() {
                for &(o, d) in table {
                    dist.insert((part.old_of[o as usize], part.old_of[local]), d);
                }
            }
        }

        // Evaluate: quantifiers expand centrally over the gathered tables
        // (the oracle re-derives everything from its own BFS rows).
        let n = g.n() as u32;
        let dist_le = |u: u32, v: u32, k: u32| dist.get(&(u, v)).is_some_and(|&d| d <= k);
        fn eval(
            f: &Formula,
            env: [u32; 2],
            n: u32,
            dist_le: &impl Fn(u32, u32, u32) -> bool,
        ) -> bool {
            match f {
                Formula::Atom(Atom::Adj(a, b)) => {
                    let (u, v) = (env[*a as usize], env[*b as usize]);
                    u != v && dist_le(u, v, 1)
                }
                Formula::Atom(Atom::Eq(a, b)) => env[*a as usize] == env[*b as usize],
                Formula::Atom(Atom::DistLe(a, b, k)) => {
                    dist_le(env[*a as usize], env[*b as usize], *k)
                }
                Formula::Not(inner) => !eval(inner, env, n, dist_le),
                Formula::And(l, r) => eval(l, env, n, dist_le) && eval(r, env, n, dist_le),
                Formula::Or(l, r) => eval(l, env, n, dist_le) || eval(r, env, n, dist_le),
                Formula::Exists(var, inner) => (0..n).any(|w| {
                    let mut e = env;
                    e[*var as usize] = w;
                    eval(inner, e, n, dist_le)
                }),
                Formula::Forall(var, inner) => (0..n).all(|w| {
                    let mut e = env;
                    e[*var as usize] = w;
                    eval(inner, e, n, dist_le)
                }),
            }
        }
        let mut verdicts_true = 0u64;
        for (i, f) in sentences.iter().enumerate() {
            assert!(
                f.is_sentence(),
                "{}: generator emitted an open formula",
                sc.name
            );
            let got = eval(f, [0, 0], n, &dist_le);
            let want = baselines::fo_oracle(&g, f);
            assert_eq!(
                got, want,
                "{}: sentence {i} «{f}» diverged from the quantifier-expansion oracle",
                sc.name
            );
            rep.checked += 1;
            verdicts_true += u64::from(got);
            rep.output = fold_checksum(rep.output, i as u64, u64::from(got));
        }
        rep.detail.push(("sentences", sentences.len() as u64));
        rep.detail.push(("verdicts_true", verdicts_true));
        rep.detail.push(("radius", u64::from(radius)));
        rep.detail.push(("dist_pairs", dist.len() as u64));
        Ok(rep)
    }
}

/// (Internal) shared scaffolding assertions exercised by unit tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Family, Scenario, WeightModel};

    fn tiny(name: &'static str, family: Family) -> Scenario {
        Scenario {
            name,
            family,
            weights: WeightModel::Uniform { wmax: 7 },
            seed: 5,
            tw_bound: Some(3),
            elim_bound: Some(4),
            t0: 3,
        }
    }

    #[test]
    fn sssp_cell_on_small_cactus() {
        let rep = SsspPipeline
            .run(&tiny("test/cactus", Family::Cactus { n: 24 }))
            .unwrap();
        assert_eq!(rep.checked, 24);
        assert!(rep.metrics.rounds > 0);
        assert!(!rep.phases.is_empty());
    }

    #[test]
    fn girth_cell_on_ring() {
        let rep = GirthPipeline
            .run(&tiny(
                "test/ring",
                Family::RingOfCliques {
                    cliques: 3,
                    size: 3,
                },
            ))
            .unwrap();
        assert!(rep.output < u64::MAX, "a ring of triangles has cycles");
        assert!(rep.checked >= 2);
    }

    #[test]
    fn matching_cell_on_series_parallel() {
        let rep = MatchingPipeline
            .run(&tiny("test/sp", Family::SeriesParallel { n: 26 }))
            .unwrap();
        assert!(rep.output > 0, "a connected graph has a nonempty matching");
        assert!(rep.checked >= 1);
    }

    #[test]
    fn walks_cell_on_halin() {
        let rep = WalksPipeline
            .run(&tiny("test/halin", Family::Halin { n: 20 }))
            .unwrap();
        assert!(rep.checked > 0);
        assert!(rep.metrics.rounds > 0, "virtual CDL rounds must be charged");
    }

    #[test]
    fn serve_cell_on_multi_component() {
        let rep = ServePipeline
            .run(&tiny("test/serve", Family::MultiComponent { n: 40 }))
            .unwrap();
        assert!(rep.components >= 4);
        assert_eq!(rep.checked, 40 * 40, "exhaustive pair verification");
        assert!(rep.metrics.rounds > 0, "label construction must be charged");
        for key in ["store_bytes", "queries", "cache_hits", "cache_misses"] {
            assert!(
                rep.detail.iter().any(|&(k, _)| k == key),
                "detail key {key} missing"
            );
        }
        let hits = rep
            .detail
            .iter()
            .find(|&&(k, _)| k == "cache_hits")
            .unwrap()
            .1;
        assert!(hits > 0, "a 75%-hot workload must hit the cache");
    }

    #[test]
    fn update_cell_on_multi_component() {
        let rep = UpdatePipeline
            .run(&tiny("test/update", Family::MultiComponent { n: 32 }))
            .unwrap();
        let total_batches = (update_mixes().len() * UPDATE_ROUNDS) as u64;
        // Every batch re-verified the full pair space on the mutated graph.
        assert_eq!(rep.checked, 32 * 32 * total_batches as usize);
        for key in [
            "updates_applied",
            "publishes",
            "dirty_total",
            "queries",
            "qps_churn",
        ] {
            assert!(
                rep.detail.iter().any(|&(k, _)| k == key),
                "detail key {key} missing"
            );
        }
        let get = |key| rep.detail.iter().find(|&&(k, _)| k == key).unwrap().1;
        assert_eq!(get("updates_applied"), total_batches);
        assert_eq!(get("publishes"), total_batches);
        // Disconnected corpus + random churn must exercise real update
        // traffic: at least one part changed across the run.
        assert!(get("dirty_total") > 0, "no batch touched anything");
    }

    #[test]
    fn distlabel_cell_on_multi_component() {
        let rep = DistLabelPipeline
            .run(&tiny("test/multi", Family::MultiComponent { n: 40 }))
            .unwrap();
        assert!(rep.components >= 4);
        assert!(rep.checked > 0);
        assert!(rep
            .detail
            .iter()
            .any(|&(k, v)| k == "label_words_total" && v > 0));
    }

    #[test]
    fn maxflow_cell_on_grid() {
        let rep = MaxflowPipeline
            .run(&tiny("test/grid", Family::Grid { rows: 4, cols: 5 }))
            .unwrap();
        let get = |key| rep.detail.iter().find(|&&(k, _)| k == key).unwrap().1;
        // 3 random pairs + the adjacent pair, all oracle-checked.
        assert_eq!(get("pairs"), 4);
        assert_eq!(rep.checked, 4);
        // The adjacent pair must have agreed on ∞ on both sides.
        assert!(get("inf_pairs") >= 1);
        // The random non-adjacent pairs must have produced finite flow.
        assert!(get("flow_total") > 0);
        assert!(get("cap_max") >= 1);
        assert!(rep.metrics.rounds > 0, "the batched MVC must be charged");
    }

    #[test]
    fn counting_cell_on_ring_of_cliques() {
        let rep = CountingPipeline
            .run(&tiny(
                "test/ring",
                Family::RingOfCliques {
                    cliques: 4,
                    size: 4,
                },
            ))
            .unwrap();
        let get = |key| rep.detail.iter().find(|&&(k, _)| k == key).unwrap().1;
        // Each K4 holds 4 triangles; the ring edges add no new ones.
        assert_eq!(get("triangles"), 16);
        // c3 cross-check + 3 per-component + 3 full-graph comparisons.
        assert_eq!(rep.checked, 1 + 3 + 3);
        assert!(get("bag_triples_scanned") > 0);
        assert!(rep.metrics.rounds > 0, "the walk spectrum must be charged");
    }

    #[test]
    fn counting_cell_on_multi_component_sums_parts() {
        let rep = CountingPipeline
            .run(&tiny("test/multi", Family::MultiComponent { n: 40 }))
            .unwrap();
        assert!(rep.components >= 4);
        // The final full-graph oracle comparison ran on top of the parts.
        assert!(rep.checked >= 3);
    }

    #[test]
    fn fo_cell_on_multi_component() {
        let rep = FoPipeline
            .run(&tiny("test/multi", Family::MultiComponent { n: 40 }))
            .unwrap();
        assert!(rep.components >= 4);
        assert_eq!(rep.checked, FO_SENTENCES);
        let get = |key| rep.detail.iter().find(|&&(k, _)| k == key).unwrap().1;
        assert_eq!(get("sentences"), FO_SENTENCES as u64);
        // Template 0 (∃x∃y adj) is true on any graph with an edge, and a
        // disconnected graph falsifies the ∀∃-connectivity template — the
        // corpus must exercise both verdicts.
        assert!(get("verdicts_true") >= 1);
        assert!(get("verdicts_true") < FO_SENTENCES as u64);
        assert!(get("dist_pairs") > 0);
        assert!(rep.metrics.rounds > 0, "the hop flood must be charged");
    }
}
