//! The wire-vs-in-process differential suite: every answer `servd` hands
//! back over a loopback socket must be bit-identical to the in-process
//! `labelserve` engine on the same store, across every cell of the
//! scenario corpus. `serve_differential` pins compaction/sharding/caching
//! against the Dijkstra oracle; this suite pins the *wire* — framing,
//! request decode, response encode, per-connection epoch pinning — so a
//! failure here localizes to `servd` rather than the serving layer.

use lowtw::labelserve::{self, StoreBuilder, StoreLayout, VersionedEngine};
use lowtw::prelude::*;
use scenarios::{corpus, runner, split_components, Scenario};
use std::sync::Arc;

/// Compact one scenario into a versioned engine the way the harness does
/// (per-component centralized labeling), with shards small enough to
/// cross shard boundaries on every workload.
fn versioned_for(sc: &Scenario, layout: StoreLayout) -> Arc<VersionedEngine> {
    let g = sc.graph();
    let inst = sc.instance();
    let parts = split_components(&g, &inst);
    let mut builder = StoreBuilder::new(g.n());
    for (ci, part) in parts.iter().enumerate() {
        if part.graph.n() == 1 {
            builder.add_singleton(part.old_of[0]).unwrap();
            continue;
        }
        let out = runner::decompose_part(part, sc.t0, sc.seed, ci)
            .unwrap_or_else(|e| panic!("{}: decomposition failed: {e}", sc.name));
        let labels = distlabel::build_labels_centralized(&part.inst, &out.td, &out.info);
        builder.add_component(&labels, &part.old_of).unwrap();
    }
    let cfg = ServeConfig {
        shard_size: (g.n() / 5).max(1),
        cache_capacity: 64,
        layout,
    };
    let store = builder.build_layout(cfg.shard_size, layout).unwrap();
    Arc::new(VersionedEngine::new(store, cfg))
}

#[test]
fn wire_answers_match_in_process_on_every_corpus_cell() {
    // Alternate store layouts across cells: the wire must be layout-blind,
    // so both the flat and the packed arena go over the socket here.
    for (i, sc) in corpus().into_iter().enumerate() {
        let layout = if i % 2 == 0 {
            StoreLayout::Packed
        } else {
            StoreLayout::Flat
        };
        let engine = versioned_for(&sc, layout);
        let server = Server::spawn(
            Arc::clone(&engine),
            ("127.0.0.1", 0),
            ServdConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{}: server spawn failed: {e}", sc.name));
        let mut client = Client::connect(server.local_addr()).unwrap();
        let n = engine.snapshot().engine().store().n();
        let queries = labelserve::seeded_queries(
            n,
            &labelserve::WorkloadSpec {
                queries: 1_000,
                hot_pairs: 16,
                hot_fraction: 0.8,
            },
            sc.seed,
        );
        // Single-query opcode over a prefix, batch opcode over the whole
        // stream — both must agree bit-for-bit with the local engine.
        for &(s, t) in queries.iter().take(100) {
            assert_eq!(
                client.distance(s, t).unwrap(),
                engine.distance(s, t).unwrap(),
                "{}: wire({s}, {t}) diverged",
                sc.name
            );
        }
        assert_eq!(
            client.batch(&queries).unwrap(),
            engine.batch(&queries).unwrap(),
            "{}: batched wire answers diverged",
            sc.name
        );
        assert_eq!(client.epoch().unwrap(), 0, "{}", sc.name);
        let stats = server.shutdown();
        assert_eq!(
            (stats.malformed, stats.overloads, stats.rejected_batches),
            (0, 0, 0),
            "{}: protocol errors on a clean workload",
            sc.name
        );
        assert_eq!(stats.queries, 100 + queries.len() as u64, "{}", sc.name);
    }
}

#[test]
fn serve_net_facade_round_trips_against_the_oracle() {
    let n = 300;
    let g = twgraph::gen::partial_ktree(n, 2, 0.7, 11);
    let inst = twgraph::gen::with_random_weights(&g, 30, 11);
    let session = Session::decompose(&g, 3, 11).unwrap();
    let server = session
        .serve_net(
            &inst,
            ServeConfig {
                shard_size: 64,
                cache_capacity: 128,
                ..ServeConfig::default()
            },
            ("127.0.0.1", 0),
            ServdConfig::default(),
        )
        .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for u in [0u32, 37, 150, 299] {
        let oracle = baselines::sssp_oracle(&inst, u);
        let row: Vec<(u32, u32)> = (0..n as u32).map(|v| (u, v)).collect();
        assert_eq!(client.batch(&row).unwrap(), oracle, "source {u}");
    }
    // Out-of-range ids travel back as typed wire errors, not hangups.
    assert!(client.distance(n as u32, 0).is_err());
    assert_eq!(client.distance(0, 0).unwrap(), 0);
    server.shutdown();
}
