//! Membership-stamped subgraph views: O(1)-membership, zero-copy induced
//! subgraphs for recursive algorithms.
//!
//! A recursion that repeatedly restricts a graph to vertex subsets (the
//! balanced-separator recursion of the paper's §3.4 being the archetype)
//! must not clone adjacency or allocate per-subproblem hash sets — at
//! n = 10⁵ that is the difference between seconds and minutes. The tools
//! here keep all per-vertex state in flat arrays owned by the caller:
//!
//! * [`StampSet`] — a generation-stamped vertex → tag map. Clearing is one
//!   integer increment; membership tests and tag lookups are one array
//!   read. The classic epoch-stamp idiom, sized once for the whole run.
//! * [`SubgraphView`] — a borrowed `(graph, member list, stamp)` triple
//!   representing the induced subgraph over the stamped vertices, with
//!   filtered neighbour iteration and scratch-buffer component search.
//!
//! Both are index-space views: the vertex ids of the host graph remain
//! valid, so results never need translation back.

use crate::ugraph::UGraph;
use std::collections::VecDeque;

/// A reusable vertex-set-with-tags over a fixed vertex universe, cleared in
/// O(1) by bumping a generation counter.
#[derive(Clone, Debug)]
pub struct StampSet {
    epoch: Vec<u64>,
    tag: Vec<u32>,
    cur: u64,
}

impl StampSet {
    /// An empty set over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        StampSet {
            epoch: vec![0; n],
            tag: vec![0; n],
            cur: 1,
        }
    }

    /// Vertex universe size.
    pub fn universe(&self) -> usize {
        self.epoch.len()
    }

    /// Remove every vertex (O(1): the old generation becomes unreadable).
    pub fn clear(&mut self) {
        self.cur += 1;
    }

    /// Insert `v` with an associated `tag` (overwrites a previous tag).
    #[inline]
    pub fn insert(&mut self, v: u32, tag: u32) {
        self.epoch[v as usize] = self.cur;
        self.tag[v as usize] = tag;
    }

    /// Remove `v` (cheap point removal, unlike [`clear`](Self::clear)).
    #[inline]
    pub fn remove(&mut self, v: u32) {
        self.epoch[v as usize] = 0;
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.epoch[v as usize] == self.cur
    }

    /// The tag of `v`, if present.
    #[inline]
    pub fn tag(&self, v: u32) -> Option<u32> {
        if self.contains(v) {
            Some(self.tag[v as usize])
        } else {
            None
        }
    }
}

/// A zero-copy view of the subgraph of `graph` induced by `members` (all
/// stamped into `set` with the same tag by the caller). The member list is
/// expected sorted; vertices keep their host-graph ids.
#[derive(Clone, Copy)]
pub struct SubgraphView<'a> {
    /// The host graph.
    pub graph: &'a UGraph,
    /// Sorted member vertices (host ids).
    pub members: &'a [u32],
    set: &'a StampSet,
}

impl<'a> SubgraphView<'a> {
    /// Assemble a view. The caller guarantees `set.contains(v)` exactly for
    /// the vertices of `members` (typically one [`StampSet`] holds every
    /// sibling subproblem of a recursion level, distinguished by tag).
    pub fn new(graph: &'a UGraph, members: &'a [u32], set: &'a StampSet) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(members.iter().all(|&v| set.contains(v)));
        SubgraphView {
            graph,
            members,
            set,
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.set.contains(v)
    }

    /// Neighbours of `v` inside the view (filtered host adjacency).
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| self.set.contains(w))
    }

    /// Connected components of the view, each sorted, appended to `out`.
    /// `visited` and `queue` are caller-owned scratch (cleared here), so a
    /// recursion reuses them across every level instead of allocating
    /// O(n) per subproblem.
    pub fn components_into(
        &self,
        visited: &mut StampSet,
        queue: &mut VecDeque<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        visited.clear();
        queue.clear();
        for &s in self.members {
            if visited.contains(s) {
                continue;
            }
            let mut comp = vec![s];
            visited.insert(s, 0);
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for w in self.neighbors(u) {
                    if !visited.contains(w) {
                        visited.insert(w, 0);
                        comp.push(w);
                        queue.push_back(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
    }

    /// Connected components (allocating convenience wrapper).
    pub fn components(&self) -> Vec<Vec<u32>> {
        let mut visited = StampSet::new(self.graph.n());
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        self.components_into(&mut visited, &mut queue, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stamp_set_basics() {
        let mut s = StampSet::new(8);
        assert!(!s.contains(3));
        s.insert(3, 7);
        s.insert(5, 9);
        assert_eq!(s.tag(3), Some(7));
        assert_eq!(s.tag(5), Some(9));
        assert_eq!(s.tag(4), None);
        s.remove(3);
        assert!(!s.contains(3));
        s.clear();
        assert!(!s.contains(5));
        s.insert(5, 1);
        assert_eq!(s.tag(5), Some(1));
    }

    #[test]
    fn view_filters_neighbors() {
        let g = gen::cycle(6);
        let members = [0u32, 1, 2, 3];
        let mut set = StampSet::new(6);
        for &v in &members {
            set.insert(v, 0);
        }
        let view = SubgraphView::new(&g, &members, &set);
        assert!(view.contains(2));
        assert!(!view.contains(4));
        let n1: Vec<u32> = view.neighbors(0).collect();
        assert_eq!(n1, vec![1]); // 5 is outside the view
        let n2: Vec<u32> = view.neighbors(2).collect();
        assert_eq!(n2, vec![1, 3]);
    }

    #[test]
    fn view_components_match_induced() {
        // Cycle of 8 minus {0, 4} → two paths.
        let g = gen::cycle(8);
        let members: Vec<u32> = (0..8).filter(|&v| v != 0 && v != 4).collect();
        let mut set = StampSet::new(8);
        for &v in &members {
            set.insert(v, 0);
        }
        let view = SubgraphView::new(&g, &members, &set);
        let comps = view.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![1, 2, 3]);
        assert_eq!(comps[1], vec![5, 6, 7]);
    }

    #[test]
    fn scratch_reuse_across_levels() {
        let g = gen::grid(4, 4);
        let mut visited = StampSet::new(16);
        let mut queue = VecDeque::new();
        let mut set = StampSet::new(16);

        // Level 1: the whole grid is one component.
        let all: Vec<u32> = (0..16).collect();
        for &v in &all {
            set.insert(v, 0);
        }
        let mut out = Vec::new();
        SubgraphView::new(&g, &all, &set).components_into(&mut visited, &mut queue, &mut out);
        assert_eq!(out.len(), 1);

        // Level 2 (same scratch): drop the second row → two components.
        set.clear();
        let members: Vec<u32> = (0..16).filter(|&v| !(4..8).contains(&v)).collect();
        for &v in &members {
            set.insert(v, 1);
        }
        let mut out2 = Vec::new();
        SubgraphView::new(&g, &members, &set).components_into(&mut visited, &mut queue, &mut out2);
        assert_eq!(out2.len(), 2);
        assert_eq!(out2[0], vec![0, 1, 2, 3]);
        assert_eq!(out2[1], (8..16).collect::<Vec<u32>>());
    }
}
