//! A span-tracking parser for the TOML subset the experiment specs use.
//!
//! Supported grammar (one construct per line): `# comments`, blank lines,
//! `[table.path]` headers, `[[array.path]]` array-of-tables headers, and
//! `key = value` pairs whose values are strings, integers, floats,
//! booleans, or single-line arrays of those. Every key and value carries
//! its source line/column so semantic validation in [`crate::lab::spec`]
//! can point at the offending token (`engine.toml:12:9: unknown pipeline
//! "ssp"`), not just fail.

use std::fmt;

/// Source position of a token (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub line: usize,
    pub col: usize,
}

impl Default for Span {
    fn default() -> Span {
        Span { line: 1, col: 1 }
    }
}

/// A value with the position it was parsed from.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned<T> {
    pub span: Span,
    pub value: T,
}

/// A parsed TOML scalar or single-line array.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Spanned<TomlValue>>),
}

impl TomlValue {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }
}

/// One table entry: a plain value, a sub-table, or an array of tables.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    Value(Spanned<TomlValue>),
    Table(Table),
    ArrayOfTables(Vec<Table>),
}

/// A (sub-)table: ordered key → item entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Position of the table header (or 1:1 for the root).
    pub span: Span,
    pub entries: Vec<(Spanned<String>, Item)>,
}

impl Table {
    /// Look up a direct entry by key.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries
            .iter()
            .find(|(k, _)| k.value == key)
            .map(|(_, item)| item)
    }

    /// The key spans of all direct entries (for unknown-key sweeps).
    pub fn keys(&self) -> impl Iterator<Item = &Spanned<String>> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// A direct sub-table, if present and actually a table.
    pub fn table(&self, key: &str) -> Option<&Table> {
        match self.get(key) {
            Some(Item::Table(t)) => Some(t),
            _ => None,
        }
    }

    /// A direct array-of-tables, if present.
    pub fn array_of_tables(&self, key: &str) -> Option<&[Table]> {
        match self.get(key) {
            Some(Item::ArrayOfTables(ts)) => Some(ts),
            _ => None,
        }
    }

    /// A direct scalar value, if present.
    pub fn value(&self, key: &str) -> Option<&Spanned<TomlValue>> {
        match self.get(key) {
            Some(Item::Value(v)) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure with its source position.
#[derive(Debug)]
pub struct TomlError {
    pub span: Span,
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err(span: Span, msg: impl Into<String>) -> TomlError {
    TomlError {
        span,
        msg: msg.into(),
    }
}

/// Parse a spec document into its root table.
pub fn parse(src: &str) -> Result<Table, TomlError> {
    let mut root = Table {
        span: Span { line: 1, col: 1 },
        entries: Vec::new(),
    };
    // Path of the table new `key = value` lines land in; empty = root.
    let mut current: Vec<String> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw);
        let trimmed = line.trim_end();
        let indent = trimmed.len() - trimmed.trim_start().len();
        let body = trimmed.trim_start();
        if body.is_empty() {
            continue;
        }
        let at = |col: usize| Span {
            line: line_no,
            col: col + 1,
        };
        if let Some(rest) = body.strip_prefix("[[") {
            let end = rest
                .find("]]")
                .ok_or_else(|| err(at(indent), "unclosed [[table]] header"))?;
            if !rest[end + 2..].trim().is_empty() {
                return Err(err(
                    at(indent),
                    "trailing characters after [[table]] header",
                ));
            }
            let path = parse_path(&rest[..end], at(indent + 2))?;
            append_array_table(&mut root, &path, at(indent))?;
            current = path;
        } else if let Some(rest) = body.strip_prefix('[') {
            let end = rest
                .find(']')
                .ok_or_else(|| err(at(indent), "unclosed [table] header"))?;
            if !rest[end + 1..].trim().is_empty() {
                return Err(err(at(indent), "trailing characters after [table] header"));
            }
            let path = parse_path(&rest[..end], at(indent + 1))?;
            open_table(&mut root, &path, at(indent))?;
            current = path;
        } else {
            let eq = body
                .find('=')
                .ok_or_else(|| err(at(indent), "expected `key = value`"))?;
            let key = body[..eq].trim();
            if key.is_empty() {
                return Err(err(at(indent), "empty key before `=`"));
            }
            if !is_bare_key(key) {
                return Err(err(
                    at(indent),
                    format!("key {key:?} must be bare ([A-Za-z0-9_-])"),
                ));
            }
            let val_off = indent + eq + 1 + count_leading_ws(&body[eq + 1..]);
            let val_src = body[eq + 1..].trim();
            if val_src.is_empty() {
                return Err(err(at(val_off), "missing value after `=`"));
            }
            let value = parse_value(val_src, at(val_off))?;
            let table = navigate_mut(&mut root, &current);
            let key_span = Spanned {
                span: at(indent),
                value: key.to_string(),
            };
            if table.get(key).is_some() {
                return Err(err(at(indent), format!("duplicate key {key:?}")));
            }
            table.entries.push((key_span, Item::Value(value)));
        }
    }
    Ok(root)
}

/// Strip a trailing `#` comment, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn count_leading_ws(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_path(src: &str, span: Span) -> Result<Vec<String>, TomlError> {
    let parts: Vec<&str> = src.split('.').map(str::trim).collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return Err(err(span, format!("malformed table path {src:?}")));
    }
    Ok(parts.into_iter().map(String::from).collect())
}

/// Walk `path` from the root, creating missing tables; the final segment
/// must not already exist as a value. Re-opening an existing table is an
/// error (each `[header]` may appear once), matching TOML.
fn open_table(root: &mut Table, path: &[String], span: Span) -> Result<(), TomlError> {
    let parent = navigate_create(root, &path[..path.len() - 1], span)?;
    let last = &path[path.len() - 1];
    match parent.get(last) {
        None => {
            let key = Spanned {
                span,
                value: last.clone(),
            };
            parent.entries.push((
                key,
                Item::Table(Table {
                    span,
                    entries: Vec::new(),
                }),
            ));
            Ok(())
        }
        Some(Item::Table(_)) => Err(err(span, format!("table [{}] reopened", path.join(".")))),
        Some(_) => Err(err(
            span,
            format!("[{}] conflicts with an existing key", path.join(".")),
        )),
    }
}

/// Append a fresh table to the array-of-tables at `path`.
fn append_array_table(root: &mut Table, path: &[String], span: Span) -> Result<(), TomlError> {
    let parent = navigate_create(root, &path[..path.len() - 1], span)?;
    let last = &path[path.len() - 1];
    let fresh = Table {
        span,
        entries: Vec::new(),
    };
    match parent
        .entries
        .iter_mut()
        .find(|(k, _)| k.value == *last)
        .map(|(_, item)| item)
    {
        None => {
            let key = Spanned {
                span,
                value: last.clone(),
            };
            parent.entries.push((key, Item::ArrayOfTables(vec![fresh])));
            Ok(())
        }
        Some(Item::ArrayOfTables(ts)) => {
            ts.push(fresh);
            Ok(())
        }
        Some(_) => Err(err(
            span,
            format!("[[{}]] conflicts with an existing key", path.join(".")),
        )),
    }
}

/// Navigate to `path`, creating intermediate tables as needed. Descends
/// into the last element of an array-of-tables, as TOML dotted headers do.
fn navigate_create<'a>(
    root: &'a mut Table,
    path: &[String],
    span: Span,
) -> Result<&'a mut Table, TomlError> {
    let mut cur = root;
    for seg in path {
        let missing = cur.get(seg).is_none();
        if missing {
            let key = Spanned {
                span,
                value: seg.clone(),
            };
            cur.entries.push((
                key,
                Item::Table(Table {
                    span,
                    entries: Vec::new(),
                }),
            ));
        }
        let item = cur
            .entries
            .iter_mut()
            .find(|(k, _)| k.value == *seg)
            .map(|(_, item)| item)
            .unwrap();
        cur = match item {
            Item::Table(t) => t,
            Item::ArrayOfTables(ts) => ts.last_mut().unwrap(),
            Item::Value(_) => {
                return Err(err(span, format!("{seg:?} is a value, not a table")));
            }
        };
    }
    Ok(cur)
}

/// Navigate to an existing path (always created beforehand by headers).
fn navigate_mut<'a>(root: &'a mut Table, path: &[String]) -> &'a mut Table {
    let mut cur = root;
    for seg in path {
        let item = cur
            .entries
            .iter_mut()
            .find(|(k, _)| k.value == *seg)
            .map(|(_, item)| item)
            .expect("header navigation created this path");
        cur = match item {
            Item::Table(t) => t,
            Item::ArrayOfTables(ts) => ts.last_mut().unwrap(),
            Item::Value(_) => unreachable!("headers cannot shadow values"),
        };
    }
    cur
}

/// Parse one value expression (whole remaining line, already trimmed).
fn parse_value(src: &str, span: Span) -> Result<Spanned<TomlValue>, TomlError> {
    let (v, used) = parse_value_prefix(src, span)?;
    if !src[used..].trim().is_empty() {
        return Err(err(
            span,
            format!("trailing characters after value: {src:?}"),
        ));
    }
    Ok(v)
}

/// Parse a value at the start of `src`; returns it and the bytes consumed.
fn parse_value_prefix(src: &str, span: Span) -> Result<(Spanned<TomlValue>, usize), TomlError> {
    let spanned = |value| Spanned { span, value };
    if let Some(rest) = src.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((spanned(TomlValue::Str(out)), 1 + i + 1)),
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => {
                        return Err(err(
                            span,
                            format!("unsupported string escape {:?}", other.map(|(_, c)| c)),
                        ))
                    }
                },
                c => out.push(c),
            }
        }
        return Err(err(span, "unterminated string"));
    }
    if let Some(rest) = src.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        let mut off = src.len() - rest.len();
        loop {
            if let Some(after) = rest.strip_prefix(']') {
                let _ = after;
                return Ok((spanned(TomlValue::Array(items)), off + 1));
            }
            let item_span = Span {
                line: span.line,
                col: span.col + off,
            };
            let (item, used) = parse_value_prefix(rest, item_span)?;
            items.push(item);
            rest = &rest[used..];
            off = src.len() - rest.len();
            let trimmed = rest.trim_start();
            off += rest.len() - trimmed.len();
            rest = trimmed;
            if let Some(after) = rest.strip_prefix(',') {
                let trimmed = after.trim_start();
                off += 1 + (after.len() - trimmed.len());
                rest = trimmed;
            } else if !rest.starts_with(']') {
                return Err(err(span, "expected ',' or ']' in array"));
            }
        }
    }
    // Bare scalar: runs to the next delimiter.
    let end = src.find([',', ']']).unwrap_or(src.len());
    let word = src[..end].trim();
    let used = src[..end].len() - (src[..end].len() - src[..end].trim_end().len());
    let value = match word {
        "true" => TomlValue::Bool(true),
        "false" => TomlValue::Bool(false),
        _ => {
            let clean = word.replace('_', "");
            if let Ok(i) = clean.parse::<i64>() {
                TomlValue::Int(i)
            } else if let Ok(f) = clean.parse::<f64>() {
                TomlValue::Float(f)
            } else {
                return Err(err(span, format!("malformed value {word:?}")));
            }
        }
    };
    Ok((spanned(value), used))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
name = "engine"   # a comment
reps = 2
keep = 0.5
big = 1_000_000
on = true
tags = ["a", "b"]

[params]
n = 100

[profile.quick]
n = 10

[[variant]]
name = "flat"

[[variant]]
name = "packed"
nums = [1, 2, 3]
"#;
        let t = parse(doc).unwrap();
        assert_eq!(
            t.value("name").unwrap().value,
            TomlValue::Str("engine".into())
        );
        assert_eq!(t.value("reps").unwrap().value, TomlValue::Int(2));
        assert_eq!(t.value("keep").unwrap().value, TomlValue::Float(0.5));
        assert_eq!(t.value("big").unwrap().value, TomlValue::Int(1_000_000));
        assert_eq!(t.value("on").unwrap().value, TomlValue::Bool(true));
        match &t.value("tags").unwrap().value {
            TomlValue::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            t.table("params").unwrap().value("n").unwrap().value,
            TomlValue::Int(100)
        );
        assert_eq!(
            t.table("profile")
                .unwrap()
                .table("quick")
                .unwrap()
                .value("n")
                .unwrap()
                .value,
            TomlValue::Int(10)
        );
        let variants = t.array_of_tables("variant").unwrap();
        assert_eq!(variants.len(), 2);
        assert_eq!(
            variants[1].value("name").unwrap().value,
            TomlValue::Str("packed".into())
        );
    }

    #[test]
    fn spans_point_at_the_token() {
        let doc = "a = 1\n\n[sect]\nkey = \"v\"\n";
        let t = parse(doc).unwrap();
        // Value spans point at the value token, not the key.
        assert_eq!(t.value("a").unwrap().span, Span { line: 1, col: 5 });
        let sect = t.table("sect").unwrap();
        assert_eq!(sect.span, Span { line: 3, col: 1 });
        assert_eq!(sect.value("key").unwrap().span, Span { line: 4, col: 7 });
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, line) in [
            ("novalue", 1),
            ("k = ", 1),
            ("k = \"unterminated", 1),
            ("[unclosed", 1),
            ("x = 1\nx = 2", 2),
            ("k = [1, ", 1),
            ("k = what", 1),
            ("[t]\n[t]", 2),
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.span.line, line, "wrong line for {bad:?}: {e}");
        }
    }

    #[test]
    fn comments_respect_strings() {
        let t = parse("k = \"a # b\" # real comment\n").unwrap();
        assert_eq!(t.value("k").unwrap().value, TomlValue::Str("a # b".into()));
    }
}
