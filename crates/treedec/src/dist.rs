//! Distributed tree decomposition (paper Theorem 1, Appendix B.2–B.3).
//!
//! All recursion-level subgraphs {G'_x | x ∈ A_ℓ} are vertex disjoint and
//! mutually non-adjacent, so one CONGEST execution processes the whole
//! level: every data movement — counting µ, leader election, spanning-tree
//! construction (RST), subtree sizing for `Split` (STA), component
//! detection (CCD), component measures (PA) and the sampled-pair vertex
//! cuts (MVC) — runs through the charged simulator primitives, batched
//! across parts in shared supersteps. Control decisions (loop advancement,
//! balance verdicts) are orchestrated centrally and charged as O(height)
//! control pulses per phase (DESIGN.md §4.4).

use crate::config::SepConfig;
use crate::decomp::{components_of, NodeInfo};
use crate::sep::SepPath;
use crate::split::{split_to_completion, STree};
use congest_sim::Network;
use rand::Rng;
use std::collections::HashMap;
use subgraph_ops::ccd;
use subgraph_ops::global::{build_global_tree, GlobalTree};
use subgraph_ops::mvc::{batch_min_vertex_cut, CutInstance, CutResult};
use subgraph_ops::pa;
use subgraph_ops::{bfs::part_bfs_trees, Parts, TreeRoles};

/// Result of the distributed decomposition.
#[derive(Clone, Debug)]
pub struct DistDecompOutcome {
    /// The tree decomposition.
    pub td: twgraph::tw::TreeDecomposition,
    /// Recursion records aligned with tree node ids.
    pub info: Vec<NodeInfo>,
    /// The largest `t` used.
    pub t_used: u64,
    /// Total charged rounds for the construction (excluding the global
    /// tree build, reported separately).
    pub rounds: u64,
    /// Rounds spent building the global BFS backbone.
    pub backbone_rounds: u64,
}

/// One level item: a pending G'_x with its tree parent and boundary.
struct Work {
    parent: Option<usize>,
    gpx: Vec<u32>,
    inherited: Vec<u32>,
}

/// Outcome of one batched Sep attempt for one item.
enum ItemSep {
    Done { separator: Vec<u32>, path: SepPath },
    Failed,
}

/// Execute upflow/downflow traffic equivalent to one STA + total-share pass
/// over the given split trees (the real flows `Split` needs per round:
/// subtree sizes up, totals down).
fn charge_split_flows(net: &mut Network, trees: &[(u32, &STree)], mu: &[u64]) {
    if trees.is_empty() {
        return;
    }
    let n = net.n();
    let maps: Vec<(u32, Vec<(u32, u32, bool)>)> = trees
        .iter()
        .map(|&(pid, tr)| {
            (
                pid,
                tr.nodes.iter().map(|&(v, p)| (v, p, false)).collect(),
            )
        })
        .collect();
    let roles = TreeRoles::from_parent_maps(n, maps);
    let shared = pa::aggregate_and_share(net, &roles, |v, _p| Some(mu[v as usize]), |a, b| a + b);
    let _ = shared;
}

/// µ totals per compacted component id (distributed CCD + PA), plus the
/// per-node component assignment. `active` selects the vertices still in
/// play; `mu` is the measure.
fn component_measures(
    net: &mut Network,
    gtree: &GlobalTree,
    active: &[bool],
    mu: &[u64],
) -> (Vec<Option<u32>>, Vec<u64>) {
    let labels = ccd::detect(net, active, |_, _| true);
    let (ids, count) = ccd::compact_labels(&labels);
    if count == 0 {
        return (ids, Vec::new());
    }
    let parts = Parts::from_labels(&ids);
    let roles = pa::steiner_roles(gtree, &parts);
    let up = pa::aggregate(net, &roles, |v, _p| Some(mu[v as usize]), |a, b| a + b);
    let mut totals = vec![0u64; count];
    for (p, total) in up.roots {
        totals[p as usize] = total;
    }
    gtree.charge_control_pulse(net);
    (ids, totals)
}

/// One batched Sep attempt at a fixed `t` across all `items` (each a
/// connected, mutually non-adjacent vertex set). Returns per-item results.
#[allow(clippy::too_many_arguments)]
fn batched_sep_attempt(
    net: &mut Network,
    gtree: &GlobalTree,
    g: &twgraph::UGraph,
    items: &[&Vec<u32>],
    t: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> Vec<ItemSep> {
    let n = net.n();
    let n_items = items.len();
    let mu: Vec<u64> = {
        let mut m = vec![0u64; n];
        for it in items {
            for &v in it.iter() {
                m[v as usize] = 1;
            }
        }
        m
    };

    // µ(G'_x) per item via PA over the item parts (real flow).
    let item_parts = {
        let mut member_lists = vec![Vec::new(); n];
        for (i, it) in items.iter().enumerate() {
            for &v in it.iter() {
                member_lists[v as usize].push(i as u32);
            }
        }
        Parts::from_lists(n_items as u32, member_lists)
    };
    let item_roles = pa::steiner_roles(gtree, &item_parts);
    let up = pa::aggregate(net, &item_roles, |v, _p| Some(mu[v as usize]), |a, b| a + b);
    let mut mu_g = vec![0u64; n_items];
    for (p, total) in up.roots {
        mu_g[p as usize] = total;
    }
    gtree.charge_control_pulse(net);

    let mut result: Vec<Option<ItemSep>> = (0..n_items).map(|_| None).collect();
    // Step 1 short-circuit.
    for i in 0..n_items {
        if mu_g[i] <= cfg.small_cutoff * t * t {
            result[i] = Some(ItemSep::Done {
                separator: items[i].clone(),
                path: SepPath::Small,
            });
        }
    }

    // Iterations: harvest split-tree roots, lockstep across items.
    let iters = cfg.iterations(t);
    let mut cur: Vec<Vec<u32>> = items.iter().map(|it| (*it).clone()).collect(); // G_i members
    let mut removed = vec![false; n]; // ⋃ R* over all items (disjoint parts)
    let mut r_star: Vec<Vec<u32>> = vec![Vec::new(); n_items];
    let mut tis: Vec<Vec<STree>> = vec![Vec::new(); n_items]; // all split trees per item
    for _i in 1..=iters {
        let live: Vec<usize> = (0..n_items)
            .filter(|&i| result[i].is_none() && !cur[i].is_empty())
            .collect();
        if live.is_empty() {
            break;
        }
        // RST per live item's current G_i (batched). Roots: minimum member
        // (a real run elects via SLE — charge one pulse).
        let mut member_lists = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (slot, &i) in live.iter().enumerate() {
            for &v in &cur[i] {
                member_lists[v as usize].push(slot as u32);
            }
            roots.push((slot as u32, cur[i][0]));
        }
        let parts = Parts::from_lists(live.len() as u32, member_lists);
        gtree.charge_control_pulse(net);
        let trees = part_bfs_trees(net, &parts, &roots);

        // Split (centralized control over node-reported structure, with the
        // STA/total flows charged per split round — DESIGN.md §4.4).
        let split_rounds = (t.max(2)).ilog2() as usize + 2;
        for (slot, &i) in live.iter().enumerate() {
            let stree = stree_from_roles(&trees, slot as u32, roots[slot].1);
            for _ in 0..split_rounds {
                charge_split_flows(net, &[(slot as u32, &stree)], &mu);
            }
            let ti = split_to_completion(stree, &mu, mu_g[i], t, cfg);
            let mut ri: Vec<u32> = ti.iter().map(|tr| tr.root).collect();
            ri.sort_unstable();
            ri.dedup();
            for &r in &ri {
                if !removed[r as usize] {
                    removed[r as usize] = true;
                    r_star[i].push(r);
                }
            }
            tis[i].extend(ti);
        }

        // Balance check of R* per item + next G_{i+1} via CCD/PA.
        let active: Vec<bool> = (0..n)
            .map(|v| mu[v] > 0 && !removed[v] && items.iter().any(|it| it.binary_search(&(v as u32)).is_ok()))
            .collect();
        let (ids, totals) = component_measures(net, gtree, &active, &mu);
        // Assign components to items (components lie inside one item).
        let mut comp_item: HashMap<u32, usize> = HashMap::new();
        for v in 0..n {
            if let Some(c) = ids[v] {
                if let std::collections::hash_map::Entry::Vacant(e) = comp_item.entry(c) {
                    let i = items
                        .iter()
                        .position(|it| it.binary_search(&(v as u32)).is_ok())
                        .unwrap();
                    e.insert(i);
                }
            }
        }
        for &i in &live {
            let largest = comp_item
                .iter()
                .filter(|&(_, &it)| it == i)
                .map(|(&c, _)| totals[c as usize])
                .max()
                .unwrap_or(0);
            if cfg.is_balanced(largest, mu_g[i]) {
                let mut sep = r_star[i].clone();
                sep.sort_unstable();
                result[i] = Some(ItemSep::Done {
                    separator: sep,
                    path: SepPath::Roots(_i),
                });
            } else {
                // G_{i+1} = heaviest component of G_i − R_i within item i.
                let best_comp = comp_item
                    .iter()
                    .filter(|&(_, &it)| it == i)
                    .max_by_key(|&(&c, _)| (totals[c as usize], u32::MAX - c))
                    .map(|(&c, _)| c);
                cur[i] = match best_comp {
                    Some(c) => (0..n as u32)
                        .filter(|&v| ids[v as usize] == Some(c) && cur[i].binary_search(&v).is_ok())
                        .collect(),
                    None => Vec::new(),
                };
                if cur[i].is_empty() {
                    let mut sep = r_star[i].clone();
                    sep.sort_unstable();
                    result[i] = Some(ItemSep::Done {
                        separator: sep,
                        path: SepPath::Roots(_i),
                    });
                }
            }
        }
    }

    // Step 4: sampled-pair vertex cuts for the still-open items.
    for _trial in 0..cfg.trials.max(1) {
        let open: Vec<usize> = (0..n_items).filter(|&i| result[i].is_none()).collect();
        if open.is_empty() {
            break;
        }
        let mut instances = Vec::new();
        let mut owner = Vec::new();
        for &i in &open {
            let ti = &tis[i];
            if ti.len() < 2 {
                continue;
            }
            for _ in 0..cfg.sampled_pairs * cfg.iterations(t) as usize {
                let a = rng.gen_range(0..ti.len());
                let b = rng.gen_range(0..ti.len());
                if a == b {
                    continue;
                }
                let mut xs = ti[a].members();
                let mut ys = ti[b].members();
                xs.sort_unstable();
                ys.sort_unstable();
                instances.push(CutInstance {
                    members: Some(items[i].clone()),
                    sources: xs,
                    sinks: ys,
                });
                owner.push(i);
            }
        }
        let cuts = batch_min_vertex_cut(net, &instances, t as usize);
        let mut z: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for (k, cut) in cuts.into_iter().enumerate() {
            if let CutResult::Cut(c) = cut {
                z[owner[k]].extend(c);
            }
        }
        // Balance check for Z (and union fallback) via CCD/PA.
        for &i in &open {
            z[i].sort_unstable();
            z[i].dedup();
            let check = |sep: &Vec<u32>, net: &mut Network| -> bool {
                let active: Vec<bool> = (0..n as u32)
                    .map(|v| {
                        items[i].binary_search(&v).is_ok() && sep.binary_search(&v).is_err()
                    })
                    .collect();
                let (_, totals) = component_measures(net, gtree, &active, &mu);
                let largest = totals.iter().copied().max().unwrap_or(0);
                cfg.is_balanced(largest, mu_g[i])
            };
            if check(&z[i], net) {
                result[i] = Some(ItemSep::Done {
                    separator: z[i].clone(),
                    path: SepPath::Cuts,
                });
            } else if cfg.union_fallback {
                let mut u: Vec<u32> = z[i].iter().chain(r_star[i].iter()).copied().collect();
                u.sort_unstable();
                u.dedup();
                if check(&u, net) {
                    result[i] = Some(ItemSep::Done {
                        separator: u,
                        path: SepPath::Union,
                    });
                }
            }
        }
    }
    let _ = g;
    result
        .into_iter()
        .map(|r| r.unwrap_or(ItemSep::Failed))
        .collect()
}

/// Extract the STree of part `pid` rooted at `root` from RST output.
fn stree_from_roles(trees: &TreeRoles, pid: u32, root: u32) -> STree {
    let mut nodes = Vec::new();
    for (v, list) in trees.roles.iter().enumerate() {
        for r in list {
            if r.part == pid {
                nodes.push((v as u32, r.parent));
            }
        }
    }
    STree { root, nodes }
}

/// Distributed tree decomposition of the network's communication graph
/// (paper Theorem 1). Rounds are accumulated in the network's metrics and
/// reported in the outcome.
pub fn decompose_distributed(
    net: &mut Network,
    t0: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> DistDecompOutcome {
    let n = net.n();
    let g = net.graph().clone();
    let before_backbone = net.metrics().rounds;
    let gtree = build_global_tree(net);
    let backbone_rounds = net.metrics().rounds - before_backbone;
    let start_rounds = net.metrics().rounds;

    let mut td = twgraph::tw::TreeDecomposition::default();
    let mut info: Vec<NodeInfo> = Vec::new();
    let mut t = t0.max(2);
    let mut level: Vec<Work> = vec![Work {
        parent: None,
        gpx: (0..n as u32).collect(),
        inherited: Vec::new(),
    }];

    while !level.is_empty() {
        // Batched Sep over this level's items, with shared t-doubling.
        let gpxs: Vec<&Vec<u32>> = level.iter().map(|w| &w.gpx).collect();
        let mut seps: Vec<Option<(Vec<u32>, SepPath)>> = vec![None; level.len()];
        loop {
            let open: Vec<usize> = (0..level.len()).filter(|&i| seps[i].is_none()).collect();
            if open.is_empty() {
                break;
            }
            let open_items: Vec<&Vec<u32>> = open.iter().map(|&i| gpxs[i]).collect();
            let results = batched_sep_attempt(net, &gtree, &g, &open_items, t, cfg, rng);
            let mut any_fail = false;
            for (slot, res) in results.into_iter().enumerate() {
                match res {
                    ItemSep::Done { separator, path } => {
                        seps[open[slot]] = Some((separator, path));
                    }
                    ItemSep::Failed => any_fail = true,
                }
            }
            if any_fail {
                t *= 2;
                assert!(t <= 4 * n as u64 + 16, "t doubling ran away");
            }
        }

        // Materialize tree nodes and the next level.
        let mut next_level = Vec::new();
        for (w, sep_out) in level.iter().zip(seps.into_iter()) {
            let (sep, _path) = sep_out.unwrap();
            let gx_size = w.gpx.len() + w.inherited.len();
            let sx_size = sep.len() + w.inherited.len();
            if gx_size <= 2 * sx_size {
                let mut bag: Vec<u32> =
                    w.gpx.iter().chain(w.inherited.iter()).copied().collect();
                bag.sort_unstable();
                td.push_bag(w.parent, bag);
                info.push(NodeInfo {
                    gpx: w.gpx.clone(),
                    inherited: w.inherited.clone(),
                    sep,
                    is_leaf: true,
                });
                continue;
            }
            let mut bag: Vec<u32> = w.inherited.iter().chain(sep.iter()).copied().collect();
            bag.sort_unstable();
            bag.dedup();
            let x = td.push_bag(w.parent, bag.clone());
            debug_assert_eq!(x, info.len());
            let mut mask = vec![false; n];
            for &v in &w.gpx {
                mask[v as usize] = true;
            }
            for &s in &sep {
                mask[s as usize] = false;
            }
            for comp in components_of(&g, &mask) {
                let mut comp_mask = vec![false; n];
                for &v in &comp {
                    comp_mask[v as usize] = true;
                }
                let child_inherited: Vec<u32> = bag
                    .iter()
                    .copied()
                    .filter(|&b| g.neighbors(b).iter().any(|&u| comp_mask[u as usize]))
                    .collect();
                next_level.push(Work {
                    parent: Some(x),
                    gpx: comp,
                    inherited: child_inherited,
                });
            }
            info.push(NodeInfo {
                gpx: w.gpx.clone(),
                inherited: w.inherited.clone(),
                sep,
                is_leaf: false,
            });
        }
        level = next_level;
    }

    let rounds = net.metrics().rounds - start_rounds;
    net.snapshot("treedec/decompose");
    DistDecompOutcome {
        td,
        info,
        t_used: t,
        rounds,
        backbone_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use twgraph::gen::{banded_path, cycle, ktree, random_tree};

    fn run(g: &twgraph::UGraph, t0: u64, seed: u64) -> (DistDecompOutcome, Network) {
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = decompose_distributed(&mut net, t0, &cfg, &mut rng);
        out.td
            .verify(g)
            .unwrap_or_else(|e| panic!("invalid distributed decomposition: {e}"));
        (out, net)
    }

    #[test]
    fn banded_path_distributed() {
        let g = banded_path(200, 2);
        let (out, _net) = run(&g, 3, 1);
        assert!(out.td.stats().width < 100);
        assert!(out.rounds > 0);
    }

    #[test]
    fn ktree_distributed() {
        let g = ktree(150, 3, 4);
        let (out, _net) = run(&g, 4, 2);
        assert!(out.td.stats().width < 120);
    }

    #[test]
    fn tree_distributed() {
        let g = random_tree(150, 6);
        let (out, _) = run(&g, 2, 3);
        assert!(out.td.stats().width < 60);
    }

    #[test]
    fn small_cycle_single_bag() {
        let g = cycle(10);
        let (out, _) = run(&g, 3, 4);
        assert_eq!(out.td.bags.len(), 1);
    }

    #[test]
    fn rounds_scale_with_diameter() {
        // Same treewidth, double the diameter → rounds grow, but far less
        // than linearly in n² (sanity of the cost accounting).
        let g1 = banded_path(128, 2);
        let g2 = banded_path(256, 2);
        let (o1, _) = run(&g1, 3, 5);
        let (o2, _) = run(&g2, 3, 5);
        assert!(o2.rounds > o1.rounds);
        assert!(
            o2.rounds < o1.rounds * 16,
            "rounds exploded: {} -> {}",
            o1.rounds,
            o2.rounds
        );
    }
}
