//! Breadth-first search on communication graphs.

use crate::ugraph::UGraph;
use std::collections::VecDeque;

/// Hop distances from `src` in ⟦G⟧; unreachable vertices get `u32::MAX`.
pub fn bfs_dist(g: &UGraph, src: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// BFS tree from `src`: `(dist, parent)` with `parent[src] = src` and
/// `parent[v] = u32::MAX` for unreachable `v`.
pub fn bfs_tree(g: &UGraph, src: u32) -> (Vec<u32>, Vec<u32>) {
    let mut dist = vec![u32::MAX; g.n()];
    let mut parent = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    parent[src as usize] = src;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                q.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Eccentricity of `v` (max finite hop distance from `v`).
pub fn eccentricity(g: &UGraph, v: u32) -> u32 {
    bfs_dist(g, v)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Exact unweighted diameter `D(⟦G⟧)` by running BFS from every vertex.
/// Quadratic — intended for test/bench instrumentation, not hot paths.
/// Returns 0 for graphs with ≤ 1 vertex; ignores unreachable pairs (i.e.
/// computes the max eccentricity within components).
pub fn diameter_exact(g: &UGraph) -> u32 {
    g.vertices().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGraph;

    fn path(n: usize) -> UGraph {
        UGraph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        assert_eq!(bfs_dist(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_dist(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_tree_parents() {
        let g = path(4);
        let (dist, parent) = bfs_tree(&g, 1);
        assert_eq!(dist, vec![1, 0, 1, 2]);
        assert_eq!(parent[0], 1);
        assert_eq!(parent[1], 1);
        assert_eq!(parent[3], 2);
    }

    #[test]
    fn unreachable_is_max() {
        let g = UGraph::from_edges(4, [(0, 1), (2, 3)]);
        let d = bfs_dist(&g, 0);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn diameter_path_and_cycle() {
        assert_eq!(diameter_exact(&path(6)), 5);
        let cycle = UGraph::from_edges(6, (0..6u32).map(|i| (i, (i + 1) % 6)));
        assert_eq!(diameter_exact(&cycle), 3);
    }

    #[test]
    fn diameter_singleton() {
        assert_eq!(diameter_exact(&UGraph::empty(1)), 0);
    }
}
