//! A blocking client for the `servd` wire protocol — the counterpart the
//! load generator, the smoke test, and the differential suites drive.
//!
//! The client is deliberately synchronous and single-threaded: one
//! request, one response, matched by request id. For pipelining (the
//! load generator's open-loop mode, the backpressure tests) the
//! [`send`](Client::send)/[`recv`](Client::recv) halves are exposed
//! separately — responses may arrive out of admission order when the
//! server refuses a request, so pipelined callers must match on the
//! returned id.

use crate::proto::{
    decode_response, encode_request, read_frame, FrameError, FrameEvent, ProtoError, Request,
    Response, WireError, MAX_FRAME_DEFAULT,
};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use twgraph::Dist;

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hangup).
    Io(io::Error),
    /// The server's bytes did not parse as a response.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server(WireError),
    /// A response arrived for a request id this client never sent, or
    /// with a body of the wrong kind for the call.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Proto(e) => write!(f, "protocol violation from server: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse => write!(f, "response did not match the request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    buf: Vec<u8>,
    out: Vec<u8>,
    max_frame: usize,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            buf: Vec::with_capacity(256),
            out: Vec::with_capacity(256),
            max_frame: MAX_FRAME_DEFAULT,
        })
    }

    /// Send one request without waiting; returns its id for matching.
    pub fn send(&mut self, req: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.out.clear();
        encode_request(id, req, &mut self.out);
        self.stream.write_all(&self.out)?;
        Ok(id)
    }

    /// Block for the next response frame.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        match read_frame(&mut self.stream, &mut self.buf, self.max_frame, || false) {
            Ok(FrameEvent::Frame) => decode_response(&self.buf).map_err(ClientError::Proto),
            Ok(FrameEvent::Eof) => Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into())),
            Ok(FrameEvent::Idle) => unreachable!("client sockets have no read timeout"),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(FrameError::Proto(e)) => Err(ClientError::Proto(e)),
        }
    }

    /// One synchronous round trip; errors if the ids do not line up.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.send(req)?;
        let (got_id, resp) = self.recv()?;
        if got_id != id {
            return Err(ClientError::UnexpectedResponse);
        }
        Ok(resp)
    }

    /// Exact `d(s → t)` at the connection's pinned epoch.
    pub fn distance(&mut self, s: u32, t: u32) -> Result<Dist, ClientError> {
        match self.call(&Request::Query { s, t })? {
            Response::Dist(d) => Ok(d),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// A whole batch, answered in order at the pinned epoch.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<Dist>, ClientError> {
        match self.call(&Request::Batch(pairs.to_vec()))? {
            Response::Batch(ds) => Ok(ds),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// The epoch this connection is pinned to.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Epoch)? {
            Response::Epoch(e) => Ok(e),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Re-pin this connection to the server's current epoch.
    pub fn repin(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Repin)? {
            Response::Epoch(e) => Ok(e),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Ship raw bytes down the socket — the hardening tests use this to
    /// probe the server with malformed frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }
}
