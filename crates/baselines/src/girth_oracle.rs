//! Exact weighted girth oracles (centralized).

use twgraph::alg::dijkstra;
use twgraph::{dist_add, ArcId, Dist, MultiDigraph, INF};

/// Exact directed weighted girth: min over arcs `(u,v)` of
/// `w(u,v) + d(v → u)`. Self-loops count as cycles of their own weight.
/// Returns [`INF`] for acyclic graphs.
pub fn girth_directed_centralized(inst: &MultiDigraph) -> Dist {
    let mut best = INF;
    // One Dijkstra per distinct arc source suffices? No — we need d(v→u)
    // for each arc (u,v): run Dijkstra from every vertex v that is the head
    // of some arc and look up u.
    let heads: std::collections::BTreeSet<u32> = inst.arcs().iter().map(|a| a.dst).collect();
    let mut dist_from: std::collections::HashMap<u32, Vec<Dist>> = std::collections::HashMap::new();
    for &v in &heads {
        dist_from.insert(v, dijkstra(inst, v).dist);
    }
    for a in inst.arcs() {
        if a.src == a.dst {
            best = best.min(a.weight);
            continue;
        }
        let d_back = dist_from[&a.dst][a.src as usize];
        best = best.min(dist_add(a.weight, d_back));
    }
    best
}

/// Exact undirected weighted girth of a symmetrized instance (twin arcs
/// share a `uedge` id): min over undirected edges `{u,v}` of
/// `w + d_{G−e}(u, v)`. Quadratic in edges × Dijkstra — a test-scale
/// oracle.
pub fn girth_exact_centralized(inst: &MultiDigraph) -> Dist {
    let n_ue = inst.n_uedges();
    let mut best = INF;
    for e in 0..n_ue as u32 {
        // Locate the twin arcs of e.
        let mut endpoints = None;
        let mut w = 0;
        for a in inst.arcs() {
            if a.uedge.0 == e {
                endpoints = Some((a.src, a.dst));
                w = a.weight;
                break;
            }
        }
        let Some((u, v)) = endpoints else { continue };
        // Dijkstra from u avoiding edge e entirely.
        let d = dijkstra_avoiding(inst, u, e);
        best = best.min(dist_add(w, d[v as usize]));
    }
    best
}

fn dijkstra_avoiding(inst: &MultiDigraph, src: u32, avoid_uedge: u32) -> Vec<Dist> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = inst.n();
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &ai in inst.out_arcs(u) {
            let a = inst.arc(ArcId(ai));
            if a.uedge.0 == avoid_uedge {
                continue;
            }
            let nd = dist_add(d, a.weight);
            if nd < dist[a.dst as usize] {
                dist[a.dst as usize] = nd;
                heap.push(Reverse((nd, a.dst)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::Arc;

    #[test]
    fn directed_triangle() {
        let inst = MultiDigraph::from_arcs(
            3,
            vec![Arc::new(0, 1, 2), Arc::new(1, 2, 3), Arc::new(2, 0, 4)],
        );
        assert_eq!(girth_directed_centralized(&inst), 9);
    }

    #[test]
    fn directed_acyclic_is_inf() {
        let inst = MultiDigraph::from_arcs(3, vec![Arc::new(0, 1, 1), Arc::new(1, 2, 1)]);
        assert_eq!(girth_directed_centralized(&inst), INF);
    }

    #[test]
    fn undirected_two_cycles() {
        // Two cycles sharing vertex 0: weights pick the cheaper (girth 6).
        let edges = vec![
            (0u32, 1u32, 2u64),
            (1, 2, 2),
            (2, 0, 2), // triangle of weight 6
            (0, 3, 1),
            (3, 4, 1),
            (4, 5, 1),
            (5, 0, 4), // square of weight 7
        ];
        let inst = MultiDigraph::from_undirected(6, edges);
        assert_eq!(girth_exact_centralized(&inst), 6);
    }

    #[test]
    fn undirected_tree_has_no_cycle() {
        let inst = MultiDigraph::from_undirected(4, vec![(0, 1, 1), (1, 2, 1), (1, 3, 1)]);
        assert_eq!(girth_exact_centralized(&inst), INF);
    }

    #[test]
    fn undirected_girth_not_fooled_by_backtracking() {
        // A path has no cycle even though u→v→u walks exist.
        let inst = MultiDigraph::from_undirected(3, vec![(0, 1, 5), (1, 2, 5)]);
        assert_eq!(girth_exact_centralized(&inst), INF);
    }

    #[test]
    fn directed_uses_asymmetric_weights() {
        let inst = MultiDigraph::from_arcs(2, vec![Arc::new(0, 1, 1), Arc::new(1, 0, 10)]);
        assert_eq!(girth_directed_centralized(&inst), 11);
    }
}
