//! Bottom-up label construction (paper §4.2), shared by the centralized
//! and distributed drivers.
//!
//! ## Maintained invariant (see lib.rs)
//!
//! After processing tree node `x`, every `u ∈ V(G_x)` holds, for every
//! `s ∈ B_x`, the exact `d_{G_x}(u, s)` and `d_{G_x}(s, u)` (Lemmas 3–4).
//! Entries for deeper bags keep their child-level values; since
//! `G_{x•i} ⊆ G_x ⊆ G`, every stored entry is a realizable walk length
//! (never an underestimate), and the decoder's minimum over all common
//! ancestor-bag vertices recovers exact distances: for the shallowest tree
//! node `w` whose `G_w` contains a shortest `u→v` path `P`, `P` must touch
//! `B_w` (else a deeper node would contain it), and both endpoints hold
//! exact `d_{G_w}` entries for the first/last `B_w`-vertex on `P`.

use crate::label::Label;
use treedec::decomp::NodeInfo;
use twgraph::tw::TreeDecomposition;
use twgraph::{dist_add, Dist, MultiDigraph, INF};

/// A flat arc list `(src, dst, weight)` — the per-node broadcast payload
/// (3 words per arc).
pub type ArcList = Vec<(u32, u32, Dist)>;

/// What a tree node's processing step would broadcast in the distributed
/// execution (paper §4.2 steps 1 and 3): per source node, the arc list it
/// contributes (each arc = 3 words on the wire).
#[derive(Clone, Debug, Default)]
pub struct NodeArtifact {
    /// `(source node, arcs (src, dst, cost))` — for a leaf, every member
    /// broadcasts its incident G_x arcs; for an internal node, every bag
    /// member broadcasts its incident H_x arcs.
    pub broadcast: Vec<(u32, ArcList)>,
}

/// Direct-arc cost table lookup: cheapest arc `a → b` in the instance.
pub(crate) fn direct_cost(inst: &MultiDigraph, a: u32, b: u32) -> Dist {
    let mut best = INF;
    for &ai in inst.out_arcs(a) {
        let arc = inst.arc(twgraph::ArcId(ai));
        if arc.dst == b {
            best = best.min(arc.weight);
        }
    }
    best
}

/// Process one tree node bottom-up, updating `labels` in place and
/// returning the traffic artifact for the distributed driver.
pub fn process_node(
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
    x: usize,
    labels: &mut [Label],
) -> NodeArtifact {
    if info[x].is_leaf {
        process_leaf(inst, &info[x], labels)
    } else {
        process_internal(inst, td, info, x, labels)
    }
}

/// Leaf: gather all of G_x locally (step 1), solve APSP, record all bag
/// entries (the leaf bag is V(G_x)).
fn process_leaf(inst: &MultiDigraph, ni: &NodeInfo, labels: &mut [Label]) -> NodeArtifact {
    let gx = ni.gx();
    let k = gx.len();
    let local = |v: u32| gx.binary_search(&v).unwrap();
    let in_inherited = |v: u32| ni.inherited.binary_search(&v).is_ok();

    // Arcs of G_x: endpoints inside gx, not both inherited (G_x carries no
    // edges inside the inherited boundary — see treedec::decomp).
    let mut arcs: Vec<(u32, u32, Dist)> = Vec::new();
    let mut per_node: Vec<(u32, ArcList)> = Vec::new();
    for &v in &gx {
        let mut mine = Vec::new();
        for &ai in inst.out_arcs(v) {
            let a = inst.arc(twgraph::ArcId(ai));
            if gx.binary_search(&a.dst).is_ok() && !(in_inherited(a.src) && in_inherited(a.dst)) {
                mine.push((a.src, a.dst, a.weight));
            }
        }
        arcs.extend(mine.iter().copied());
        per_node.push((v, mine));
    }

    // Local APSP (Floyd–Warshall on the gathered subgraph).
    let mut d = vec![vec![INF; k]; k];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(a, b, w) in &arcs {
        let (ia, ib) = (local(a), local(b));
        d[ia][ib] = d[ia][ib].min(w);
    }
    for m in 0..k {
        for i in 0..k {
            if d[i][m] >= INF {
                continue;
            }
            for j in 0..k {
                let cand = dist_add(d[i][m], d[m][j]);
                if cand < d[i][j] {
                    d[i][j] = cand;
                }
            }
        }
    }
    for (i, &u) in gx.iter().enumerate() {
        for (j, &s) in gx.iter().enumerate() {
            labels[u as usize].merge(s, d[i][j], d[j][i]);
        }
    }
    NodeArtifact {
        broadcast: per_node,
    }
}

/// Internal node: build H_x from child labels + direct arcs (step 2),
/// APSP on H_x, then refresh every member's B_x entries (step 4 / Lemma 4).
fn process_internal(
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
    x: usize,
    labels: &mut [Label],
) -> NodeArtifact {
    let bag = &td.bags[x];
    let k = bag.len();
    let bidx = |v: u32| bag.binary_search(&v).ok();

    // H_x edge costs: min(direct arc, child-level label distance).
    let mut h = vec![vec![INF; k]; k];
    for (i, row) in h.iter_mut().enumerate() {
        row[i] = 0;
    }
    for (i, &a) in bag.iter().enumerate() {
        for (j, &b) in bag.iter().enumerate() {
            if i == j {
                continue;
            }
            let mut c = direct_cost(inst, a, b);
            if let Some(via_child) = labels[a as usize].to(b) {
                c = c.min(via_child);
            }
            h[i][j] = c;
        }
    }
    // The broadcast artifact: each bag node's finite incident H_x arcs.
    let mut per_node: Vec<(u32, ArcList)> = Vec::new();
    for (i, &a) in bag.iter().enumerate() {
        let mine: Vec<(u32, u32, Dist)> = bag
            .iter()
            .enumerate()
            .filter(|&(j, _)| i != j && h[i][j] < INF)
            .map(|(j, &b)| (a, b, h[i][j]))
            .collect();
        per_node.push((a, mine));
    }
    // APSP on H_x: d_{H_x} = d_{G_x} restricted to the bag (Lemma 3).
    for m in 0..k {
        for i in 0..k {
            if h[i][m] >= INF {
                continue;
            }
            for j in 0..k {
                let cand = dist_add(h[i][m], h[m][j]);
                if cand < h[i][j] {
                    h[i][j] = cand;
                }
            }
        }
    }

    // Members of G_x: all children's G vertex sets plus the bag.
    let mut members: Vec<u32> = bag.clone();
    for &c in &td.children[x] {
        members.extend(info[c].gx());
    }
    members.sort_unstable();
    members.dedup();

    // Lemma 4 refresh: for every member u and every s ∈ B_x,
    //   d_{G_x}(u,s) = min_{s'} d_child(u,s') + d_{H_x}(s',s)
    //   d_{G_x}(s,u) = min_{s'} d_{H_x}(s,s') + d_child(s',u)
    // with s' ranging over the bag vertices u already has entries for
    // (including u itself at distance 0 when u ∈ B_x).
    for &u in &members {
        // Bridges: (bag index of s', d_child(u→s'), d_child(s'→u)).
        let mut bridges: Vec<(usize, Dist, Dist)> = Vec::new();
        if let Some(iu) = bidx(u) {
            bridges.push((iu, 0, 0));
        }
        for &(s, to, from) in &labels[u as usize].entries {
            if let Some(is) = bidx(s) {
                if s != u {
                    bridges.push((is, to, from));
                }
            }
        }
        for (j, &s) in bag.iter().enumerate() {
            let mut best_to = INF;
            let mut best_from = INF;
            for &(is, to, from) in &bridges {
                best_to = best_to.min(dist_add(to, h[is][j]));
                best_from = best_from.min(dist_add(h[j][is], from));
            }
            if best_to < INF || best_from < INF {
                labels[u as usize].merge(s, best_to, best_from);
            }
        }
    }

    NodeArtifact {
        broadcast: per_node,
    }
}

/// Build the full labeling centrally: process tree nodes children-first.
pub fn build_labels_centralized(
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
) -> Vec<Label> {
    let mut labels: Vec<Label> = (0..inst.n() as u32).map(Label::new).collect();
    for x in order_bottom_up(td) {
        process_node(inst, td, info, x, &mut labels);
    }
    labels
}

/// Tree nodes ordered children-before-parents.
pub fn order_bottom_up(td: &TreeDecomposition) -> Vec<usize> {
    let depths = td.depths();
    let mut order: Vec<usize> = (0..td.bags.len()).collect();
    order.sort_by_key(|&x| std::cmp::Reverse(depths[x]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{decode, Label};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::alg::apsp_dijkstra;
    use twgraph::gen::{banded_path, cycle, grid, ktree, random_orientation, with_random_weights};
    use twgraph::UGraph;

    fn labels_of(g: &UGraph, inst: &MultiDigraph, seed: u64) -> Vec<Label> {
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let dec = decompose_centralized(g, 3, &cfg, &mut rng).unwrap();
        dec.td.verify(g).unwrap();
        build_labels_centralized(inst, &dec.td, &dec.info)
    }

    fn assert_exact(g: &UGraph, inst: &MultiDigraph, seed: u64) -> Vec<Label> {
        let labels = labels_of(g, inst, seed);
        let truth = apsp_dijkstra(inst);
        for u in 0..g.n() {
            for v in 0..g.n() {
                let got = decode(&labels[u], &labels[v]);
                assert_eq!(
                    got, truth[u][v],
                    "decode({u},{v}) = {got}, dijkstra = {}",
                    truth[u][v]
                );
            }
        }
        labels
    }

    #[test]
    fn undirected_weighted_banded_path() {
        let g = banded_path(60, 2);
        let inst = with_random_weights(&g, 20, 7);
        assert_exact(&g, &inst, 1);
    }

    #[test]
    fn directed_weighted_ktree() {
        let g = ktree(50, 3, 9);
        let inst = random_orientation(&g, 15, 0.4, 11);
        assert_exact(&g, &inst, 2);
    }

    #[test]
    fn directed_cycle_asymmetry() {
        // One-directional cycle: d(u,v) ≠ d(v,u) everywhere.
        let g = cycle(12);
        let arcs: Vec<twgraph::Arc> = (0..12u32)
            .map(|i| twgraph::Arc::new(i, (i + 1) % 12, 1))
            .collect();
        let inst = MultiDigraph::from_arcs(12, arcs);
        let labels = assert_exact(&g, &inst, 3);
        let d01 = decode(&labels[0], &labels[1]);
        let d10 = decode(&labels[1], &labels[0]);
        assert_eq!(d01, 1);
        assert_eq!(d10, 11);
    }

    #[test]
    fn grid_weighted() {
        let g = grid(6, 6);
        let inst = with_random_weights(&g, 9, 5);
        assert_exact(&g, &inst, 4);
    }

    #[test]
    fn unreachable_pairs_decode_inf() {
        // Orientation can make some pairs unreachable; decode must agree.
        let g = banded_path(40, 2);
        let inst = random_orientation(&g, 8, 0.1, 3);
        assert_exact(&g, &inst, 5);
    }

    #[test]
    fn multigraph_parallel_arcs() {
        let g = cycle(10);
        let mut arcs = Vec::new();
        for i in 0..10u32 {
            arcs.push(twgraph::Arc::new(i, (i + 1) % 10, 5));
            arcs.push(twgraph::Arc::new(i, (i + 1) % 10, 2)); // cheaper twin
            arcs.push(twgraph::Arc::new((i + 1) % 10, i, 3));
        }
        let inst = MultiDigraph::from_arcs(10, arcs);
        assert_exact(&g, &inst, 6);
    }

    #[test]
    fn label_sizes_bounded() {
        let g = ktree(200, 3, 13);
        let inst = with_random_weights(&g, 10, 2);
        let labels = labels_of(&g, &inst, 7);
        let max_entries = labels.iter().map(|l| l.entries.len()).max().unwrap();
        // |B↑(u)| ≤ width+1 per level × depth levels — stays far below n.
        assert!(
            max_entries < g.n(),
            "label blew up: {max_entries} entries on n = {}",
            g.n()
        );
    }

    #[test]
    fn artifacts_report_traffic() {
        let g = banded_path(50, 2);
        let inst = with_random_weights(&g, 5, 1);
        let cfg = SepConfig::practical(50);
        let mut rng = SmallRng::seed_from_u64(8);
        let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        let mut labels: Vec<Label> = (0..50u32).map(Label::new).collect();
        let mut total_arcs = 0usize;
        for x in order_bottom_up(&dec.td) {
            let art = process_node(&inst, &dec.td, &dec.info, x, &mut labels);
            total_arcs += art.broadcast.iter().map(|(_, a)| a.len()).sum::<usize>();
        }
        assert!(total_arcs > 0, "no traffic recorded");
    }
}
