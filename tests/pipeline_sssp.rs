//! End-to-end distributed pipeline: tree decomposition → distance
//! labeling → SSSP, all on the simulator, verified against Dijkstra and
//! compared with the Bellman–Ford baseline (experiments E4/E5's shape).

use lowtw::prelude::*;
use lowtw::{baselines, distlabel, twgraph};

#[test]
fn full_distributed_pipeline_exact() {
    let g = twgraph::gen::partial_ktree(150, 3, 0.7, 21);
    let inst = twgraph::gen::with_random_weights(&g, 30, 21);

    let (session, td_rounds) = Session::decompose_distributed(&g, 4, 21).unwrap();
    session.td.verify(&g).unwrap();
    assert!(td_rounds > 0);

    let (labels, dl_rounds) = session.labels_distributed(&inst).unwrap();
    assert!(dl_rounds > 0);

    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let (dists, q_rounds) = distlabel::sssp_distributed(&mut net, &labels, 42).unwrap();
    assert_eq!(dists, twgraph::alg::dijkstra(&inst, 42).dist);
    assert!(q_rounds > 0);
}

#[test]
fn directed_instance_pipeline() {
    let g = twgraph::gen::banded_path(120, 3);
    let inst = twgraph::gen::random_orientation(&g, 9, 0.5, 5);
    let session = Session::decompose(&g, 4, 5).unwrap();
    let labels = session.labels(&inst);
    // Exactness on a directed weighted multigraph, both directions.
    let truth = twgraph::alg::apsp_dijkstra(&inst);
    for u in (0..120usize).step_by(13) {
        for v in (0..120usize).step_by(7) {
            assert_eq!(decode(&labels[u], &labels[v]), truth[u][v]);
        }
    }
}

#[test]
fn queries_amortize_against_bellman_ford() {
    // Once labels exist, each SSSP costs one label broadcast; Bellman–Ford
    // pays its full wave per source. Compare 8 queries.
    let g = twgraph::gen::banded_path(160, 2);
    let inst = twgraph::gen::with_random_weights(&g, 40, 9);
    let session = Session::decompose(&g, 3, 9).unwrap();
    let labels = session.labels(&inst);

    let mut label_rounds = 0u64;
    let mut bf_rounds = 0u64;
    for src in [0u32, 20, 40, 60, 80, 100, 120, 140] {
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (d1, r1) = distlabel::sssp_distributed(&mut net, &labels, src).unwrap();
        let mut net2 = Network::new(g.clone(), NetworkConfig::default());
        let (d2, r2) = baselines::bellman_ford_distributed(&mut net2, &inst, src).unwrap();
        assert_eq!(d1, d2, "source {src}");
        label_rounds += r1;
        bf_rounds += r2;
    }
    // Not asserting a specific ratio (constants are family-dependent);
    // both must at least be nontrivial and recorded.
    assert!(label_rounds > 0 && bf_rounds > 0);
    println!("8 queries: labels = {label_rounds} rounds, bellman-ford = {bf_rounds} rounds");
}
