//! # stateful-walks — the paper's §5 framework
//!
//! A *stateful walk constraint* (Definition 2) is a walk set `C ⊆ W_G`
//! recognized by a per-edge finite state machine: every walk carries a
//! state from `Q` (with the reject state ⊥ and the empty-walk state ▽),
//! and appending an edge updates the state through δ_e alone. Constrained
//! shortest-walk problems then reduce to *unconstrained* shortest paths in
//! the product graph `G_C` on `V(G) × Q` (Lemma 5), which this crate
//! builds explicitly.
//!
//! `CDL(C)` — constrained distance labeling (Theorem 3) — runs the §4
//! labeling machinery on `G_C`. Distributed executions use a *virtual
//! network*: physical node `u` hosts all of `U_Q(u)`, and every virtual
//! message is charged to the physical edge it rides
//! ([`congest_sim::EdgeProjection`]) — the O(|Q|·p_max) simulation
//! overhead of §5.2, reproduced by measurement.
//!
//! Provided constraints: [`ColoredWalk`] (Example 1), [`CountWalk`]
//! (Example 2), plus [`ParityWalk`] and [`ForbiddenTransitionWalk`] as
//! framework-exercising extensions.

pub mod cdl;
pub mod constraint;
pub mod product;

pub use cdl::{CdlLabeling, ConstrainedSssp};
pub use constraint::{
    ColoredWalk, CountWalk, ForbiddenTransitionWalk, ParityWalk, StateId, StatefulConstraint, BOT,
    NABLA,
};
pub use product::{brute_force_constrained_dist, build_product, ProductGraph};
