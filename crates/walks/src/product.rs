//! The product graph `G_C` (paper §5.2, Lemma 5, Fig. 3).

use crate::constraint::{StateId, StatefulConstraint, BOT, NABLA};
use twgraph::{Arc, MultiDigraph, UEdgeId};

/// The explicit product multigraph on `V(G) × Q`.
#[derive(Clone, Debug)]
pub struct ProductGraph {
    /// The product multigraph. Vertex `(v, q)` has index `v·|Q| + q`.
    pub graph: MultiDigraph,
    /// |Q|.
    pub q: usize,
    /// The physical vertex count.
    pub n_physical: usize,
    /// For every product arc, the originating physical arc id
    /// (`u32::MAX` for the intra-vertex arcs of condition (2)).
    pub origin: Vec<u32>,
}

impl ProductGraph {
    /// Index of product vertex `(v, q)`.
    #[inline]
    pub fn vertex(&self, v: u32, q: StateId) -> u32 {
        v * self.q as u32 + q as u32
    }

    /// Inverse of [`vertex`](Self::vertex): `(v, q)` of a product index.
    #[inline]
    pub fn split(&self, pv: u32) -> (u32, StateId) {
        (pv / self.q as u32, (pv % self.q as u32) as StateId)
    }

    /// The hosting physical vertex of a product index (for the
    /// edge-projection of virtual networks).
    #[inline]
    pub fn host(&self, pv: u32) -> u32 {
        pv / self.q as u32
    }
}

/// Build `G_C` from an instance and a constraint. Arcs:
///
/// 1. `(u,i) → (v, δ_e(i))` for every arc `e = (u,v)` and every state
///    `i ≠ ⊥` with `δ_e(i) ≠ ⊥`, at cost `c(e)`;
/// 2. the ⊥-backbone `(u,⊥) → (v,⊥)` for every arc (condition 3 keeps ⊥
///    absorbing), at cost `c(e)` — this bounds `D(⟦G_C⟧)` by O(D);
/// 3. intra-vertex arcs `(u,i) → (u,⊥)` for `i ≠ ⊥` (the paper's
///    condition (2)), cost 0 — they ride no physical edge.
pub fn build_product(g: &MultiDigraph, c: &impl StatefulConstraint) -> ProductGraph {
    let q = c.n_states();
    let n = g.n();
    let vertex = |v: u32, s: StateId| v * q as u32 + s as u32;
    let mut arcs: Vec<Arc> = Vec::new();
    let mut origin: Vec<u32> = Vec::new();
    for (ai, a) in g.arcs().iter().enumerate() {
        // Backbone (δ(⊥) = ⊥).
        arcs.push(Arc {
            src: vertex(a.src, BOT),
            dst: vertex(a.dst, BOT),
            weight: a.weight,
            label: a.label,
            uedge: UEdgeId::NONE,
        });
        origin.push(ai as u32);
        for i in 1..q as StateId {
            let j = c.transition(a, i);
            if j != BOT {
                arcs.push(Arc {
                    src: vertex(a.src, i),
                    dst: vertex(a.dst, j),
                    weight: a.weight,
                    label: a.label,
                    uedge: UEdgeId::NONE,
                });
                origin.push(ai as u32);
            }
        }
    }
    for v in 0..n as u32 {
        for i in 1..q as StateId {
            arcs.push(Arc {
                src: vertex(v, i),
                dst: vertex(v, BOT),
                weight: 0,
                label: 0,
                uedge: UEdgeId::NONE,
            });
            origin.push(u32::MAX);
        }
    }
    ProductGraph {
        graph: MultiDigraph::from_arcs(n * q, arcs),
        q,
        n_physical: n,
        origin,
    }
}

/// Brute-force oracle for Lemma 5 tests: the shortest weight of a walk
/// from `s` to `t` ending in state `q_target`, enumerating all walks of at
/// most `max_len` edges by dynamic programming over (vertex, state, len).
pub fn brute_force_constrained_dist(
    g: &MultiDigraph,
    c: &impl StatefulConstraint,
    s: u32,
    t: u32,
    q_target: StateId,
    max_len: usize,
) -> u64 {
    use twgraph::{dist_add, INF};
    let q = c.n_states();
    let idx = |v: u32, st: StateId| (v as usize) * q + st as usize;
    let mut best = vec![INF; g.n() * q];
    best[idx(s, NABLA)] = 0;
    let mut answer = if s == t && q_target == NABLA { 0 } else { INF };
    for _ in 0..max_len {
        let mut next = best.clone();
        for a in g.arcs() {
            for st in 0..q as StateId {
                let cur = best[idx(a.src, st)];
                if cur >= INF {
                    continue;
                }
                let ns = if st == BOT { BOT } else { c.transition(a, st) };
                let cand = dist_add(cur, a.weight);
                let slot = idx(a.dst, ns);
                if cand < next[slot] {
                    next[slot] = cand;
                }
            }
        }
        best = next;
        answer = answer.min(best[idx(t, q_target)]);
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ColoredWalk, CountWalk};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use twgraph::alg::dijkstra;
    use twgraph::INF;

    fn random_labeled_instance(n: usize, m: usize, labels: u32, seed: u64) -> MultiDigraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let arcs: Vec<Arc> = (0..m)
            .map(|_| Arc {
                src: rng.gen_range(0..n as u32),
                dst: rng.gen_range(0..n as u32),
                weight: rng.gen_range(1..10),
                label: rng.gen_range(0..labels),
                uedge: UEdgeId::NONE,
            })
            .filter(|a| a.src != a.dst)
            .collect();
        MultiDigraph::from_arcs(n, arcs)
    }

    /// Lemma 5 (both directions): dist in G_C from (s,▽) to (t,q) equals
    /// the shortest constrained-walk weight.
    #[test]
    fn lemma5_colored_random() {
        let c = ColoredWalk { colors: 3 };
        for seed in 0..6 {
            let g = random_labeled_instance(6, 18, 3, seed);
            let p = build_product(&g, &c);
            for s in 0..6u32 {
                let spt = dijkstra(&p.graph, p.vertex(s, NABLA));
                for t in 0..6u32 {
                    for q in 2..c.n_states() as StateId {
                        let via_product = spt.dist[p.vertex(t, q) as usize];
                        // Walk length bound: weights ≤ 9, n·|Q| states ⇒
                        // 35 edges more than suffice on 6 vertices.
                        let brute = brute_force_constrained_dist(&g, &c, s, t, q, 35);
                        assert_eq!(via_product, brute, "seed {seed}, {s}→{t} state {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma5_count_random() {
        let c = CountWalk { c: 2 };
        for seed in 10..14 {
            let g = random_labeled_instance(5, 14, 2, seed);
            let p = build_product(&g, &c);
            for s in 0..5u32 {
                let spt = dijkstra(&p.graph, p.vertex(s, NABLA));
                for t in 0..5u32 {
                    for k in 0..=2u32 {
                        let q = c.count_state(k);
                        let via_product = spt.dist[p.vertex(t, q) as usize];
                        let brute = brute_force_constrained_dist(&g, &c, s, t, q, 30);
                        assert_eq!(via_product, brute, "seed {seed}, {s}→{t} count {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn bot_backbone_bounds_diameter() {
        // ⟦G_C⟧ diameter stays within a small factor of D(⟦G⟧).
        let g = twgraph::gen::with_unit_weights(&twgraph::gen::path(12));
        let c = ColoredWalk { colors: 2 };
        let p = build_product(&g, &c);
        let comm = p.graph.comm_graph();
        let d_phys = twgraph::alg::diameter_exact(&g.comm_graph());
        let d_virt = twgraph::alg::diameter_exact(&comm);
        assert!(
            d_virt <= d_phys + 2,
            "product diameter {d_virt} vs physical {d_phys}"
        );
    }

    #[test]
    fn bot_copies_never_reach_live_states() {
        let g = random_labeled_instance(5, 12, 2, 3);
        let c = ColoredWalk { colors: 2 };
        let p = build_product(&g, &c);
        let spt = dijkstra(&p.graph, p.vertex(0, BOT));
        for v in 0..5u32 {
            for q in 1..c.n_states() as StateId {
                assert_eq!(
                    spt.dist[p.vertex(v, q) as usize],
                    INF,
                    "⊥ must not reach live state ({v},{q})"
                );
            }
        }
    }

    #[test]
    fn product_size_matches_formula() {
        let g = random_labeled_instance(7, 20, 3, 4);
        let c = ColoredWalk { colors: 3 };
        let p = build_product(&g, &c);
        assert_eq!(p.graph.n(), 7 * c.n_states());
        let (v, q) = p.split(p.vertex(4, 3));
        assert_eq!((v, q), (4, 3));
        assert_eq!(p.host(p.vertex(4, 3)), 4);
    }
}
