//! Smoke test: the documented entry point (`examples/quickstart.rs`) must
//! keep running to completion. The example source is compiled into this
//! test verbatim via a `#[path]` module, so API drift in the example is
//! caught by `cargo test` — not only by someone happening to run it.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[test]
fn quickstart_example_runs_to_completion() {
    quickstart::main();
}
