//! Criterion: distance-label construction and decoding (Theorem 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distlabel::{build_labels_centralized, decode};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treedec::SepConfig;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("labels_build");
    group.sample_size(10);
    for n in [128usize, 256] {
        let g = twgraph::gen::partial_ktree(n, 3, 0.7, 1);
        let inst = twgraph::gen::with_random_weights(&g, 30, 1);
        let cfg = SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(2);
        let dec = treedec::decompose_centralized(&g, 4, &cfg, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| build_labels_centralized(inst, &dec.td, &dec.info).len())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let n = 256usize;
    let g = twgraph::gen::partial_ktree(n, 3, 0.7, 1);
    let inst = twgraph::gen::with_random_weights(&g, 30, 1);
    let cfg = SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(2);
    let dec = treedec::decompose_centralized(&g, 4, &cfg, &mut rng).unwrap();
    let labels = build_labels_centralized(&inst, &dec.td, &dec.info);
    c.bench_function("decode_pair", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % n as u32;
            decode(&labels[i as usize], &labels[(n as u32 - 1 - i) as usize])
        })
    });
}

criterion_group!(benches, bench_build, bench_decode);
criterion_main!(benches);
