//! Centralized minimum X–Y vertex cut (Menger / max-flow with unit vertex
//! capacities) — the oracle for the distributed MVC task.

use crate::ugraph::UGraph;
use std::collections::VecDeque;
use std::fmt;

/// A violated precondition or internal invariant of [`min_vertex_cut`].
///
/// Both conditions used to be `debug_assert!`s, which vanish in release
/// builds — exactly the builds the benchmark harness and the max-flow
/// pipeline oracle run. They are now checked on every build profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MincutError {
    /// `members` was passed but is not strictly ascending, so the
    /// binary-search membership test would silently misclassify vertices
    /// and the "cut" could fail to separate anything.
    UnsortedMembers,
    /// Max-flow/min-cut duality broke: the reachability cut extracted
    /// after the final BFS does not have exactly `flow` vertices. This is
    /// an internal algorithm bug, never a caller error.
    CutFlowMismatch {
        /// Vertices in the extracted cut.
        cut: usize,
        /// Augmenting paths found (the max-flow value).
        flow: usize,
    },
}

impl fmt::Display for MincutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MincutError::UnsortedMembers => {
                write!(f, "min_vertex_cut: members list must be strictly ascending")
            }
            MincutError::CutFlowMismatch { cut, flow } => write!(
                f,
                "min_vertex_cut: internal invariant broke — cut size {cut} != max flow {flow}"
            ),
        }
    }
}

impl std::error::Error for MincutError {}

/// Minimum vertex cut separating `xs` from `ys` inside the subgraph induced
/// by `members` (`None` = whole graph), if its size is ≤ `t`.
///
/// Returns `Ok(None)` when the minimum exceeds `t` — including the ∞ cases
/// (X ∩ Y ≠ ∅ or an X–Y edge). The cut never contains X ∪ Y vertices.
/// `Err` means the `members` precondition was violated or the internal
/// max-flow/min-cut invariant broke; see [`MincutError`].
pub fn min_vertex_cut(
    g: &UGraph,
    members: Option<&[u32]>,
    xs: &[u32],
    ys: &[u32],
    t: usize,
) -> Result<Option<Vec<u32>>, MincutError> {
    let n = g.n();
    let in_members = |v: u32| -> bool { members.map_or(true, |m| m.binary_search(&v).is_ok()) };
    if !members.map_or(true, |m| m.windows(2).all(|w| w[0] < w[1])) {
        return Err(MincutError::UnsortedMembers);
    }
    let mut is_x = vec![false; n];
    let mut is_y = vec![false; n];
    for &x in xs {
        is_x[x as usize] = true;
    }
    for &y in ys {
        is_y[y as usize] = true;
        if is_x[y as usize] {
            return Ok(None); // overlap ⇒ ∞
        }
    }

    // Split nodes: in = 2v, out = 2v+1. Internal cap 1 (∞ for X/Y), edge
    // arcs ∞. Net-flow bookkeeping on edges; boolean on internal arcs.
    let mut internal_flow = vec![false; n];
    let mut edge_flow: std::collections::HashMap<(u32, u32), i32> =
        std::collections::HashMap::new();
    let nf = |ef: &std::collections::HashMap<(u32, u32), i32>, v: u32, w: u32| -> i32 {
        *ef.get(&(v, w)).unwrap_or(&0)
    };

    let mut flow = 0usize;
    loop {
        // BFS over the residual split graph.
        let mut par_in: Vec<i64> = vec![-2; n]; // -2 unvisited, -1 start, w = FwdEdge, -3 FromOut
        let mut par_out: Vec<i64> = vec![-2; n]; // -2 unvisited, -1 start, w = RevEdge, -3 FromIn
        let mut q = VecDeque::new();
        for &x in xs {
            if !in_members(x) {
                continue;
            }
            par_out[x as usize] = -1;
            par_in[x as usize] = -1;
            q.push_back(2 * x + 1); // x_out
            q.push_back(2 * x);
        }
        let mut reached_sink: Option<u32> = None;
        while let Some(node) = q.pop_front() {
            let v = node / 2;
            let is_out = node % 2 == 1;
            if is_out {
                // v_out → w_in (∞ forward arcs).
                for &w in g.neighbors(v) {
                    if in_members(w) && par_in[w as usize] == -2 {
                        par_in[w as usize] = v as i64;
                        if is_y[w as usize] {
                            reached_sink = Some(w);
                            break;
                        }
                        q.push_back(2 * w);
                    }
                }
                if reached_sink.is_some() {
                    break;
                }
                // v_out → v_in (internal reverse) iff flow present or ∞ cap.
                let free = is_x[v as usize] || is_y[v as usize] || internal_flow[v as usize];
                if free && par_in[v as usize] == -2 {
                    par_in[v as usize] = -3;
                    if is_y[v as usize] {
                        reached_sink = Some(v);
                        break;
                    }
                    q.push_back(2 * v);
                }
            } else {
                // v_in → v_out (internal forward) iff no flow or ∞ cap.
                let free = is_x[v as usize] || is_y[v as usize] || !internal_flow[v as usize];
                if free && par_out[v as usize] == -2 {
                    par_out[v as usize] = -3;
                    q.push_back(2 * v + 1);
                }
                // v_in → w_out (residual reverse) iff net flow w→v positive.
                for &w in g.neighbors(v) {
                    if in_members(w) && nf(&edge_flow, v, w) < 0 && par_out[w as usize] == -2 {
                        par_out[w as usize] = v as i64;
                        q.push_back(2 * w + 1);
                    }
                }
            }
        }

        let Some(sink) = reached_sink else {
            // No augmenting path: extract the cut from reachability.
            let mut cut = Vec::new();
            for v in 0..n as u32 {
                if par_in[v as usize] != -2
                    && par_out[v as usize] == -2
                    && !is_x[v as usize]
                    && !is_y[v as usize]
                {
                    cut.push(v);
                }
            }
            if cut.len() != flow {
                return Err(MincutError::CutFlowMismatch {
                    cut: cut.len(),
                    flow,
                });
            }
            return Ok(Some(cut));
        };

        flow += 1;
        if flow > t {
            return Ok(None);
        }
        // Backtrace from sink_in, flipping residual arcs.
        let mut v = sink;
        let mut side_in = true;
        loop {
            if side_in {
                match par_in[v as usize] {
                    -1 => break,
                    -3 => {
                        if !is_x[v as usize] && !is_y[v as usize] {
                            internal_flow[v as usize] = false;
                        }
                        side_in = false;
                    }
                    w => {
                        let w = w as u32;
                        *edge_flow.entry((v, w)).or_insert(0) -= 1;
                        *edge_flow.entry((w, v)).or_insert(0) += 1;
                        v = w;
                        side_in = false;
                    }
                }
            } else {
                match par_out[v as usize] {
                    -1 => break,
                    -3 => {
                        if !is_x[v as usize] && !is_y[v as usize] {
                            internal_flow[v as usize] = true;
                        }
                        side_in = true;
                    }
                    w => {
                        let w = w as u32;
                        *edge_flow.entry((v, w)).or_insert(0) -= 1;
                        *edge_flow.entry((w, v)).or_insert(0) += 1;
                        v = w;
                        side_in = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::components;
    use crate::gen::{cycle, grid, path};

    fn separates(g: &UGraph, cut: &[u32], xs: &[u32], ys: &[u32]) -> bool {
        let keep: Vec<bool> = (0..g.n() as u32).map(|v| !cut.contains(&v)).collect();
        let (h, old_of) = g.induced(&keep);
        let (comp, _) = components(&h);
        let comp_of = |v: u32| comp[old_of.iter().position(|&o| o == v).unwrap()];
        xs.iter()
            .all(|&x| ys.iter().all(|&y| comp_of(x) != comp_of(y)))
    }

    #[test]
    fn path_needs_one() {
        let g = path(7);
        let cut = min_vertex_cut(&g, None, &[0], &[6], 3).unwrap().unwrap();
        assert_eq!(cut.len(), 1);
        assert!(separates(&g, &cut, &[0], &[6]));
    }

    #[test]
    fn cycle_needs_two() {
        let g = cycle(8);
        let cut = min_vertex_cut(&g, None, &[0], &[4], 3).unwrap().unwrap();
        assert_eq!(cut.len(), 2);
        assert!(separates(&g, &cut, &[0], &[4]));
    }

    #[test]
    fn grid_columns() {
        let g = grid(3, 5);
        let cut = min_vertex_cut(&g, None, &[0, 5, 10], &[4, 9, 14], 4)
            .unwrap()
            .unwrap();
        assert_eq!(cut.len(), 3);
        assert!(separates(&g, &cut, &[0, 5, 10], &[4, 9, 14]));
    }

    #[test]
    fn infinite_cases() {
        let g = path(3);
        assert!(min_vertex_cut(&g, None, &[0], &[1], 5).unwrap().is_none()); // adjacent
        assert!(min_vertex_cut(&g, None, &[0, 1], &[1, 2], 5)
            .unwrap()
            .is_none()); // overlap
    }

    #[test]
    fn budget_respected() {
        let g = cycle(8);
        assert!(min_vertex_cut(&g, None, &[0], &[4], 1).unwrap().is_none());
    }

    #[test]
    fn members_restriction() {
        let g = cycle(6);
        let half = [0u32, 1, 2, 3];
        let cut = min_vertex_cut(&g, Some(&half), &[0], &[3], 3)
            .unwrap()
            .unwrap();
        assert_eq!(cut.len(), 1);
    }

    #[test]
    fn already_disconnected() {
        let g = UGraph::from_edges(4, [(0, 1), (2, 3)]);
        let cut = min_vertex_cut(&g, None, &[0], &[3], 3).unwrap().unwrap();
        assert!(cut.is_empty());
    }

    /// The members-sorted precondition is a typed error on every build
    /// profile — this test is meaningful in `--release`, where the old
    /// `debug_assert!` compiled to nothing and the binary-search
    /// membership test silently misfired.
    #[test]
    fn unsorted_members_rejected_in_release_too() {
        let g = cycle(6);
        let unsorted = [3u32, 0, 1, 2];
        assert_eq!(
            min_vertex_cut(&g, Some(&unsorted), &[0], &[3], 3),
            Err(MincutError::UnsortedMembers)
        );
        // Duplicates are "not strictly ascending" too.
        let dup = [0u32, 1, 1, 2];
        assert_eq!(
            min_vertex_cut(&g, Some(&dup), &[0], &[2], 3),
            Err(MincutError::UnsortedMembers)
        );
    }

    /// The cut == flow duality check holds on every graph we can throw at
    /// it; seeded sweep so a future augmentation bug surfaces as the typed
    /// `CutFlowMismatch` error instead of a wrong answer.
    #[test]
    fn duality_checked_on_random_grids() {
        for seed in 0..4u32 {
            let g = grid(4, 4 + seed as usize);
            let n = g.n() as u32;
            let cut = min_vertex_cut(&g, None, &[0], &[n - 1], 8)
                .expect("duality invariant")
                .expect("grid corners are non-adjacent");
            assert!(separates(&g, &cut, &[0], &[n - 1]));
        }
    }

    #[test]
    fn error_display_names_the_invariant() {
        let e = MincutError::CutFlowMismatch { cut: 3, flow: 2 };
        assert!(e.to_string().contains("cut size 3 != max flow 2"));
        assert!(MincutError::UnsortedMembers
            .to_string()
            .contains("strictly ascending"));
    }
}
