//! CCD — connected component detection (paper Lemma 8).
//!
//! Min-UID label flooding restricted to *active* nodes and an *allowed*
//! edge predicate (evaluated symmetrically at both endpoints, from purely
//! local data). Every active node ends up knowing the minimum UID in its
//! component of the allowed subgraph — a globally unique component id.
//! Rounds ≈ the largest component diameter (measured; see DESIGN.md §4 on
//! why flooding is the honest substitute here).

use congest_sim::Network;

#[derive(Clone)]
struct CcdState {
    label: u64,
    fresh: bool,
    active: bool,
}

/// Detect components among `active` nodes across edges `{u, v}` with both
/// endpoints active and `allowed(u, v)` true. Returns per node the
/// component label (min UID in the component), `None` for inactive nodes.
pub fn detect(
    net: &mut Network,
    active: &[bool],
    allowed: impl Fn(u32, u32) -> bool + Sync,
) -> Vec<Option<u64>> {
    let n = net.n();
    assert_eq!(active.len(), n);
    let g = net.graph().clone();
    let mut states: Vec<CcdState> = (0..n as u32)
        .map(|v| CcdState {
            label: net.uid(v),
            fresh: active[v as usize],
            active: active[v as usize],
        })
        .collect();
    let active_ref = active;
    net.run_until_quiet(
        &mut states,
        |u, s: &CcdState| {
            if s.fresh && s.active {
                g.neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| active_ref[v as usize] && allowed(u, v))
                    .map(|v| (v, s.label))
                    .collect()
            } else {
                Vec::new()
            }
        },
        |_v, s, inbox| {
            s.fresh = false;
            if !s.active {
                return;
            }
            for (_src, label) in inbox {
                if label < s.label {
                    s.label = label;
                    s.fresh = true;
                }
            }
        },
        8 * n as u64 + 64,
    );
    states
        .into_iter()
        .map(|s| s.active.then_some(s.label))
        .collect()
}

/// Compact the labels of [`detect`] into dense part ids `0..N` (ordered by
/// label) — a free local relabeling given a globally known label list, which
/// in a real execution is one aggregation the caller has typically already
/// paid for. Returns `(per-node part id, part count)`.
pub fn compact_labels(labels: &[Option<u64>]) -> (Vec<Option<u32>>, usize) {
    let mut distinct: Vec<u64> = labels.iter().flatten().copied().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let ids = labels
        .iter()
        .map(|l| l.map(|x| distinct.binary_search(&x).unwrap() as u32))
        .collect();
    (ids, distinct.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::alg::components;
    use twgraph::gen::{grid, path};
    use twgraph::UGraph;

    #[test]
    fn whole_graph_single_component() {
        let g = grid(3, 4);
        let mut net = Network::new(g, NetworkConfig::default());
        let labels = detect(&mut net, &vec![true; 12], |_, _| true);
        let first = labels[0].unwrap();
        assert!(labels.iter().all(|&l| l == Some(first)));
    }

    #[test]
    fn removing_cut_vertex_splits() {
        // Path 0-1-2-3-4; deactivate 2 → components {0,1} and {3,4}.
        let g = path(5);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut active = vec![true; 5];
        active[2] = false;
        let labels = detect(&mut net, &active, |_, _| true);
        assert!(labels[2].is_none());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        let (ids, count) = compact_labels(&labels);
        assert_eq!(count, 2);
        assert!(ids[2].is_none());
    }

    #[test]
    fn edge_filter_respected() {
        // Cycle of 6 with edges {0,1} and {3,4} forbidden → two arcs.
        let g = twgraph::gen::cycle(6);
        let mut net = Network::new(g, NetworkConfig::default());
        let forbidden = [(0u32, 1u32), (3, 4)];
        let labels = detect(&mut net, &vec![true; 6], |u, v| {
            let key = if u < v { (u, v) } else { (v, u) };
            !forbidden.contains(&key)
        });
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[1]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[5], labels[0]);
    }

    #[test]
    fn matches_centralized_components() {
        let g = UGraph::from_edges(8, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (5, 7)]);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let labels = detect(&mut net, &vec![true; 8], |_, _| true);
        let (comp, k) = components(&g);
        let (ids, count) = compact_labels(&labels);
        assert_eq!(count, k);
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(
                    comp[u] == comp[v],
                    ids[u] == ids[v],
                    "component mismatch for {u},{v}"
                );
            }
        }
    }
}
