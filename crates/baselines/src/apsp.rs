//! Pipelined all-pairs BFS: every vertex floods its id; nodes forward at
//! most `W` new (source, dist) pairs per incident edge per superstep.
//! Θ(n + D) rounds — the canonical distributed diameter routine the
//! girth/diameter separation of §1.2 is measured against.

use congest_sim::{CongestError, Network};
use std::collections::VecDeque;

#[derive(Clone)]
struct ApspState {
    /// dist[s] = hop distance from source s (u32::MAX unknown).
    dist: Vec<u32>,
    /// Pairs awaiting forwarding.
    queue: VecDeque<(u32, u32)>,
}

/// Run the full flood; returns `(per-node distance vectors, rounds)`.
/// Memory is Θ(n²) — intended for the modest `n` of the separation
/// experiment, where the *round* count is the object of study.
pub fn apsp_pipelined_distributed(net: &mut Network) -> Result<(Vec<Vec<u32>>, u64), CongestError> {
    let n = net.n();
    let g = net.graph().clone();
    let start = net.metrics().rounds;
    let rate = net.config().bandwidth_words.max(1) as usize;

    let mut states: Vec<ApspState> = (0..n)
        .map(|v| {
            let mut dist = vec![u32::MAX; n];
            dist[v] = 0;
            ApspState {
                dist,
                queue: VecDeque::from([(v as u32, 0u32)]),
            }
        })
        .collect();

    let guard = 8 * (n as u64 + 2) * (n as u64 + 2);
    let mut steps = 0u64;
    loop {
        let pending: Vec<usize> = states.iter().map(|s| s.queue.len().min(rate)).collect();
        if pending.iter().all(|&p| p == 0) {
            break;
        }
        assert!(steps < guard, "apsp exceeded {guard} supersteps");
        steps += 1;
        net.superstep(
            &mut states,
            |u, s: &ApspState| {
                let mut out = Vec::new();
                for &(src, d) in s.queue.iter().take(pending[u as usize]) {
                    for &w in g.neighbors(u) {
                        out.push((w, (src, d)));
                    }
                }
                out
            },
            |_v, s, inbox| {
                for (_from, (src, d)) in inbox {
                    if d + 1 < s.dist[src as usize] {
                        s.dist[src as usize] = d + 1;
                        s.queue.push_back((src, d + 1));
                    }
                }
            },
        )?;
        for (v, s) in states.iter_mut().enumerate() {
            s.queue.drain(..pending[v]);
        }
    }
    Ok((
        states.into_iter().map(|s| s.dist).collect(),
        net.metrics().rounds - start,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::NetworkConfig;
    use twgraph::alg::bfs_dist;
    use twgraph::gen::{bit_gadget, grid};

    #[test]
    fn matches_centralized_bfs() {
        let g = grid(4, 5);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let (dists, rounds) = apsp_pipelined_distributed(&mut net).unwrap();
        for v in 0..g.n() as u32 {
            assert_eq!(dists[v as usize], bfs_dist(&g, v));
        }
        assert!(rounds >= g.n() as u64 / 2, "rounds = {rounds}");
    }

    #[test]
    fn rounds_linear_in_n_on_bit_gadget() {
        // Constant diameter but Θ(n) information per edge: the rounds are
        // forced to Ω(n) — the "diameter is expensive" half of E8.
        let g = bit_gadget(4);
        let n = g.n() as u64;
        let mut net = Network::new(g, NetworkConfig::default());
        let (_, rounds) = apsp_pipelined_distributed(&mut net).unwrap();
        assert!(rounds >= n / 2, "rounds = {rounds}, n = {n}");
    }
}
