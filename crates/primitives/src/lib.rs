//! # subgraph-ops — the paper's primitive layer (§2.3, Appendix A)
//!
//! The paper builds everything from a small set of *subgraph operations*
//! executed simultaneously over a collection `H = {H_1, …, H_N}` of
//! vertex-disjoint (or *near-disjoint*, Appendix A.1) connected subgraphs:
//!
//! | shorthand | task | here |
//! |-----------|------|------|
//! | PA  | part-wise aggregation | [`pa::aggregate`], [`pa::aggregate_and_share`] |
//! | SNC | one-round neighbour exchange | [`snc::exchange`] |
//! | RST | rooted spanning tree per part | [`bfs::part_bfs_trees`] |
//! | STA | subtree aggregation | [`flow::upflow`] on part trees |
//! | SLE | subgraph leader election | [`pa::elect_leaders`] |
//! | CCD | connected component detection | [`ccd::detect`] |
//! | BCT(h) | multi-source subgraph broadcast | [`pa::broadcast`] |
//! | MVC(h,t) | minimum vertex cuts | [`mvc::batch_min_vertex_cut`] |
//! | probes | walk diagonals / bounded hop distances | [`probe::closed_walk_spectrum`], [`probe::bounded_hop_distances`] |
//!
//! No single theorem is "the" primitive layer; rather, every theorem rides
//! it: Theorem 1 (tree decomposition) consumes RST/STA/SLE/CCD/MVC inside
//! `Split`, Theorems 2–5 consume PA/BCT for the per-level bag broadcasts,
//! and the shared-superstep execution realizes the Theorem 6 scheduling
//! bound by construction (see below).
//!
//! ## Shortcut substitution (DESIGN.md §4.1)
//!
//! The paper realizes PA with tree-restricted low-congestion shortcuts
//! (\[HIZ16\]; Lemma 9: dilation Õ(τD), congestion Õ(τ)). We implement the
//! same *family* — every part aggregates along the minimal Steiner subtree
//! of one global BFS tree — and let the simulator *measure* congestion
//! instead of assuming the Õ(τ) bound (experiment E9 reports the measured
//! values next to the prediction). Tasks that inherently ride a part's own
//! spanning tree (RST construction itself, STA for the `Split` procedure)
//! use honest flooding whose dilation is measured.
//!
//! All flows are *rate-limited executable schedules*: per superstep a node
//! forwards at most `W` queued items per edge, so every superstep costs one
//! round and the total round count is the schedule length — the same
//! O(dilation + congestion) envelope as Ghaffari's scheduling theorem
//! (paper Theorem 6).

pub mod bfs;
pub mod ccd;
pub mod flow;
pub mod global;
pub mod mvc;
pub mod pa;
pub mod parts;
pub mod probe;
pub mod roles;
pub mod snc;

pub use global::GlobalTree;
pub use parts::Parts;
pub use roles::{ParentMap, TreeRoles};
