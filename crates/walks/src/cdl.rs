//! CDL(C) — constrained distance labeling (paper §5.2, Theorem 3) and
//! constrained single-source shortest walks (Corollary 1).

use crate::constraint::{StateId, StatefulConstraint, NABLA};
use crate::product::{build_product, ProductGraph};
use congest_sim::{CongestError, EdgeProjection, Metrics, Network, NetworkConfig};
use distlabel::label::{decode, Label};
use distlabel::{build_labels_centralized, build_labels_distributed};
use treedec::decomp::NodeInfo;
use twgraph::alg::{dijkstra, ShortestPathTree};
use twgraph::tw::TreeDecomposition;
use twgraph::{ArcId, Dist, MultiDigraph, INF};

/// Lift a physical decomposition to the product: every bag/record vertex
/// `v` becomes its |Q| copies. Validity carries over because the copies of
/// a connected physical set stay connected through the ⊥ backbone, so the
/// {G'_x} structure is preserved (paper §5.2: the lifted decomposition has
/// width (w+1)·|Q| − 1).
pub fn lift_decomposition(
    td: &TreeDecomposition,
    info: &[NodeInfo],
    q: usize,
) -> (TreeDecomposition, Vec<NodeInfo>) {
    let lift = |vs: &[u32]| -> Vec<u32> {
        let mut out = Vec::with_capacity(vs.len() * q);
        for &v in vs {
            for i in 0..q as u32 {
                out.push(v * q as u32 + i);
            }
        }
        out.sort_unstable();
        out
    };
    let mut ltd = TreeDecomposition {
        bags: td.bags.iter().map(|b| lift(b)).collect(),
        parent: td.parent.clone(),
        children: td.children.clone(),
        root: td.root,
    };
    // push_bag sorts; mirror that invariant manually since we cloned.
    for bag in &mut ltd.bags {
        bag.sort_unstable();
    }
    let linfo = info
        .iter()
        .map(|ni| NodeInfo {
            gpx: lift(&ni.gpx),
            inherited: lift(&ni.inherited),
            sep: lift(&ni.sep),
            is_leaf: ni.is_leaf,
        })
        .collect();
    (ltd, linfo)
}

/// A constructed constrained distance labeling.
pub struct CdlLabeling {
    /// The product graph the labels live on.
    pub product: ProductGraph,
    /// One label per product vertex.
    pub labels: Vec<Label>,
}

impl CdlLabeling {
    /// Centralized construction (the oracle).
    pub fn build_centralized(
        inst: &MultiDigraph,
        c: &impl StatefulConstraint,
        td: &TreeDecomposition,
        info: &[NodeInfo],
    ) -> Self {
        let product = build_product(inst, c);
        let (ltd, linfo) = lift_decomposition(td, info, product.q);
        let labels = build_labels_centralized(&product.graph, &ltd, &linfo);
        CdlLabeling { product, labels }
    }

    /// Distributed construction: the product's communication graph runs as
    /// a virtual network whose traffic is charged onto physical edges
    /// through the host projection — the §5.2 simulation, measured.
    /// Returns the labeling and the metrics of the virtual execution.
    pub fn build_distributed(
        inst: &MultiDigraph,
        c: &impl StatefulConstraint,
        td: &TreeDecomposition,
        info: &[NodeInfo],
        cfg: NetworkConfig,
    ) -> Result<(Self, Metrics), CongestError> {
        let product = build_product(inst, c);
        let (ltd, linfo) = lift_decomposition(td, info, product.q);
        let virt = product.graph.comm_graph();
        let phys = inst.comm_graph();
        let q = product.q as u32;
        let proj = EdgeProjection::from_hosts(&virt, &phys, |pv| pv / q)?;
        let mut vnet = Network::with_projection(virt, proj, cfg);
        let (labels, _rounds) = build_labels_distributed(&mut vnet, &product.graph, &ltd, &linfo)?;
        Ok((CdlLabeling { product, labels }, *vnet.metrics()))
    }

    /// The decoder `sdec(q, sla(u), sla(v))`: shortest C(q)-walk weight
    /// from `u` to `v` — evaluated as `dec(la((u,▽)), la((v,q)))`.
    pub fn dist(&self, u: u32, v: u32, q_target: StateId) -> Dist {
        let lu = &self.labels[self.product.vertex(u, NABLA) as usize];
        let lv = &self.labels[self.product.vertex(v, q_target) as usize];
        decode(lu, lv)
    }

    /// Total label size in words for physical vertex `v` (all its copies —
    /// what node `v` stores).
    pub fn words_at(&self, v: u32) -> usize {
        (0..self.product.q as u32)
            .map(|i| self.labels[(v * self.product.q as u32 + i) as usize].words())
            .sum()
    }
}

/// Constrained single-source shortest walks from `(s, ▽)` with walk
/// extraction (Corollary 1). Runs Dijkstra on the product (free local
/// computation once the product is known; the distributed variants pay for
/// their data movement in the callers that use this, e.g. matching charges
/// the CDL cost).
pub struct ConstrainedSssp {
    /// The product searched.
    pub product: ProductGraph,
    /// Shortest-path tree from `(source, ▽)`.
    pub spt: ShortestPathTree,
    /// The physical source.
    pub source: u32,
}

impl ConstrainedSssp {
    /// Run from `s`.
    pub fn run(inst: &MultiDigraph, c: &impl StatefulConstraint, s: u32) -> Self {
        let product = build_product(inst, c);
        let spt = dijkstra(&product.graph, product.vertex(s, NABLA));
        ConstrainedSssp {
            product,
            spt,
            source: s,
        }
    }

    /// Shortest C(q)-walk weight from the source to `t`.
    pub fn dist(&self, t: u32, q: StateId) -> Dist {
        self.spt.dist[self.product.vertex(t, q) as usize]
    }

    /// The physical arc sequence of a shortest C(q)-walk to `t`, if any.
    pub fn walk_to(&self, t: u32, q: StateId) -> Option<Vec<ArcId>> {
        if self.dist(t, q) >= INF {
            return None;
        }
        let path = self
            .spt
            .path_to(&self.product.graph, self.product.vertex(t, q))?;
        Some(
            path.into_iter()
                .filter_map(|pa| {
                    let o = self.product.origin[pa.idx()];
                    (o != u32::MAX).then_some(ArcId(o))
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ColoredWalk, CountWalk};
    use crate::product::brute_force_constrained_dist;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::gen::banded_path;
    use twgraph::{Arc, UEdgeId};

    /// A banded-path instance with random colors on undirected edges.
    fn colored_instance(n: usize, colors: u32, seed: u64) -> MultiDigraph {
        let g = banded_path(n, 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        MultiDigraph::from_undirected_labeled(
            n,
            g.edges()
                .map(|(u, v)| (u, v, rng.gen_range(1..8), rng.gen_range(0..colors))),
        )
    }

    fn decomposition_of(inst: &MultiDigraph, seed: u64) -> (TreeDecomposition, Vec<NodeInfo>) {
        let g = inst.comm_graph();
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        (dec.td, dec.info)
    }

    #[test]
    fn lifted_decomposition_is_valid() {
        let inst = colored_instance(40, 3, 1);
        let (td, info) = decomposition_of(&inst, 2);
        let c = ColoredWalk { colors: 3 };
        let product = build_product(&inst, &c);
        let (ltd, _) = lift_decomposition(&td, &info, product.q);
        ltd.verify(&product.graph.comm_graph())
            .unwrap_or_else(|e| panic!("lifted decomposition invalid: {e}"));
    }

    #[test]
    fn cdl_matches_product_dijkstra() {
        let inst = colored_instance(36, 3, 3);
        let (td, info) = decomposition_of(&inst, 4);
        let c = ColoredWalk { colors: 3 };
        let cdl = CdlLabeling::build_centralized(&inst, &c, &td, &info);
        for s in (0..36u32).step_by(7) {
            let sssp = ConstrainedSssp::run(&inst, &c, s);
            for t in 0..36u32 {
                for q in 2..c.n_states() as StateId {
                    assert_eq!(cdl.dist(s, t, q), sssp.dist(t, q), "{s}→{t} state {q}");
                }
            }
        }
    }

    #[test]
    fn distributed_cdl_matches_centralized() {
        let inst = colored_instance(24, 2, 5);
        let (td, info) = decomposition_of(&inst, 6);
        let c = ColoredWalk { colors: 2 };
        let central = CdlLabeling::build_centralized(&inst, &c, &td, &info);
        let (dist, metrics) =
            CdlLabeling::build_distributed(&inst, &c, &td, &info, NetworkConfig::default())
                .unwrap();
        assert_eq!(central.labels, dist.labels);
        assert!(metrics.rounds > 0);
    }

    #[test]
    fn count_walk_self_distance_uses_cycles() {
        // Exact count-1 closed walks (the girth machinery, Lemma 6):
        // compare against the brute-force oracle on a small instance.
        let inst = {
            // A 6-cycle with one marked edge.
            let arcs: Vec<(u32, u32, u64, u32)> = (0..6u32)
                .map(|i| (i, (i + 1) % 6, 1, u32::from(i == 2)))
                .collect();
            MultiDigraph::from_undirected_labeled(6, arcs)
        };
        let c = CountWalk { c: 1 };
        for v in 0..6u32 {
            let sssp = ConstrainedSssp::run(&inst, &c, v);
            let got = sssp.dist(v, c.count_state(1));
            let brute = brute_force_constrained_dist(&inst, &c, v, v, c.count_state(1), 14);
            assert_eq!(got, brute, "closed exact-count-1 walk at {v}");
            // The shortest such closed walk is the 6-cycle itself.
            assert_eq!(got, 6, "vertex {v}");
        }
    }

    #[test]
    fn walk_extraction_is_consistent() {
        let inst = colored_instance(30, 3, 7);
        let c = ColoredWalk { colors: 3 };
        let sssp = ConstrainedSssp::run(&inst, &c, 0);
        for t in 1..30u32 {
            for q in 2..c.n_states() as StateId {
                let d = sssp.dist(t, q);
                match sssp.walk_to(t, q) {
                    Some(walk) => {
                        // Weight matches, endpoints match, constraint holds,
                        // final state matches.
                        let total: u64 = walk.iter().map(|&a| inst.arc(a).weight).sum();
                        assert_eq!(total, d);
                        assert_eq!(inst.arc(walk[0]).src, 0);
                        assert_eq!(inst.arc(*walk.last().unwrap()).dst, t);
                        let arcs: Vec<Arc> = walk.iter().map(|&a| *inst.arc(a)).collect();
                        assert_eq!(c.walk_state(&arcs), q);
                        // Consecutive arcs share endpoints (a real walk).
                        for w in walk.windows(2) {
                            assert_eq!(inst.arc(w[0]).dst, inst.arc(w[1]).src);
                        }
                    }
                    None => assert_eq!(d, INF),
                }
            }
        }
    }

    #[test]
    fn virtual_rounds_scale_with_q() {
        // Bigger |Q| ⇒ more virtual traffic per physical edge ⇒ more
        // rounds (Theorem 3's |Q| dependence, measured).
        let inst = {
            let g = banded_path(24, 2);
            let mut rng = SmallRng::seed_from_u64(8);
            MultiDigraph::from_undirected_labeled(
                24,
                g.edges().map(|(u, v)| (u, v, 1, rng.gen_range(0..2))),
            )
        };
        let (td, info) = decomposition_of(&inst, 9);
        let rounds = |cmax: u32| {
            let c = CountWalk { c: cmax };
            CdlLabeling::build_distributed(&inst, &c, &td, &info, NetworkConfig::default())
                .unwrap()
                .1
                .rounds
        };
        let r1 = rounds(1);
        let r4 = rounds(4);
        assert!(r4 > r1, "rounds must grow with |Q|: {r1} vs {r4}");
    }

    #[test]
    fn unused_uedge_marker() {
        let _ = UEdgeId::NONE;
    }
}
