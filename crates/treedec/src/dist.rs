//! Distributed tree decomposition (paper Theorem 1, Appendix B.2–B.3).
//!
//! All recursion-level subgraphs {G'_x | x ∈ A_ℓ} are vertex disjoint and
//! mutually non-adjacent, so one CONGEST execution processes the whole
//! level: every data movement — counting µ, leader election, spanning-tree
//! construction (RST), subtree sizing for `Split` (STA), component
//! detection (CCD), component measures (PA) and the sampled-pair vertex
//! cuts (MVC) — runs through the charged simulator primitives, batched
//! across parts in shared supersteps. Control decisions (loop advancement,
//! balance verdicts) are orchestrated centrally and charged as O(height)
//! control pulses per phase (DESIGN.md §4.4).
//!
//! ## Copy-free recursion
//!
//! The recursion state is arena-backed: each level keeps its subproblems as
//! ranges into one flat vertex arena (`LevelArena`), membership tests go
//! through a generation-stamped set ([`StampSet`]) instead of per-item
//! binary searches, and all dense per-vertex scratch (the µ measure, the
//! removed-roots mask, part labels) lives in a `SepScratch` pool that is
//! reset sparsely and reused across every level and every `t`-doubling
//! attempt. Nothing clones the graph and nothing allocates O(n) per
//! subproblem; combined with the engine's scoped supersteps the whole
//! construction costs O(work touched), not O(levels · n²).
//!
//! ## Sibling-branch scheduling
//!
//! Post-separator components are vertex disjoint, so the *local* work of
//! sibling subproblems (split-tree carving, component search, boundary
//! extraction) is embarrassingly parallel: it fans out over rayon in
//! weight-balanced chunks (the engine's [`balanced_ranges`] idiom), keyed
//! by [`SepConfig::branch_schedule`]. The *charged* schedule is untouched —
//! sibling flows already share supersteps and per-item charging stays in
//! deterministic item order — so parallel and sequential scheduling produce
//! bit-identical decompositions and metrics (the parallel-composition rule;
//! see `congest_sim::Metrics::par_absorb` for the aggregation law and the
//! `branch_schedules_agree` proptest for the lock).

use crate::config::{BranchSchedule, SepConfig};
use crate::decomp::{DecompError, NodeInfo};
use crate::sep::SepPath;
use crate::split::{split_to_completion, STree};
use congest_sim::{balanced_ranges, CongestError, Network};
use rand::Rng;
use rayon::prelude::*;
use std::collections::VecDeque;
use subgraph_ops::ccd;
use subgraph_ops::global::{build_global_tree, GlobalTree};
use subgraph_ops::mvc::{batch_min_vertex_cut, CutInstance, CutResult};
use subgraph_ops::pa;
use subgraph_ops::{bfs::part_bfs_trees, ParentMap, Parts, TreeRoles};
use twgraph::view::{StampSet, SubgraphView};
use twgraph::UGraph;

/// Result of the distributed decomposition.
#[derive(Clone, Debug)]
pub struct DistDecompOutcome {
    /// The tree decomposition.
    pub td: twgraph::tw::TreeDecomposition,
    /// Recursion records aligned with tree node ids.
    pub info: Vec<NodeInfo>,
    /// The largest `t` used.
    pub t_used: u64,
    /// Total charged rounds for the construction (excluding the global
    /// tree build, reported separately).
    pub rounds: u64,
    /// Rounds spent building the global BFS backbone.
    pub backbone_rounds: u64,
}

/// One recursion level, stored copy-free: item vertex sets are ranges into
/// flat arenas (`G'_x` members and inherited boundaries), reused across
/// levels via [`clear`](LevelArena::clear).
#[derive(Default)]
struct LevelArena {
    /// Concatenated sorted `G'_x` member segments.
    gpx: Vec<u32>,
    /// Concatenated sorted inherited-boundary segments.
    inh: Vec<u32>,
    /// Per item: the tree parent and both segment ranges.
    items: Vec<ItemMeta>,
}

struct ItemMeta {
    parent: Option<usize>,
    gpx: (u32, u32),
    inh: (u32, u32),
}

impl LevelArena {
    fn clear(&mut self) {
        self.gpx.clear();
        self.inh.clear();
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn push_item(&mut self, parent: Option<usize>, gpx: &[u32], inh: &[u32]) {
        let g0 = self.gpx.len() as u32;
        self.gpx.extend_from_slice(gpx);
        let i0 = self.inh.len() as u32;
        self.inh.extend_from_slice(inh);
        self.items.push(ItemMeta {
            parent,
            gpx: (g0, self.gpx.len() as u32),
            inh: (i0, self.inh.len() as u32),
        });
    }

    fn gpx_of(&self, i: usize) -> &[u32] {
        let (a, b) = self.items[i].gpx;
        &self.gpx[a as usize..b as usize]
    }

    fn inh_of(&self, i: usize) -> &[u32] {
        let (a, b) = self.items[i].inh;
        &self.inh[a as usize..b as usize]
    }
}

/// Pooled dense scratch for the batched separator attempts: every buffer is
/// allocated once per decomposition and reset *sparsely* (by walking the
/// vertices actually touched, or by an O(1) stamp-generation bump), so one
/// attempt costs O(members), not O(n).
struct SepScratch {
    /// µ measure (1 on the current call's members, 0 elsewhere).
    mu: Vec<u64>,
    /// Vertex → current item index (stamped per call).
    item_of: StampSet,
    /// Vertex → current `G_i` membership (stamped per iteration).
    cur_of: StampSet,
    /// Harvested split-tree roots R* (stamped per call).
    removed: StampSet,
    /// Dense part labels for [`Parts::from_labels`]; entries are cleared by
    /// walking the member list that set them.
    labels: Vec<Option<u32>>,
    /// Sorted union of the current call's item members.
    all_members: Vec<u32>,
}

impl SepScratch {
    fn new(n: usize) -> Self {
        SepScratch {
            mu: vec![0; n],
            item_of: StampSet::new(n),
            cur_of: StampSet::new(n),
            removed: StampSet::new(n),
            labels: vec![None; n],
            all_members: Vec::new(),
        }
    }
}

/// Outcome of one batched Sep attempt for one item.
enum ItemSep {
    Done { separator: Vec<u32>, path: SepPath },
    Failed,
}

/// Run `f` over `0..n_items`, either sequentially or fanned out over rayon
/// in weight-balanced chunks (`prefix[i]` = cumulative weight of the first
/// `i` items — the engine's edge-balanced partitioning idiom). Worker
/// scratch comes from `pool` (grown with `mk_scratch` on demand and handed
/// back for the next level — no per-level O(n) allocations); results come
/// back in item order either way, so the two schedules are observably
/// identical.
fn scheduled_map<T, S>(
    schedule: BranchSchedule,
    n_items: usize,
    prefix: &[u64],
    pool: &mut Vec<S>,
    mk_scratch: impl Fn() -> S,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T>
where
    T: Send,
    S: Send,
{
    match schedule {
        BranchSchedule::Sequential => {
            if pool.is_empty() {
                pool.push(mk_scratch());
            }
            let s = &mut pool[0];
            (0..n_items).map(|i| f(s, i)).collect()
        }
        BranchSchedule::Parallel => {
            let chunks = std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .clamp(1, 64);
            let ranges = balanced_ranges(n_items, chunks, |i| prefix[i]);
            while pool.len() < ranges.len() {
                pool.push(mk_scratch());
            }
            let jobs: Vec<(std::ops::Range<usize>, &mut S)> =
                ranges.into_iter().zip(pool.iter_mut()).collect();
            let parts: Vec<Vec<T>> = jobs
                .into_par_iter()
                .map(|(r, s)| r.map(|i| f(s, i)).collect())
                .collect();
            parts.into_iter().flatten().collect()
        }
    }
}

/// Execute upflow/downflow traffic equivalent to one STA + total-share pass
/// over the given split trees (the real flows `Split` needs per round:
/// subtree sizes up, totals down).
fn charge_split_flows(
    net: &mut Network,
    trees: &[(u32, &STree)],
    mu: &[u64],
) -> Result<(), CongestError> {
    if trees.is_empty() {
        return Ok(());
    }
    let n = net.n();
    let maps: Vec<ParentMap> = trees
        .iter()
        .map(|&(pid, tr)| (pid, tr.nodes.iter().map(|&(v, p)| (v, p, false)).collect()))
        .collect();
    let roles = TreeRoles::from_parent_maps(n, maps);
    let shared = pa::aggregate_and_share(net, &roles, |v, _p| Some(mu[v as usize]), |a, b| a + b)?;
    let _ = shared;
    Ok(())
}

/// µ totals per compacted component id (distributed CCD + PA) over the
/// sorted active-vertex list, plus the per-position component assignment.
/// `is_active` must hold exactly on `active` (the caller's stamps provide
/// it, so no dense mask is built per call); `labels` is pooled dense
/// scratch (restored to all-`None` before return).
fn component_measures_on(
    net: &mut Network,
    gtree: &GlobalTree,
    active: &[u32],
    is_active: impl Fn(u32) -> bool + Sync,
    mu: &[u64],
    labels: &mut [Option<u32>],
) -> Result<(Vec<u32>, Vec<u64>), CongestError> {
    let raw = ccd::detect_on_with(net, active, is_active, |_, _| true)?;
    let (ids, count) = ccd::compact_labels_on(&raw);
    if count == 0 {
        return Ok((ids, Vec::new()));
    }
    for (pos, &v) in active.iter().enumerate() {
        labels[v as usize] = Some(ids[pos]);
    }
    let parts = Parts::from_labels(labels);
    for &v in active {
        labels[v as usize] = None;
    }
    let roles = pa::steiner_roles(gtree, &parts);
    let up = pa::aggregate(net, &roles, |v, _p| Some(mu[v as usize]), |a, b| a + b)?;
    let mut totals = vec![0u64; count];
    for (p, total) in up.roots {
        totals[p as usize] = total;
    }
    gtree.charge_control_pulse(net);
    Ok((ids, totals))
}

/// One batched Sep attempt at a fixed `t` across all `items` (each a
/// connected, mutually non-adjacent sorted vertex set). Returns per-item
/// results. Charged traffic is identical to the historical per-item
/// formulation; only the local bookkeeping is arena/stamp based.
#[allow(clippy::too_many_arguments)]
fn batched_sep_attempt(
    net: &mut Network,
    gtree: &GlobalTree,
    items: &[&[u32]],
    t: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
    scratch: &mut SepScratch,
) -> Result<Vec<ItemSep>, CongestError> {
    let n_items = items.len();

    // Stamp membership and the µ measure; build the sorted member union.
    scratch.item_of.clear();
    scratch.removed.clear();
    scratch.all_members.clear();
    for (i, it) in items.iter().enumerate() {
        for &v in it.iter() {
            scratch.mu[v as usize] = 1;
            scratch.item_of.insert(v, i as u32);
            scratch.all_members.push(v);
        }
    }
    scratch.all_members.sort_unstable();

    // µ(G'_x) per item via PA over the item parts (real flow).
    let item_parts = {
        for (i, it) in items.iter().enumerate() {
            for &v in it.iter() {
                scratch.labels[v as usize] = Some(i as u32);
            }
        }
        let parts = Parts::from_labels(&scratch.labels);
        for &v in &scratch.all_members {
            scratch.labels[v as usize] = None;
        }
        parts
    };
    let item_roles = pa::steiner_roles(gtree, &item_parts);
    let up = pa::aggregate(
        net,
        &item_roles,
        |v, _p| Some(scratch.mu[v as usize]),
        |a, b| a + b,
    )?;
    let mut mu_g = vec![0u64; n_items];
    for (p, total) in up.roots {
        mu_g[p as usize] = total;
    }
    gtree.charge_control_pulse(net);

    let mut result: Vec<Option<ItemSep>> = (0..n_items).map(|_| None).collect();
    // Step 1 short-circuit.
    for i in 0..n_items {
        if mu_g[i] <= cfg.small_cutoff * t * t {
            result[i] = Some(ItemSep::Done {
                separator: items[i].to_vec(),
                path: SepPath::Small,
            });
        }
    }

    // Iterations: harvest split-tree roots, lockstep across items.
    let iters = cfg.iterations(t);
    let mut cur: Vec<Vec<u32>> = items.iter().map(|it| it.to_vec()).collect(); // G_i members
    let mut carve_pool: Vec<()> = Vec::new(); // unit scratch, kept for the pool contract
    let mut r_star: Vec<Vec<u32>> = vec![Vec::new(); n_items];
    let mut tis: Vec<Vec<STree>> = vec![Vec::new(); n_items]; // all split trees per item
    for _i in 1..=iters {
        let live: Vec<usize> = (0..n_items)
            .filter(|&i| result[i].is_none() && !cur[i].is_empty())
            .collect();
        if live.is_empty() {
            break;
        }
        // RST per live item's current G_i (batched). Roots: minimum member
        // (a real run elects via SLE — charge one pulse).
        let mut roots = Vec::new();
        for (slot, &i) in live.iter().enumerate() {
            for &v in &cur[i] {
                scratch.labels[v as usize] = Some(slot as u32);
            }
            roots.push((slot as u32, cur[i][0]));
        }
        let parts = Parts::from_labels(&scratch.labels);
        for &i in &live {
            for &v in &cur[i] {
                scratch.labels[v as usize] = None;
            }
        }
        gtree.charge_control_pulse(net);
        let trees = part_bfs_trees(net, &parts, &roots)?;

        // Split (centralized control over node-reported structure, with the
        // STA/total flows charged per split round — DESIGN.md §4.4).
        // Sibling subproblems are disjoint: the carving itself fans out
        // over rayon (weight-balanced by |G_i|), while the flows are
        // charged afterwards in deterministic slot order — the sequential
        // schedule the goldens lock.
        let split_rounds = (t.max(2)).ilog2() as usize + 2;
        let mut weight_prefix = Vec::with_capacity(live.len() + 1);
        weight_prefix.push(0u64);
        for &i in &live {
            weight_prefix.push(weight_prefix.last().unwrap() + cur[i].len() as u64);
        }
        let trees_ref = &trees;
        let mu_ref = &scratch.mu;
        let cur_ref = &cur;
        let live_ref = &live;
        let carved: Vec<(STree, Vec<STree>)> = scheduled_map(
            cfg.branch_schedule,
            live.len(),
            &weight_prefix,
            &mut carve_pool,
            || (),
            |_, slot| {
                let i = live_ref[slot];
                let stree = stree_from_roles(trees_ref, slot as u32, cur_ref[i][0]);
                let ti = split_to_completion(stree.clone(), mu_ref, mu_g[i], t, cfg);
                (stree, ti)
            },
        );
        for (slot, (stree, ti)) in carved.into_iter().enumerate() {
            let i = live[slot];
            for _ in 0..split_rounds {
                charge_split_flows(net, &[(slot as u32, &stree)], &scratch.mu)?;
            }
            let mut ri: Vec<u32> = ti.iter().map(|tr| tr.root).collect();
            ri.sort_unstable();
            ri.dedup();
            for &r in &ri {
                if !scratch.removed.contains(r) {
                    scratch.removed.insert(r, 0);
                    r_star[i].push(r);
                }
            }
            tis[i].extend(ti);
        }

        // Balance check of R* per item + next G_{i+1} via CCD/PA. The
        // active set covers every member not yet harvested (including
        // already-finished items — their components keep flooding, which
        // is what the charged schedule has always been).
        let active: Vec<u32> = scratch
            .all_members
            .iter()
            .copied()
            .filter(|&v| !scratch.removed.contains(v))
            .collect();
        let item_of = &scratch.item_of;
        let removed = &scratch.removed;
        let (ids, totals) = component_measures_on(
            net,
            gtree,
            &active,
            |v| item_of.contains(v) && !removed.contains(v),
            &scratch.mu,
            &mut scratch.labels,
        )?;
        // Assign components to items (components lie inside one item):
        // first active vertex of a component determines it.
        let mut comp_item: Vec<Option<usize>> = vec![None; totals.len()];
        for (pos, &v) in active.iter().enumerate() {
            let c = ids[pos] as usize;
            if comp_item[c].is_none() {
                comp_item[c] =
                    Some(scratch.item_of.tag(v).expect("active vertex in no item") as usize);
            }
        }
        // Stamp the live items' current G_i membership for O(1) lookups.
        scratch.cur_of.clear();
        for &i in &live {
            for &v in &cur[i] {
                scratch.cur_of.insert(v, i as u32);
            }
        }
        for &i in &live {
            let largest = comp_item
                .iter()
                .enumerate()
                .filter(|&(_, &it)| it == Some(i))
                .map(|(c, _)| totals[c])
                .max()
                .unwrap_or(0);
            if cfg.is_balanced(largest, mu_g[i]) {
                let mut sep = r_star[i].clone();
                sep.sort_unstable();
                result[i] = Some(ItemSep::Done {
                    separator: sep,
                    path: SepPath::Roots(_i),
                });
            } else {
                // G_{i+1} = heaviest component of G_i − R_i within item i.
                let best_comp = comp_item
                    .iter()
                    .enumerate()
                    .filter(|&(_, &it)| it == Some(i))
                    .max_by_key(|&(c, _)| (totals[c], usize::MAX - c))
                    .map(|(c, _)| c as u32);
                cur[i] = match best_comp {
                    Some(c) => active
                        .iter()
                        .enumerate()
                        .filter(|&(pos, &v)| {
                            ids[pos] == c && scratch.cur_of.tag(v) == Some(i as u32)
                        })
                        .map(|(_, &v)| v)
                        .collect(),
                    None => Vec::new(),
                };
                if cur[i].is_empty() {
                    let mut sep = r_star[i].clone();
                    sep.sort_unstable();
                    result[i] = Some(ItemSep::Done {
                        separator: sep,
                        path: SepPath::Roots(_i),
                    });
                }
            }
        }
    }

    // Step 4: sampled-pair vertex cuts for the still-open items.
    for _trial in 0..cfg.trials.max(1) {
        let open: Vec<usize> = (0..n_items).filter(|&i| result[i].is_none()).collect();
        if open.is_empty() {
            break;
        }
        let mut instances = Vec::new();
        let mut owner = Vec::new();
        for &i in &open {
            let ti = &tis[i];
            if ti.len() < 2 {
                continue;
            }
            for _ in 0..cfg.sampled_pairs * cfg.iterations(t) as usize {
                let a = rng.gen_range(0..ti.len());
                let b = rng.gen_range(0..ti.len());
                if a == b {
                    continue;
                }
                let mut xs = ti[a].members();
                let mut ys = ti[b].members();
                xs.sort_unstable();
                ys.sort_unstable();
                instances.push(CutInstance {
                    members: Some(items[i].to_vec()),
                    sources: xs,
                    sinks: ys,
                });
                owner.push(i);
            }
        }
        let cuts = batch_min_vertex_cut(net, &instances, t as usize)?;
        let mut z: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for (k, cut) in cuts.into_iter().enumerate() {
            if let CutResult::Cut(c) = cut {
                z[owner[k]].extend(c);
            }
        }
        // Balance check for Z (and union fallback) via CCD/PA.
        for &i in &open {
            z[i].sort_unstable();
            z[i].dedup();
            let item_of = &scratch.item_of;
            let check = |sep: &Vec<u32>,
                         net: &mut Network,
                         labels: &mut Vec<Option<u32>>|
             -> Result<bool, CongestError> {
                let active: Vec<u32> = items[i]
                    .iter()
                    .copied()
                    .filter(|v| sep.binary_search(v).is_err())
                    .collect();
                let (_, totals) = component_measures_on(
                    net,
                    gtree,
                    &active,
                    |v| item_of.tag(v) == Some(i as u32) && sep.binary_search(&v).is_err(),
                    &scratch.mu,
                    labels,
                )?;
                let largest = totals.iter().copied().max().unwrap_or(0);
                Ok(cfg.is_balanced(largest, mu_g[i]))
            };
            if check(&z[i], net, &mut scratch.labels)? {
                result[i] = Some(ItemSep::Done {
                    separator: z[i].clone(),
                    path: SepPath::Cuts,
                });
            } else if cfg.union_fallback {
                let mut u: Vec<u32> = z[i].iter().chain(r_star[i].iter()).copied().collect();
                u.sort_unstable();
                u.dedup();
                if check(&u, net, &mut scratch.labels)? {
                    result[i] = Some(ItemSep::Done {
                        separator: u,
                        path: SepPath::Union,
                    });
                }
            }
        }
    }

    // Restore the pooled µ for the next call (sparse reset).
    for &v in &scratch.all_members {
        scratch.mu[v as usize] = 0;
    }
    Ok(result
        .into_iter()
        .map(|r| r.unwrap_or(ItemSep::Failed))
        .collect())
}

/// Extract the STree of part `pid` rooted at `root` from RST output.
fn stree_from_roles(trees: &TreeRoles, pid: u32, root: u32) -> STree {
    let mut nodes = Vec::new();
    for &v in &trees.nodes {
        for r in &trees.roles[v as usize] {
            if r.part == pid {
                nodes.push((v, r.parent));
            }
        }
    }
    STree { root, nodes }
}

/// Per-item output of the (parallelizable) level materialization.
struct Materialized {
    /// `true` → single bag `gpx ∪ inherited`, no children.
    leaf: bool,
    /// The bag `B_x` (leaf: `V(G_x)`; internal: `inherited ∪ S'_x`).
    bag: Vec<u32>,
    /// Children as `(component, child_inherited)` pairs, in component order.
    children: Vec<(Vec<u32>, Vec<u32>)>,
}

/// Scratch for one materialization worker (one per rayon chunk).
struct MatScratch {
    mask: StampSet,
    visited: StampSet,
    queue: VecDeque<u32>,
}

/// Materialize one item: decide leaf/internal, compute the bag, and find
/// the post-separator components with their inherited boundaries. Pure
/// local computation over the view — no charged traffic.
fn materialize_item(
    g: &UGraph,
    s: &mut MatScratch,
    gpx: &[u32],
    inherited: &[u32],
    sep: &[u32],
) -> Materialized {
    let gx_size = gpx.len() + inherited.len();
    let sx_size = sep.len() + inherited.len();
    if gx_size <= 2 * sx_size {
        // Leaf: B_x = V(G_x) (gpx and inherited are disjoint + sorted).
        let mut bag = Vec::with_capacity(gx_size);
        merge_sorted(gpx, inherited, &mut bag);
        return Materialized {
            leaf: true,
            bag,
            children: Vec::new(),
        };
    }

    // Internal: B_x = inherited ∪ S'_x.
    let mut bag: Vec<u32> = inherited.iter().chain(sep.iter()).copied().collect();
    bag.sort_unstable();
    bag.dedup();

    // Components of G'_x − S'_x through the stamped view.
    s.mask.clear();
    for &v in gpx {
        s.mask.insert(v, 0);
    }
    for &v in sep {
        s.mask.remove(v);
    }
    let members: Vec<u32> = gpx
        .iter()
        .copied()
        .filter(|&v| s.mask.contains(v))
        .collect();
    let mut comps = Vec::new();
    SubgraphView::new(g, &members, &s.mask).components_into(
        &mut s.visited,
        &mut s.queue,
        &mut comps,
    );

    // Tag each component's vertices, then collect every bag vertex adjacent
    // to a component as that child's inherited boundary (in bag order,
    // hence sorted).
    s.visited.clear();
    for (c, comp) in comps.iter().enumerate() {
        for &v in comp {
            s.visited.insert(v, c as u32);
        }
    }
    let mut child_inh: Vec<Vec<u32>> = vec![Vec::new(); comps.len()];
    let mut touched: Vec<u32> = Vec::new();
    for &b in &bag {
        touched.clear();
        touched.extend(g.neighbors(b).iter().filter_map(|&u| s.visited.tag(u)));
        touched.sort_unstable();
        touched.dedup();
        for &c in &touched {
            child_inh[c as usize].push(b);
        }
    }
    Materialized {
        leaf: false,
        bag,
        children: comps.into_iter().zip(child_inh).collect(),
    }
}

/// Merge two disjoint sorted lists into `out`.
fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Distributed tree decomposition of the network's communication graph
/// (paper Theorem 1). Rounds are accumulated in the network's metrics and
/// reported in the outcome.
pub fn decompose_distributed(
    net: &mut Network,
    t0: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> Result<DistDecompOutcome, DecompError> {
    let n = net.n();
    if n == 0 {
        return Err(DecompError::EmptyGraph);
    }
    let g = net.graph_handle();
    if !twgraph::alg::is_connected(&g) {
        return Err(DecompError::Disconnected);
    }
    let before_backbone = net.metrics().rounds;
    let gtree = build_global_tree(net)?;
    let backbone_rounds = net.metrics().rounds - before_backbone;
    let start_rounds = net.metrics().rounds;

    let mut td = twgraph::tw::TreeDecomposition::default();
    let mut info: Vec<NodeInfo> = Vec::new();
    let mut t = t0.max(2);
    let mut scratch = SepScratch::new(n);
    let mut mat_pool: Vec<MatScratch> = Vec::new();
    let mut level = LevelArena::default();
    let mut next_level = LevelArena::default();
    level.push_item(None, &(0..n as u32).collect::<Vec<u32>>(), &[]);

    while !level.is_empty() {
        // Batched Sep over this level's items, with shared t-doubling.
        let n_items = level.len();
        let mut seps: Vec<Option<(Vec<u32>, SepPath)>> = (0..n_items).map(|_| None).collect();
        loop {
            let open: Vec<usize> = (0..n_items).filter(|&i| seps[i].is_none()).collect();
            if open.is_empty() {
                break;
            }
            let open_items: Vec<&[u32]> = open.iter().map(|&i| level.gpx_of(i)).collect();
            let results = batched_sep_attempt(net, &gtree, &open_items, t, cfg, rng, &mut scratch)?;
            let mut any_fail = false;
            for (slot, res) in results.into_iter().enumerate() {
                match res {
                    ItemSep::Done { separator, path } => {
                        seps[open[slot]] = Some((separator, path));
                    }
                    ItemSep::Failed => any_fail = true,
                }
            }
            if any_fail {
                t *= 2;
                assert!(t <= 4 * n as u64 + 16, "t doubling ran away");
            }
        }
        let seps: Vec<(Vec<u32>, SepPath)> = seps.into_iter().map(Option::unwrap).collect();

        // Materialize tree nodes and the next level: the per-item local
        // work (component search, boundary extraction) fans out over
        // rayon; bags and child items are then appended sequentially in
        // item order, keeping tree node ids deterministic.
        let mut weight_prefix = Vec::with_capacity(n_items + 1);
        weight_prefix.push(0u64);
        for i in 0..n_items {
            weight_prefix.push(weight_prefix.last().unwrap() + level.gpx_of(i).len() as u64);
        }
        let level_ref = &level;
        let seps_ref = &seps;
        let g_ref = &g;
        let materialized: Vec<Materialized> = scheduled_map(
            cfg.branch_schedule,
            n_items,
            &weight_prefix,
            &mut mat_pool,
            || MatScratch {
                mask: StampSet::new(n),
                visited: StampSet::new(n),
                queue: VecDeque::new(),
            },
            |s, i| {
                materialize_item(
                    g_ref,
                    s,
                    level_ref.gpx_of(i),
                    level_ref.inh_of(i),
                    &seps_ref[i].0,
                )
            },
        );

        next_level.clear();
        for (i, m) in materialized.into_iter().enumerate() {
            let (sep, _path) = &seps[i];
            let parent = level.items[i].parent;
            if m.leaf {
                td.push_bag(parent, m.bag);
                info.push(NodeInfo {
                    gpx: level.gpx_of(i).to_vec(),
                    inherited: level.inh_of(i).to_vec(),
                    sep: sep.clone(),
                    is_leaf: true,
                });
                continue;
            }
            let x = td.push_bag(parent, m.bag);
            debug_assert_eq!(x, info.len());
            for (comp, child_inherited) in &m.children {
                next_level.push_item(Some(x), comp, child_inherited);
            }
            info.push(NodeInfo {
                gpx: level.gpx_of(i).to_vec(),
                inherited: level.inh_of(i).to_vec(),
                sep: sep.clone(),
                is_leaf: false,
            });
        }
        std::mem::swap(&mut level, &mut next_level);
    }

    let rounds = net.metrics().rounds - start_rounds;
    net.snapshot("treedec/decompose");
    Ok(DistDecompOutcome {
        td,
        info,
        t_used: t,
        rounds,
        backbone_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use twgraph::gen::{banded_path, cycle, ktree, random_tree};

    fn run(g: &twgraph::UGraph, t0: u64, seed: u64) -> (DistDecompOutcome, Network) {
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = decompose_distributed(&mut net, t0, &cfg, &mut rng)
            .expect("distributed decomposition failed");
        out.td
            .verify(g)
            .unwrap_or_else(|e| panic!("invalid distributed decomposition: {e}"));
        (out, net)
    }

    #[test]
    fn banded_path_distributed() {
        let g = banded_path(200, 2);
        let (out, _net) = run(&g, 3, 1);
        assert!(out.td.stats().width < 100);
        assert!(out.rounds > 0);
    }

    #[test]
    fn ktree_distributed() {
        let g = ktree(150, 3, 4);
        let (out, _net) = run(&g, 4, 2);
        assert!(out.td.stats().width < 120);
    }

    #[test]
    fn tree_distributed() {
        let g = random_tree(150, 6);
        let (out, _) = run(&g, 2, 3);
        assert!(out.td.stats().width < 60);
    }

    #[test]
    fn small_cycle_single_bag() {
        let g = cycle(10);
        let (out, _) = run(&g, 3, 4);
        assert_eq!(out.td.bags.len(), 1);
    }

    #[test]
    fn empty_graph_is_typed_error() {
        let g = twgraph::UGraph::empty(0);
        let mut net = Network::new(g, NetworkConfig::default());
        let cfg = SepConfig::practical(1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            decompose_distributed(&mut net, 2, &cfg, &mut rng).unwrap_err(),
            DecompError::EmptyGraph
        );
    }

    #[test]
    fn disconnected_graph_is_typed_error() {
        let g = twgraph::UGraph::empty(2); // two isolated vertices
        let mut net = Network::new(g, NetworkConfig::default());
        let cfg = SepConfig::practical(2);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            decompose_distributed(&mut net, 2, &cfg, &mut rng).unwrap_err(),
            DecompError::Disconnected
        );
    }

    #[test]
    fn sequential_branch_schedule_matches_parallel() {
        let g = ktree(120, 2, 9);
        let run_with = |schedule: BranchSchedule| {
            let mut net = Network::new(g.clone(), NetworkConfig::default());
            let mut cfg = SepConfig::practical(g.n());
            cfg.branch_schedule = schedule;
            let mut rng = SmallRng::seed_from_u64(5);
            let out = decompose_distributed(&mut net, 3, &cfg, &mut rng).unwrap();
            (out.td, out.rounds, *net.metrics())
        };
        let (td_p, r_p, m_p) = run_with(BranchSchedule::Parallel);
        let (td_s, r_s, m_s) = run_with(BranchSchedule::Sequential);
        assert_eq!(td_p.bags, td_s.bags);
        assert_eq!(r_p, r_s);
        assert_eq!(m_p, m_s);
    }

    #[test]
    fn rounds_scale_with_diameter() {
        // Same treewidth, double the diameter → rounds grow, but far less
        // than linearly in n² (sanity of the cost accounting).
        let g1 = banded_path(128, 2);
        let g2 = banded_path(256, 2);
        let (o1, _) = run(&g1, 3, 5);
        let (o2, _) = run(&g2, 3, 5);
        assert!(o2.rounds > o1.rounds);
        assert!(
            o2.rounds < o1.rounds * 16,
            "rounds exploded: {} -> {}",
            o1.rounds,
            o2.rounds
        );
    }
}
