//! # distlabel — exact distance labeling in low-treewidth graphs (paper §4)
//!
//! The label of `u` is the distance set `d_G(u, B↑(u))`: exact distances to
//! and from every vertex in the bags along `u`'s root path of the tree
//! decomposition. Decoding `d(u, v)` takes the minimum of
//! `d(u, s) + d(s, v)` over the common ancestor-bag vertices `s`
//! (Definition 1 + Lemma 2).
//!
//! Construction is a bottom-up recursion over the decomposition (§4.2):
//! leaves gather their whole `G_x` and solve locally; internal nodes build
//! the auxiliary graph `H_x` on the bag `B_x` whose edge costs combine
//! direct edges with child-level distances (Lemma 3), then every node
//! refreshes its bag distances through `H_x` (Lemma 4). Distributed cost:
//! one part-wise broadcast of `H_x` (Õ(τ⁴) words) per level — the τ⁵ term
//! of Theorem 2 — measured by the simulator.
//!
//! The per-level update maintained here refreshes, at node `x`, the entries
//! for `B_x` exactly (`d_{G_x}`-values). Entries finalized deeper are kept:
//! the decoder's minimum over *all* common ancestor-bag vertices
//! compensates for paths that leave and re-enter a subtree — see the
//! correctness argument in `build.rs` and the exhaustive differential tests
//! against Dijkstra.

pub mod build;
pub mod dist;
pub mod incremental;
pub mod label;
pub mod sssp;

pub use build::build_labels_centralized;
pub use dist::build_labels_distributed;
pub use incremental::{build_labels_memoized, DynamicLabeling, PartLabeling, UpdateReport};
pub use label::{decode, decode_entries, decode_pair, Label};
pub use sssp::{sssp_centralized, sssp_distributed};
