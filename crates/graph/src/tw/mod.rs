//! Treewidth toolkit: tree decompositions, validity verification, and
//! width-bounding heuristics.

mod decomposition;
mod elimination;

pub use decomposition::{TreeDecomposition, TreeDecompositionStats};
pub use elimination::{
    degeneracy, elimination_width, min_degree_order, min_fill_order, treedec_from_elimination,
};
