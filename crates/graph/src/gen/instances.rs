//! Decorators turning bare communication graphs into problem instances.

use crate::multidigraph::MultiDigraph;
use crate::ugraph::UGraph;
use crate::Dist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Undirected weighted instance: every edge of `g` gets an independent
/// uniform weight in `[1, wmax]` (twin arcs share the weight).
pub fn with_random_weights(g: &UGraph, wmax: Dist, seed: u64) -> MultiDigraph {
    assert!(wmax >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    MultiDigraph::from_undirected(
        g.n(),
        g.edges().map(|(u, v)| (u, v, rng.gen_range(1..=wmax))),
    )
}

/// Undirected unit-weight instance.
pub fn with_unit_weights(g: &UGraph) -> MultiDigraph {
    MultiDigraph::from_undirected(g.n(), g.edges().map(|(u, v)| (u, v, 1)))
}

/// Directed weighted instance over the topology of `g`: each undirected edge
/// independently becomes a forward arc, a backward arc, or both (probability
/// `both_prob` for both, else a fair coin for the direction), with uniform
/// weights in `[1, wmax]`. The communication graph of the result is `g`
/// itself — exactly the paper's setting where orientation does not affect
/// communication (§2.1).
pub fn random_orientation(g: &UGraph, wmax: Dist, both_prob: f64, seed: u64) -> MultiDigraph {
    assert!(wmax >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut arcs = Vec::new();
    for (u, v) in g.edges() {
        let w = rng.gen_range(1..=wmax);
        if rng.gen_bool(both_prob) {
            arcs.push(crate::Arc::new(u, v, w));
            arcs.push(crate::Arc::new(v, u, rng.gen_range(1..=wmax)));
        } else if rng.gen_bool(0.5) {
            arcs.push(crate::Arc::new(u, v, w));
        } else {
            arcs.push(crate::Arc::new(v, u, w));
        }
    }
    MultiDigraph::from_arcs(g.n(), arcs)
}

/// A bipartite matching instance: unweighted undirected graph plus the side
/// assignment (`true` = left).
#[derive(Clone, Debug)]
pub struct BipartiteInstance {
    /// The (simple, undirected) graph.
    pub graph: UGraph,
    /// `side[v] == true` iff `v` is a left vertex.
    pub side: Vec<bool>,
}

impl BipartiteInstance {
    /// Build from parts produced by [`crate::gen::bipartite_banded`].
    pub fn new(graph: UGraph, side: Vec<bool>) -> Self {
        assert_eq!(graph.n(), side.len());
        debug_assert!(
            graph
                .edges()
                .all(|(u, v)| side[u as usize] != side[v as usize]),
            "instance is not bipartite"
        );
        BipartiteInstance { graph, side }
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.side.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{bipartite_banded, cycle};

    #[test]
    fn weights_in_range_and_twinned() {
        let g = cycle(10);
        let inst = with_random_weights(&g, 9, 4);
        assert_eq!(inst.n_arcs(), 20);
        for a in inst.arcs() {
            assert!((1..=9).contains(&a.weight));
        }
        // Twin arcs (same uedge) share weights.
        for e in 0..inst.n_uedges() as u32 {
            let twins: Vec<_> = inst
                .arcs()
                .iter()
                .filter(|a| a.uedge.0 == e)
                .collect();
            assert_eq!(twins.len(), 2);
            assert_eq!(twins[0].weight, twins[1].weight);
        }
    }

    #[test]
    fn orientation_preserves_comm_graph() {
        let g = cycle(12);
        let inst = random_orientation(&g, 5, 0.3, 99);
        assert_eq!(inst.comm_graph(), g);
    }

    #[test]
    fn unit_weights() {
        let g = cycle(5);
        let inst = with_unit_weights(&g);
        assert!(inst.arcs().iter().all(|a| a.weight == 1));
    }

    #[test]
    fn bipartite_instance_counts() {
        let (g, side) = bipartite_banded(8, 6, 2, 0.7, 1);
        let inst = BipartiteInstance::new(g, side);
        assert_eq!(inst.n_left(), 8);
    }
}
