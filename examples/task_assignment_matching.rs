//! Scenario: assigning jobs to nearby workers with an exact distributed
//! matching (Theorem 4).
//!
//! Jobs and workers sit on a banded bipartite topology (each job can only
//! go to a worker within a locality window — low treewidth). The
//! separator-hierarchy matcher computes a *maximum* assignment and the
//! run is checked against Hopcroft–Karp.
//!
//! ```sh
//! cargo run --release --example task_assignment_matching
//! ```

use lowtw::prelude::*;
use lowtw::{baselines, bmatch, twgraph};

fn main() {
    let (jobs, workers, window) = (60usize, 50usize, 3usize);
    let (g, side) = twgraph::gen::bipartite_banded(jobs, workers, window, 0.5, 11);
    let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
    println!(
        "assignment problem: {jobs} jobs × {workers} workers, window ±{window}, m = {}",
        g.m()
    );

    let session = Session::decompose(&g, 2 * window as u64 + 2, 11).unwrap();
    println!(
        "separator hierarchy: width = {}, depth = {}",
        session.width(),
        session.depth()
    );

    let out = session
        .max_matching(&inst, bmatch::MatchMode::Centralized)
        .unwrap();
    let optimal = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
    println!(
        "matched {} pairs in {} augmentations over {} separator activations (optimal = {optimal})",
        out.size(),
        out.augmentations,
        out.attempts
    );
    assert_eq!(out.size(), optimal, "matching must be maximum");

    // Show a few assignments.
    let mut shown = 0;
    for job in 0..jobs as u32 {
        if let Some(w) = out.mate[job as usize] {
            if shown < 5 {
                println!("job {job} → worker {}", w as usize - jobs);
                shown += 1;
            }
        }
    }

    // Distributed baseline comparison (Õ(s_max)-round flavour).
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let (_, base_rounds) = baselines::matching_distributed_baseline(&mut net, &g, &side).unwrap();
    println!("alternating-BFS baseline used {base_rounds} rounds");
}
