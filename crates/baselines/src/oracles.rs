//! Uniform centralized oracle surface for differential runners.
//!
//! Every scenario × pipeline cell of the workload matrix (the `scenarios`
//! crate) is checked against exactly one function from this module, so the
//! trust anchor of the whole differential suite is enumerable in one place:
//!
//! | pipeline | oracle | algorithm |
//! |----------|--------|-----------|
//! | sssp | [`sssp_oracle`] | binary-heap Dijkstra |
//! | distance labeling | [`sssp_oracle`] per sampled source | Dijkstra |
//! | girth | [`girth_exact_centralized`](crate::girth_exact_centralized) / [`girth_directed_centralized`](crate::girth_directed_centralized) | per-edge shortest-cycle scan |
//! | matching | [`matching_oracle`] | Hopcroft–Karp |
//! | stateful walks | [`constrained_sssp_oracle`] | Dijkstra on the product graph |
//! | max-flow / disjoint paths | [`maxflow_oracle`] | centralized augmenting-path min vertex cut |
//! | subgraph counting | [`cycle_counts_oracle`] | brute-force canonical cycle enumeration (n ≤ 200) |
//! | FO properties | [`fo_oracle`] | naive quantifier expansion over BFS rows |

use stateful_walks::{ConstrainedSssp, StateId, StatefulConstraint};
use twgraph::alg::{bfs_dist, MincutError};
use twgraph::fo::{Atom, Formula};
use twgraph::{Dist, MultiDigraph, UGraph};

/// Exact single-source distances (centralized Dijkstra) — the oracle for
/// the SSSP and distance-labeling pipelines. Unreachable vertices get
/// [`twgraph::INF`]; the instance may be disconnected.
pub fn sssp_oracle(inst: &MultiDigraph, src: u32) -> Vec<Dist> {
    twgraph::alg::dijkstra(inst, src).dist
}

/// Exact maximum-matching size of a bipartite instance (Hopcroft–Karp) —
/// the oracle for the matching pipeline. Handles disconnected inputs.
pub fn matching_oracle(g: &UGraph, side: &[bool]) -> usize {
    crate::matching_size(&crate::hopcroft_karp(g, side))
}

/// Exact constrained shortest-walk distances from `src` under constraint
/// `c`: `out[t][q]` is the weight of the shortest walk from `src` to `t`
/// whose final constraint state is `q` (Dijkstra on the explicit product
/// graph) — the oracle for the stateful-walk (CDL) pipeline.
pub fn constrained_sssp_oracle(
    inst: &MultiDigraph,
    c: &impl StatefulConstraint,
    src: u32,
) -> Vec<Vec<Dist>> {
    let sssp = ConstrainedSssp::run(inst, c, src);
    (0..inst.n() as u32)
        .map(|t| {
            (0..c.n_states() as StateId)
                .map(|q| sssp.dist(t, q))
                .collect()
        })
        .collect()
}

/// Minimum X–Y vertex-cut / vertex-disjoint-path count (Menger) inside
/// the subgraph induced by `members` — the oracle for the max-flow
/// pipeline. `Ok(None)` means the minimum exceeds `t` (including the ∞
/// cases: overlapping or adjacent terminal sets); `Err` surfaces a
/// violated precondition or broken duality invariant from
/// [`twgraph::alg::min_vertex_cut`], checked on every build profile.
pub fn maxflow_oracle(
    g: &UGraph,
    members: Option<&[u32]>,
    xs: &[u32],
    ys: &[u32],
    t: usize,
) -> Result<Option<Vec<u32>>, MincutError> {
    twgraph::alg::min_vertex_cut(g, members, xs, ys, t)
}

/// Exact simple-cycle counts by length, the oracle for the subgraph
/// counting pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleCounts {
    /// Triangles.
    pub c3: u64,
    /// Simple 4-cycles.
    pub c4: u64,
    /// Simple 5-cycles.
    pub c5: u64,
}

/// Brute-force cap: the enumeration is Θ(n · Δ⁴) in the worst case, so
/// the oracle refuses graphs past this size rather than silently crawling.
const CYCLE_ORACLE_MAX_N: usize = 200;

/// Exact triangle / 4-cycle / 5-cycle counts by canonical DFS enumeration:
/// every simple cycle is walked exactly once, anchored at its smallest
/// vertex with its second vertex below its last (killing the reflection).
/// Completely independent of the pipeline's trace-based counting — no
/// shared inclusion–exclusion algebra — so the differential comparison is
/// meaningful. Panics above `n = 200` (the corpus stays far below).
pub fn cycle_counts_oracle(g: &UGraph) -> CycleCounts {
    assert!(
        g.n() <= CYCLE_ORACLE_MAX_N,
        "cycle_counts_oracle: n = {} exceeds the brute-force cap {CYCLE_ORACLE_MAX_N}",
        g.n()
    );
    fn dfs(g: &UGraph, s: u32, path: &mut Vec<u32>, counts: &mut [u64; 6]) {
        let v = *path.last().unwrap();
        for &w in g.neighbors(v) {
            if w == s {
                // Closing edge: count once per cycle via the canonical
                // orientation path[1] < path[last].
                if path.len() >= 3 && path[1] < v {
                    counts[path.len()] += 1;
                }
                continue;
            }
            if w <= s || path.contains(&w) || path.len() == 5 {
                continue;
            }
            path.push(w);
            dfs(g, s, path, counts);
            path.pop();
        }
    }
    let mut counts = [0u64; 6];
    for s in 0..g.n() as u32 {
        let mut path = vec![s];
        dfs(g, s, &mut path, &mut counts);
    }
    CycleCounts {
        c3: counts[3],
        c4: counts[4],
        c5: counts[5],
    }
}

/// Truth value of a closed FO sentence on `g` by naive quantifier
/// expansion — every quantifier loops over all of `V`, atoms read BFS
/// rows directly. Θ(n^depth · |φ|) plus n BFS passes; the oracle for the
/// FO-property pipeline. Panics on open formulas and above `n = 200`.
pub fn fo_oracle(g: &UGraph, f: &Formula) -> bool {
    assert!(f.is_sentence(), "fo_oracle needs a closed sentence: {f}");
    assert!(
        g.n() <= CYCLE_ORACLE_MAX_N,
        "fo_oracle: n = {} exceeds the quantifier-expansion cap",
        g.n()
    );
    let rows: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| bfs_dist(g, v)).collect();
    fn eval(g: &UGraph, rows: &[Vec<u32>], f: &Formula, env: [u32; 2]) -> bool {
        match f {
            Formula::Atom(Atom::Adj(a, b)) => {
                let (u, v) = (env[*a as usize], env[*b as usize]);
                u != v && g.neighbors(u).binary_search(&v).is_ok()
            }
            Formula::Atom(Atom::Eq(a, b)) => env[*a as usize] == env[*b as usize],
            Formula::Atom(Atom::DistLe(a, b, k)) => {
                rows[env[*a as usize] as usize][env[*b as usize] as usize] <= *k
            }
            Formula::Not(inner) => !eval(g, rows, inner, env),
            Formula::And(l, r) => eval(g, rows, l, env) && eval(g, rows, r, env),
            Formula::Or(l, r) => eval(g, rows, l, env) || eval(g, rows, r, env),
            Formula::Exists(var, inner) => (0..g.n() as u32).any(|w| {
                let mut e = env;
                e[*var as usize] = w;
                eval(g, rows, inner, e)
            }),
            Formula::Forall(var, inner) => (0..g.n() as u32).all(|w| {
                let mut e = env;
                e[*var as usize] = w;
                eval(g, rows, inner, e)
            }),
        }
    }
    eval(g, &rows, f, [0, 0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateful_walks::ColoredWalk;
    use twgraph::fo::build::*;
    use twgraph::gen;
    use twgraph::INF;

    #[test]
    fn sssp_oracle_disconnected_gives_inf() {
        let g = gen::disjoint_union(&[gen::cycle(4), gen::path(3)]);
        let inst = gen::with_unit_weights(&g);
        let d = sssp_oracle(&inst, 0);
        assert_eq!(d[2], 2);
        assert!(d[4] >= INF && d[6] >= INF);
    }

    #[test]
    fn matching_oracle_on_even_cycle() {
        let g = gen::cycle(8);
        let side: Vec<bool> = (0..8).map(|v| v % 2 == 0).collect();
        assert_eq!(matching_oracle(&g, &side), 4);
    }

    #[test]
    fn constrained_oracle_shape() {
        let inst = gen::with_colored_weights(&gen::cycle(6), 3, 2, 1);
        let c = ColoredWalk { colors: 2 };
        let out = constrained_sssp_oracle(&inst, &c, 0);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|row| row.len() == c.n_states()));
    }

    #[test]
    fn maxflow_oracle_matches_menger_on_grid() {
        let g = gen::grid(3, 4);
        // Corner 0 has degree 2: its neighborhood is the minimum cut.
        let cut = maxflow_oracle(&g, None, &[0], &[11], 5).unwrap().unwrap();
        assert_eq!(cut.len(), 2);
        // Adjacent terminals are unseparable.
        assert!(maxflow_oracle(&g, None, &[0], &[1], 5).unwrap().is_none());
    }

    #[test]
    fn cycle_counts_on_known_graphs() {
        // A single k-cycle has exactly one cycle.
        assert_eq!(
            cycle_counts_oracle(&gen::cycle(3)),
            CycleCounts {
                c3: 1,
                c4: 0,
                c5: 0
            }
        );
        assert_eq!(
            cycle_counts_oracle(&gen::cycle(4)),
            CycleCounts {
                c3: 0,
                c4: 1,
                c5: 0
            }
        );
        assert_eq!(
            cycle_counts_oracle(&gen::cycle(5)),
            CycleCounts {
                c3: 0,
                c4: 0,
                c5: 1
            }
        );
        // K4: C(4,3) = 4 triangles, 3 quadrilaterals, no 5-cycles.
        let k4 = twgraph::UGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(
            cycle_counts_oracle(&k4),
            CycleCounts {
                c3: 4,
                c4: 3,
                c5: 0
            }
        );
        // Trees have no cycles at all.
        assert_eq!(
            cycle_counts_oracle(&gen::random_tree(30, 9)),
            CycleCounts::default()
        );
        // A 2×3 grid: two unit squares plus their 6-cycle boundary (too
        // long to count) — c4 = 2.
        assert_eq!(cycle_counts_oracle(&gen::grid(2, 3)).c4, 2);
    }

    #[test]
    fn fo_oracle_on_known_sentences() {
        let g = gen::path(4);
        // Some edge exists.
        assert!(fo_oracle(&g, &exists(0, exists(1, adj(0, 1)))));
        // Not every pair is adjacent.
        assert!(!fo_oracle(&g, &forall(0, forall(1, adj(0, 1)))));
        // Every vertex has another vertex within distance 1 on a path.
        let near = forall(0, exists(1, and(not(eq(0, 1)), dist_le(0, 1, 1))));
        assert!(fo_oracle(&g, &near));
        // With an isolated vertex the same sentence flips.
        let iso = gen::disjoint_union(&[gen::path(4), gen::path(1)]);
        assert!(!fo_oracle(&iso, &near));
        // P4 has a 2-center? dist(1, ·) ≤ 2 covers {0,1,2,3}: yes.
        assert!(fo_oracle(&g, &exists(0, forall(1, dist_le(0, 1, 2)))));
        // P4 has no 1-center.
        assert!(!fo_oracle(&g, &exists(0, forall(1, dist_le(0, 1, 1)))));
    }

    #[test]
    #[should_panic(expected = "closed sentence")]
    fn fo_oracle_rejects_open_formulas() {
        fo_oracle(&gen::path(3), &adj(0, 1));
    }
}
