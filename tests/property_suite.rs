//! Property-based invariants across the whole stack (proptest).

use lowtw::prelude::*;
use lowtw::{baselines, bmatch, twgraph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 1 invariants: every decomposition of a random partial
    /// k-tree is valid and its width does not exceed the configured O(t²
    /// log n) envelope.
    #[test]
    fn decomposition_always_valid(
        n in 24usize..90,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::partial_ktree(n, k, 0.7, seed);
        let session = Session::decompose(&g, k as u64 + 1, seed).unwrap();
        prop_assert!(session.td.verify(&g).is_ok());
        let cfg = lowtw::SepConfig::practical(n);
        let per_level = cfg.size_bound(session.t_used) as usize;
        let bound = per_level * (session.depth() + 1) + 1;
        prop_assert!(
            session.width() <= bound,
            "width {} > envelope {bound}", session.width()
        );
    }

    /// Theorem 2 / Lemma 2: the decoder is exact on random directed
    /// weighted multigraph instances (sampled pairs).
    #[test]
    fn labels_decode_exactly(
        n in 20usize..60,
        k in 1usize..4,
        wmax in 1u64..40,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::partial_ktree(n, k, 0.75, seed);
        let inst = twgraph::gen::random_orientation(&g, wmax, 0.4, seed ^ 0xabc);
        let session = Session::decompose(&g, k as u64 + 1, seed).unwrap();
        let labels = session.labels(&inst);
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..24 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            let want = twgraph::alg::dijkstra(&inst, u).dist[v as usize];
            prop_assert_eq!(decode(&labels[u as usize], &labels[v as usize]), want);
        }
    }

    /// Theorem 4: the separator-hierarchy matcher is always maximum.
    #[test]
    fn matching_always_maximum(
        nl in 8usize..36,
        nr in 8usize..36,
        band in 1usize..4,
        p in 0.2f64..0.8,
        seed in 0u64..1_000_000,
    ) {
        let (g, side) = twgraph::gen::bipartite_banded(nl, nr, band, p, seed);
        let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
        let session = Session::decompose(&g, 3, seed).unwrap();
        let out = session.max_matching(&inst, bmatch::MatchMode::Centralized).unwrap();
        let want = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
        prop_assert_eq!(out.size(), want);
        prop_assert!(baselines::matching::is_valid_matching(&g, &side, &out.mate));
    }

    /// Lemma 1: separators are balanced and within the size bound.
    #[test]
    fn separators_balanced_and_small(
        n in 40usize..140,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        use lowtw::treedec::sep::sep_doubling;
        let g = twgraph::gen::partial_ktree(n, k, 0.7, seed);
        let cfg = lowtw::SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let members = vec![true; n];
        let mu = vec![1u64; n];
        let out = sep_doubling(&g, &members, &mu, k as u64 + 1, &cfg, &mut rng).expect("mincut invariant");
        prop_assert!(out.separator.len() as u64 <= cfg.size_bound(out.t_used));
    }

    /// Lemma 9's congestion bound, measured: part-wise aggregation over a
    /// partial k-tree decomposition keeps the peak per-edge word load in
    /// any single superstep Õ(τ) — we allow a generous constant times
    /// (k+1)·log²n and it must never be exceeded, whatever the family's
    /// randomness does.
    #[test]
    fn decomposition_congestion_stays_near_tau(
        n in 48usize..160,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        use rand::SeedableRng;
        let g = twgraph::gen::partial_ktree(n, k, 0.7, seed);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let cfg = lowtw::SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = lowtw::treedec::decompose_distributed(&mut net, k as u64 + 1, &cfg, &mut rng).unwrap();
        prop_assert!(out.td.verify(&g).is_ok());
        let log2 = (n as f64).log2();
        let bound = (8.0 * (k as f64 + 1.0) * log2 * log2) as u64;
        let congestion = net.metrics().max_edge_words_in_superstep;
        prop_assert!(
            congestion <= bound,
            "congestion {congestion} > Õ(τ) envelope {bound} (n={n}, k={k})"
        );
    }

    /// Differential SSSP: the label-broadcast query and the distributed
    /// Bellman–Ford baseline must agree exactly on random weighted
    /// instances (and with Dijkstra, transitively).
    #[test]
    fn sssp_matches_bellman_ford_distributed(
        n in 24usize..80,
        k in 1usize..4,
        wmax in 1u64..50,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::partial_ktree(n, k, 0.7, seed);
        let inst = twgraph::gen::with_random_weights(&g, wmax, seed);
        let session = Session::decompose(&g, k as u64 + 1, seed).unwrap();
        let labels = session.labels(&inst);
        let src = (seed % n as u64) as u32;
        let mut net1 = Network::new(g.clone(), NetworkConfig::default());
        let (d_labels, r1) = lowtw::distlabel::sssp_distributed(&mut net1, &labels, src).unwrap();
        let mut net2 = Network::new(g.clone(), NetworkConfig::default());
        let (d_bford, r2) = baselines::bellman_ford_distributed(&mut net2, &inst, src).unwrap();
        prop_assert_eq!(d_labels, d_bford);
        prop_assert!(r1 > 0 && r2 > 0);
    }

    /// Lemma 6 half of Theorem 5: the probabilistic girth never
    /// underestimates, whatever the marking randomness does.
    #[test]
    fn girth_is_sound(
        n in 8usize..24,
        wmax in 1u64..9,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::cycle(n);
        let inst = twgraph::gen::with_random_weights(&g, wmax, seed);
        let want = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 3, seed).unwrap();
        let cfg = lowtw::girth::GirthConfig {
            trials_per_c: 1,
            seed,
            measure_distributed: false,
        };
        let run = lowtw::girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
        prop_assert!(run.girth >= want);
    }
}
