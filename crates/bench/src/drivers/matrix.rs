//! The `matrix` driver: one scenario × pipeline cell from the `scenarios`
//! registry, differentially verified against its centralized oracle by
//! `run_cell` itself — a returned report is a verified report.

use super::RowBuilder;
use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use scenarios::{all_pipelines, corpus, run_cell};
use std::time::Instant;

pub fn run(trial: &Trial) -> TrialRow {
    let scenarios = corpus();
    let sc = scenarios
        .iter()
        .find(|s| s.name == trial.scenario)
        .unwrap_or_else(|| panic!("scenario {:?} not in the registry", trial.scenario));
    let pipelines = all_pipelines();
    let p = pipelines
        .iter()
        .find(|p| p.name() == trial.pipeline)
        .unwrap_or_else(|| panic!("pipeline {:?} not registered", trial.pipeline));

    let t = Instant::now();
    let rep = run_cell(sc, p.as_ref()).unwrap_or_else(|e| panic!("cell failed: {e}"));
    let wall = t.elapsed();

    let mut row = RowBuilder::new(trial);
    row.det("n", rep.n as u64);
    row.det("m", rep.m as u64);
    row.det("components", rep.components as u64);
    row.det("width", rep.width as u64);
    row.det("depth", rep.depth as u64);
    row.det("output", rep.output);
    row.det("checked", rep.checked as u64);
    row.det("rounds", rep.metrics.rounds);
    row.det("supersteps", rep.metrics.supersteps);
    row.det("messages", rep.metrics.messages);
    row.det("words", rep.metrics.words);
    row.det("charged_rounds", rep.metrics.charged_rounds);
    row.det("congestion", rep.metrics.congestion);
    for (key, value) in &rep.detail {
        classify_detail(&mut row, key, *value);
    }
    row.wall("cell", wall);
    row.finish()
}

/// Pipeline detail counters are deterministic except the throughput rates
/// and the publish wall clock the update pipeline reports.
fn classify_detail(row: &mut RowBuilder, key: &str, value: u64) {
    if key.starts_with("qps") {
        row.info(key, value as f64);
    } else if key.ends_with("_us") || key.ends_with("_us_total") {
        row.wall_us_raw(key, value);
    } else {
        row.det(key, value);
    }
}
