//! Loopback integration net over the wire path: every answer a socket
//! hands back must be bit-identical to the in-process engine, and every
//! abuse of the protocol must come back as a typed error on a live
//! connection — never a panic, a hang, or a silent close mid-frame.

use distlabel::DynamicLabeling;
use labelserve::{seeded_queries, ServeConfig, VersionedEngine, WorkloadSpec};
use servd::proto::put_varint;
use servd::{Client, ClientError, Request, Response, ServdConfig, Server, WireError};
use std::sync::Arc;
use twgraph::EdgeBatch;

/// A served banded-path engine (n vertices, bandwidth 2) plus its
/// labeling, for publishing updates mid-test.
fn served(n: usize, cfg: ServdConfig) -> (DynamicLabeling, Arc<VersionedEngine>, Server) {
    let g = twgraph::gen::banded_path(n, 2);
    let inst = twgraph::gen::with_random_weights(&g, 10, 3);
    let labeling = DynamicLabeling::build(&inst, 3, 1).expect("labeling build");
    let serve_cfg = ServeConfig {
        shard_size: (n / 8).max(1),
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let engine =
        Arc::new(VersionedEngine::from_labeling(&labeling, serve_cfg).expect("engine build"));
    let server = Server::spawn(Arc::clone(&engine), ("127.0.0.1", 0), cfg).expect("server spawn");
    (labeling, engine, server)
}

#[test]
fn wire_answers_match_in_process_engine() {
    let (_labeling, engine, server) = served(200, ServdConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let queries = seeded_queries(
        200,
        &WorkloadSpec {
            queries: 2_000,
            hot_pairs: 32,
            hot_fraction: 0.7,
        },
        7,
    );
    // Singles.
    for &(s, t) in queries.iter().take(500) {
        assert_eq!(
            client.distance(s, t).unwrap(),
            engine.distance(s, t).unwrap(),
            "wire({s}, {t}) diverged"
        );
    }
    // One batch covering the whole stream.
    assert_eq!(
        client.batch(&queries).unwrap(),
        engine.batch(&queries).unwrap(),
        "batched wire answers diverged"
    );
    let stats = server.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.queries, 500 + queries.len() as u64);
    assert_eq!(
        stats.malformed + stats.overloads + stats.rejected_batches,
        0
    );
}

#[test]
fn unknown_nodes_are_typed_over_the_wire() {
    let (_labeling, _engine, server) = served(60, ServdConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    // s-side, t-side, and batch rejections all travel as UNKNOWN_NODE.
    for (s, t, bad) in [(60, 0, 60), (0, 60, 60), (u32::MAX, 0, u32::MAX)] {
        match client.distance(s, t) {
            Err(ClientError::Server(WireError::UnknownNode { node, n })) => {
                assert_eq!((node, n), (bad, 60));
            }
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }
    match client.batch(&[(0, 1), (1, 77)]) {
        Err(ClientError::Server(WireError::UnknownNode { node, n })) => {
            assert_eq!((node, n), (77, 60));
        }
        other => panic!("expected UnknownNode, got {other:?}"),
    }
    // The connection survives typed rejections.
    assert!(client.distance(0, 59).is_ok());
    server.shutdown();
}

#[test]
fn connections_pin_their_epoch_until_repin() {
    let (mut labeling, engine, server) = served(120, ServdConfig::default());
    let mut pinned = Client::connect(server.local_addr()).unwrap();
    assert_eq!(pinned.epoch().unwrap(), 0);
    let d_before = pinned.distance(0, 119).unwrap();

    // Publish epoch 1 (delete an edge on the 0–119 route).
    let rep = labeling.apply(&EdgeBatch::new().delete(0, 1)).unwrap();
    engine.publish_from(&labeling, &rep.dirty).unwrap();
    assert_eq!(engine.epoch(), 1);

    // The pinned connection still answers epoch 0 — version stability
    // across a whole conversation.
    assert_eq!(pinned.epoch().unwrap(), 0);
    assert_eq!(pinned.distance(0, 119).unwrap(), d_before);

    // A fresh connection pins the current epoch; repin catches up the old.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert_eq!(fresh.epoch().unwrap(), 1);
    assert_eq!(fresh.distance(0, 119).unwrap(), labeling.distance(0, 119));
    assert_eq!(pinned.repin().unwrap(), 1);
    assert_eq!(
        pinned.distance(0, 119).unwrap(),
        labeling.distance(0, 119),
        "repinned connection must answer the new epoch"
    );
    server.shutdown();
}

#[test]
fn overload_pushes_back_with_typed_errors_and_recovers() {
    // One-slot queue + a stalled worker: pipelined requests must draw
    // OVERLOADED answers (admission control), and the connection must
    // keep serving normally afterwards.
    let cfg = ServdConfig {
        queue_depth: 1,
        worker_delay_us: 20_000,
        ..ServdConfig::default()
    };
    let (_labeling, engine, server) = served(60, cfg);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut ids = Vec::new();
    for _ in 0..16 {
        ids.push(client.send(&Request::Query { s: 0, t: 59 }).unwrap());
    }
    let mut served_ok = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..16 {
        let (id, resp) = client.recv().unwrap();
        assert!(ids.contains(&id), "response for an unknown request id");
        match resp {
            Response::Dist(d) => {
                assert_eq!(d, engine.distance(0, 59).unwrap());
                served_ok += 1;
            }
            Response::Err(WireError::Overloaded { queue_depth }) => {
                assert_eq!(queue_depth, 1);
                overloaded += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(served_ok >= 1, "at least the first request must serve");
    assert!(overloaded >= 1, "backpressure never engaged");
    assert_eq!(served_ok + overloaded, 16);
    // After the burst drains, the connection serves normally again.
    assert_eq!(
        client.distance(0, 1).unwrap(),
        engine.distance(0, 1).unwrap()
    );
    let stats = server.shutdown();
    assert_eq!(stats.overloads, overloaded);
}

#[test]
fn oversized_batches_are_refused_not_served() {
    let cfg = ServdConfig {
        max_batch: 8,
        ..ServdConfig::default()
    };
    let (_labeling, engine, server) = served(60, cfg);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let big: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
    match client.batch(&big) {
        Err(ClientError::Server(WireError::BatchTooLarge { len, max })) => {
            assert_eq!((len, max), (9, 8));
        }
        other => panic!("expected BatchTooLarge, got {other:?}"),
    }
    // At the cap is admitted.
    let ok: Vec<(u32, u32)> = (0..8).map(|i| (i, i + 1)).collect();
    assert_eq!(client.batch(&ok).unwrap(), engine.batch(&ok).unwrap());
    let stats = server.shutdown();
    assert_eq!(stats.rejected_batches, 1);
    assert_eq!(stats.queries, 8, "refused batch must not execute");
}

#[test]
fn malformed_payloads_answer_typed_errors_on_a_live_connection() {
    let (_labeling, _engine, server) = served(60, ServdConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A well-framed payload with an unknown opcode: typed MALFORMED
    // response, connection stays up.
    let mut frame = Vec::new();
    let payload = [42u8, 0x7f];
    put_varint(&mut frame, payload.len() as u64);
    frame.extend_from_slice(&payload);
    client.send_raw(&frame).unwrap();
    match client.recv().unwrap() {
        (42, Response::Err(WireError::Malformed { .. })) => {}
        other => panic!("expected malformed answer for id 42, got {other:?}"),
    }
    assert!(client.distance(0, 1).is_ok(), "connection must survive");

    // A frame announcing a payload beyond the cap: MALFORMED (id 0) and
    // the server hangs up — framing cannot be resynchronized.
    let mut huge = Vec::new();
    put_varint(&mut huge, 1u64 << 30);
    client.send_raw(&huge).unwrap();
    match client.recv().unwrap() {
        (0, Response::Err(WireError::Malformed { .. })) => {}
        other => panic!("expected framing-violation answer, got {other:?}"),
    }
    assert!(
        matches!(client.recv(), Err(ClientError::Io(_))),
        "server must close after a framing violation"
    );

    // The server itself keeps serving new connections.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert!(fresh.distance(0, 1).is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.malformed, 2);
}

#[test]
fn shutdown_drains_admitted_requests() {
    // Stall the worker, pipeline a queue's worth of requests, then shut
    // down: every admitted request must still be answered before the
    // socket closes.
    let cfg = ServdConfig {
        queue_depth: 8,
        worker_delay_us: 10_000,
        ..ServdConfig::default()
    };
    let (_labeling, engine, server) = served(60, cfg);
    let want = engine.distance(0, 59).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut sent = Vec::new();
    for _ in 0..8 {
        sent.push(client.send(&Request::Query { s: 0, t: 59 }).unwrap());
    }
    // Give the reader a moment to admit the burst, then drain.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let stats_thread = std::thread::spawn(move || server.shutdown());
    let mut answered = 0;
    loop {
        match client.recv() {
            Ok((id, Response::Dist(d))) => {
                assert!(sent.contains(&id));
                assert_eq!(d, want);
                answered += 1;
            }
            Ok((_, Response::Err(WireError::Overloaded { .. }))) => {}
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(_) => break, // socket closed after the drain
        }
    }
    let stats = stats_thread.join().unwrap();
    assert!(answered >= 1, "drain answered nothing");
    assert_eq!(
        answered + stats.overloads,
        8,
        "every admitted request must be answered on drain"
    );
}

#[test]
fn concurrent_connections_serve_identical_answers() {
    let (_labeling, engine, server) = served(200, ServdConfig::default());
    let addr = server.local_addr();
    let engine = Arc::clone(&engine);
    let handles: Vec<_> = (0..8)
        .map(|ti| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let queries = seeded_queries(
                    200,
                    &WorkloadSpec {
                        queries: 500,
                        hot_pairs: 16,
                        hot_fraction: 0.75,
                    },
                    0xC0FFEE ^ ti as u64,
                );
                for &(s, t) in &queries {
                    assert_eq!(
                        client.distance(s, t).unwrap(),
                        engine.distance(s, t).unwrap(),
                        "thread {ti}: wire({s}, {t}) diverged"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.connections, 8);
    assert_eq!(stats.queries, 8 * 500);
    assert_eq!(stats.malformed + stats.overloads, 0);
}
