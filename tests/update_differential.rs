//! The incremental == scratch differential net.
//!
//! For every scenario family in the corpus, a maintained
//! [`lowtw::DynamicLabeling`] replays seeded insert/delete batches; after
//! **every** batch its answers are compared bit-for-bit, over the full
//! ordered pair space, against (a) a from-scratch rebuild of the same
//! mutated instance and (b) the Dijkstra oracle — cross-component pairs
//! included, so the ∞ bookkeeping across component splits and merges is
//! pinned too. A divergence anywhere names the scenario, the round, and
//! the pair.

use lowtw::{DynamicLabeling, EdgeBatch, INF};
use rand::Rng;
use scenarios::corpus;

/// Seeded batch rounds per scenario.
const ROUNDS: usize = 6;

/// Edge edits per batch.
const EDITS: usize = 3;

/// Draw one seeded batch against the labeling's *current* graph: deletions
/// of existing edges and fresh weighted insertions, half and half.
fn seeded_batch(dl: &DynamicLabeling, round: usize, seed: u64) -> EdgeBatch {
    let n = dl.n();
    let mut rng = twgraph::gen::derive_rng("update_diff", &[round as u64], seed);
    let mut batch = EdgeBatch::new();
    for _ in 0..EDITS {
        let arcs = dl.inst().arcs();
        if rng.gen_bool(0.5) && !arcs.is_empty() {
            let a = &arcs[rng.gen_range(0..arcs.len())];
            batch = batch.delete(a.src, a.dst);
        } else {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            batch = batch.insert(u, v, rng.gen_range(1..=30));
        }
    }
    batch
}

/// Exhaustively compare the maintained labeling against a scratch rebuild
/// and the Dijkstra oracle on the current instance.
fn assert_incremental_matches_scratch(dl: &DynamicLabeling, name: &str, round: usize, t0: u64) {
    let n = dl.n();
    // Scratch rebuild under a *different* seed: answers are exact values,
    // so they must agree regardless of separator randomness.
    let scratch = DynamicLabeling::build(dl.inst(), t0, 0xD1F7 ^ round as u64)
        .unwrap_or_else(|e| panic!("{name} round {round}: scratch rebuild failed: {e}"));
    for u in 0..n as u32 {
        let oracle = baselines::sssp_oracle(dl.inst(), u);
        for v in 0..n as u32 {
            let inc = dl.distance(u, v);
            let scr = scratch.distance(u, v);
            assert_eq!(
                inc, oracle[v as usize],
                "{name} round {round}: incremental d({u} → {v}) diverged from Dijkstra"
            );
            assert_eq!(
                inc, scr,
                "{name} round {round}: incremental vs scratch disagree at ({u}, {v})"
            );
        }
    }
}

#[test]
fn incremental_matches_scratch_on_every_family() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 12,
        "differential net expects the full corpus"
    );
    for sc in &corpus {
        let inst = sc.instance();
        let mut dl = DynamicLabeling::build(&inst, sc.t0, sc.seed)
            .unwrap_or_else(|e| panic!("{}: initial build failed: {e}", sc.name));
        assert_incremental_matches_scratch(&dl, sc.name, 0, sc.t0);
        for round in 1..=ROUNDS {
            let batch = seeded_batch(&dl, round, sc.seed);
            let rep = dl
                .apply(&batch)
                .unwrap_or_else(|e| panic!("{} round {round}: apply failed: {e}", sc.name));
            assert_eq!(
                rep.parts_reused + rep.parts_scoped + rep.parts_rebuilt,
                dl.parts().len(),
                "{} round {round}: part accounting broke: {rep:?}",
                sc.name
            );
            assert_incremental_matches_scratch(&dl, sc.name, round, sc.t0);
        }
    }
}

/// Component splits and merges, driven explicitly: cut a banded path in
/// half (every crossing edge), verify ∞ across the cut, then re-bridge and
/// verify finiteness returns — checking the full pair space against
/// scratch at every step.
#[test]
fn split_and_merge_are_exact() {
    let g = twgraph::gen::banded_path(40, 2);
    let inst = twgraph::gen::with_random_weights(&g, 9, 5);
    let mut dl = DynamicLabeling::build(&inst, 3, 5).unwrap();
    let cut = EdgeBatch::new()
        .delete(18, 20)
        .delete(19, 20)
        .delete(19, 21);
    let rep = dl.apply(&cut).unwrap();
    assert!(
        rep.parts_rebuilt >= 1,
        "a split must rebuild parts: {rep:?}"
    );
    assert_eq!(dl.distance(0, 39), INF, "severed halves must answer INF");
    assert_incremental_matches_scratch(&dl, "split", 1, 3);
    let rep = dl.apply(&EdgeBatch::new().insert(19, 20, 4)).unwrap();
    assert!(
        rep.parts_rebuilt >= 1,
        "a merge must rebuild parts: {rep:?}"
    );
    assert!(dl.distance(0, 39) < INF, "re-bridged graph must reconnect");
    assert_incremental_matches_scratch(&dl, "merge", 2, 3);
}

/// A no-op batch (deleting absent edges, inserting self-loops) must reuse
/// every part and change no answer.
#[test]
fn noop_batches_change_nothing() {
    let sc = &corpus()[0];
    let inst = sc.instance();
    let mut dl = DynamicLabeling::build(&inst, sc.t0, sc.seed).unwrap();
    let before: Vec<_> = (0..dl.n() as u32).map(|v| dl.distance(0, v)).collect();
    let rep = dl
        .apply(&EdgeBatch::new().delete(0, 0).insert(3, 3, 7))
        .unwrap();
    assert_eq!(rep.parts_reused, dl.parts().len(), "all parts must reuse");
    assert_eq!(rep.parts_scoped + rep.parts_rebuilt, 0);
    let after: Vec<_> = (0..dl.n() as u32).map(|v| dl.distance(0, v)).collect();
    assert_eq!(before, after);
}
