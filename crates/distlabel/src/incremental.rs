//! Incremental label maintenance under edge updates (dynamic graphs).
//!
//! The build-once/query-many premise of the paper only pays off if the
//! expensive decompose→label pipeline survives graph changes. This module
//! keeps a [`DynamicLabeling`] — per-component [`PartLabeling`]s plus the
//! current instance — and applies [`EdgeBatch`]es with work proportional to
//! the *dirty subtree* of the decomposition whenever the batch allows it:
//!
//! 1. **Triage** (component diff): components of the updated communication
//!    graph are matched to existing parts by vertex set. Untouched parts
//!    are reused wholesale; parts whose vertex set changed (splits/merges)
//!    are rebuilt from scratch; parts with in-place edge changes go scoped.
//! 2. **Scoped relabel**: the *dirty node* `x` is the deepest tree node
//!    with every touched endpoint inside `V(G'_x)` — changed edges then
//!    live entirely inside `G'_x`, so the recursion state of every node
//!    outside `subtree(x)` is a function of unchanged data. The region is
//!    re-decomposed against the unchanged parent bag
//!    ([`treedec::decompose_region`]), spliced in place of `subtree(x)`,
//!    and relabeled bottom-up.
//! 3. **Gate**: after reprocessing, `H_{p(x)}` is recomputed from child
//!    memos and compared with its memoized pre-update value. Equal means
//!    every boundary-through distance is unchanged, so ancestors only need
//!    a member refresh restricted to the dirty vertex set; different means
//!    the batch crossed a separator invariant and the part falls back to a
//!    full relabel (reusing the already-spliced decomposition).
//!
//! ## Why memos make the gate sound
//!
//! The plain §4.2 build derives `H_x` costs from child *labels*, which by
//! then can hold cross-branch values — smaller than `d_{G_x}` and dependent
//! on processing order. Comparing such matrices across builds would be
//! meaningless. [`NodeMemo`] instead stores the graph-determined matrix:
//! post-APSP `d_{G_x}` restricted to `B_x` (the whole `d_{G_x}` at leaves),
//! computed only from direct arcs and child memos. Member refreshes still
//! bridge through label entries, so decoded answers stay exact: every
//! stored entry is a realizable walk length, and coverage of `d_{G_a}` for
//! each ancestor `a` is re-established by the refresh (see `build.rs`).

use crate::build::direct_cost;
use crate::label::{decode, Label};
use rand::rngs::SmallRng;
use std::collections::HashMap;
use treedec::decomp::NodeInfo;
use treedec::region::decompose_region;
use treedec::{decompose_centralized, DecompError, SepConfig};
use twgraph::gen::derive_rng;
use twgraph::tw::TreeDecomposition;
use twgraph::{alg, dist_add, Dist, EdgeBatch, MultiDigraph, UGraph, INF};

/// Graph-determined distance matrix memoized per tree node: post-APSP
/// `d_{G_x}` restricted to `verts` (`B_x` for internal nodes, all of
/// `V(G_x)` at leaves), row-major over `verts × verts`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeMemo {
    /// Sorted vertex ids the matrix is indexed by.
    pub verts: Vec<u32>,
    /// Row-major `verts.len()²` distances.
    pub d: Vec<Dist>,
}

/// In-place Floyd–Warshall on a flat row-major `k × k` matrix.
fn apsp_flat(d: &mut [Dist], k: usize) {
    for m in 0..k {
        for i in 0..k {
            if d[i * k + m] >= INF {
                continue;
            }
            for j in 0..k {
                let cand = dist_add(d[i * k + m], d[m * k + j]);
                if cand < d[i * k + j] {
                    d[i * k + j] = cand;
                }
            }
        }
    }
}

/// Full `d_{G_x}` of a leaf: gather G_x arcs (no inherited–inherited
/// edges), Floyd–Warshall over `gx`.
fn leaf_matrix(inst: &MultiDigraph, ni: &NodeInfo) -> (Vec<u32>, Vec<Dist>) {
    let gx = ni.gx();
    let k = gx.len();
    let local = |v: u32| gx.binary_search(&v).unwrap();
    let in_inherited = |v: u32| ni.inherited.binary_search(&v).is_ok();
    let mut d = vec![INF; k * k];
    for i in 0..k {
        d[i * k + i] = 0;
    }
    for &v in &gx {
        for &ai in inst.out_arcs(v) {
            let a = inst.arc(twgraph::ArcId(ai));
            if gx.binary_search(&a.dst).is_ok() && !(in_inherited(a.src) && in_inherited(a.dst)) {
                let (ia, ib) = (local(a.src), local(a.dst));
                d[ia * k + ib] = d[ia * k + ib].min(a.weight);
            }
        }
    }
    apsp_flat(&mut d, k);
    (gx, d)
}

/// Post-APSP `H_x` over `bag`, built purely from direct arcs and child
/// memos (Lemma 3 with graph-determined inputs).
fn h_from_memos<'a>(
    inst: &MultiDigraph,
    bag: &[u32],
    child_memos: impl Iterator<Item = &'a NodeMemo>,
) -> Vec<Dist> {
    let k = bag.len();
    let mut h = vec![INF; k * k];
    for (i, &a) in bag.iter().enumerate() {
        for (j, &b) in bag.iter().enumerate() {
            h[i * k + j] = if i == j { 0 } else { direct_cost(inst, a, b) };
        }
    }
    for memo in child_memos {
        // Sorted intersection of the memo's vertex set with the bag.
        let mk = memo.verts.len();
        let mut pairs: Vec<(usize, usize)> = Vec::new(); // (bag idx, memo idx)
        let (mut i, mut j) = (0usize, 0usize);
        while i < bag.len() && j < mk {
            match bag[i].cmp(&memo.verts[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    pairs.push((i, j));
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(bi, mi) in &pairs {
            for &(bj, mj) in &pairs {
                let v = memo.d[mi * mk + mj];
                if v < h[bi * k + bj] {
                    h[bi * k + bj] = v;
                }
            }
        }
    }
    apsp_flat(&mut h, k);
    h
}

/// Lemma-4 member refresh restricted to `members`: bridge each member's
/// existing bag entries through the exact `h` matrix and min-merge.
fn refresh_from_h(labels: &mut [Label], bag: &[u32], h: &[Dist], members: &[u32]) {
    let k = bag.len();
    let bidx = |v: u32| bag.binary_search(&v).ok();
    for &u in members {
        let mut bridges: Vec<(usize, Dist, Dist)> = Vec::new();
        if let Some(iu) = bidx(u) {
            bridges.push((iu, 0, 0));
        }
        for &(s, to, from) in &labels[u as usize].entries {
            if let Some(is) = bidx(s) {
                if s != u {
                    bridges.push((is, to, from));
                }
            }
        }
        for (j, &s) in bag.iter().enumerate() {
            let mut best_to = INF;
            let mut best_from = INF;
            for &(is, to, from) in &bridges {
                best_to = best_to.min(dist_add(to, h[is * k + j]));
                best_from = best_from.min(dist_add(h[j * k + is], from));
            }
            if best_to < INF || best_from < INF {
                labels[u as usize].merge(s, best_to, best_from);
            }
        }
    }
}

/// Process tree node `x` bottom-up, writing `memo[x]` and refreshing
/// labels (the memo-based twin of `build::process_node`).
fn process_node_memoized(
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
    x: usize,
    labels: &mut [Label],
    memo: &mut [NodeMemo],
) {
    if info[x].is_leaf {
        let (gx, d) = leaf_matrix(inst, &info[x]);
        let k = gx.len();
        for (i, &u) in gx.iter().enumerate() {
            for (j, &s) in gx.iter().enumerate() {
                labels[u as usize].merge(s, d[i * k + j], d[j * k + i]);
            }
        }
        memo[x] = NodeMemo { verts: gx, d };
    } else {
        let bag = &td.bags[x];
        let h = {
            let memo_ref = &*memo;
            h_from_memos(inst, bag, td.children[x].iter().map(|&c| &memo_ref[c]))
        };
        let mut members: Vec<u32> = bag.clone();
        for &c in &td.children[x] {
            members.extend(info[c].gx());
        }
        members.sort_unstable();
        members.dedup();
        refresh_from_h(labels, bag, &h, &members);
        memo[x] = NodeMemo {
            verts: bag.clone(),
            d: h,
        };
    }
}

/// Build labels and memos for the whole decomposition, children first.
pub fn build_labels_memoized(
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
) -> (Vec<Label>, Vec<NodeMemo>) {
    let mut labels: Vec<Label> = (0..inst.n() as u32).map(Label::new).collect();
    let mut memo: Vec<NodeMemo> = vec![NodeMemo::default(); td.bags.len()];
    for x in crate::build::order_bottom_up(td) {
        process_node_memoized(inst, td, info, x, &mut labels, &mut memo);
    }
    (labels, memo)
}

/// Outcome of one scoped apply on a part.
struct ScopedStats {
    /// Whether the part fell back to a full relabel (gate failure or a
    /// root-level dirty node).
    fallback: bool,
    /// Replacement tree nodes produced for the region.
    region_nodes: usize,
    /// Member-refresh operations performed along the ancestor path.
    refreshed: usize,
    /// Part-local vertices whose labels may have changed (sorted).
    dirty_local: Vec<u32>,
}

/// Labeling of one connected component, with everything needed to apply
/// scoped updates: the decomposition, recursion records, per-node memos,
/// and the labels themselves.
#[derive(Clone, Debug)]
pub struct PartLabeling {
    graph: UGraph,
    inst: MultiDigraph,
    old_of: Vec<u32>,
    td: TreeDecomposition,
    info: Vec<NodeInfo>,
    memo: Vec<NodeMemo>,
    labels: Vec<Label>,
    t0: u64,
    t_used: u64,
}

impl PartLabeling {
    /// Decompose and label one connected component (`old_of` maps local to
    /// global vertex ids). Single vertices get the trivial decomposition.
    pub fn build(
        graph: UGraph,
        inst: MultiDigraph,
        old_of: Vec<u32>,
        t0: u64,
        cfg: &SepConfig,
        rng: &mut SmallRng,
    ) -> Result<Self, DecompError> {
        let n = graph.n();
        if n == 1 {
            let mut label = Label::new(0);
            label.merge(0, 0, 0);
            return Ok(PartLabeling {
                graph,
                inst,
                old_of,
                td: TreeDecomposition::trivial(1),
                info: vec![NodeInfo {
                    gpx: vec![0],
                    inherited: Vec::new(),
                    sep: Vec::new(),
                    is_leaf: true,
                }],
                memo: vec![NodeMemo {
                    verts: vec![0],
                    d: vec![0],
                }],
                labels: vec![label],
                t0,
                t_used: t0.max(2),
            });
        }
        let dec = decompose_centralized(&graph, t0, cfg, rng)?;
        let (labels, memo) = build_labels_memoized(&inst, &dec.td, &dec.info);
        Ok(PartLabeling {
            graph,
            inst,
            old_of,
            td: dec.td,
            info: dec.info,
            memo,
            labels,
            t0,
            t_used: dec.t_used,
        })
    }

    /// Part size.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Local → global vertex map (sorted ascending).
    pub fn old_of(&self) -> &[u32] {
        &self.old_of
    }

    /// The current tree decomposition.
    pub fn td(&self) -> &TreeDecomposition {
        &self.td
    }

    /// Recursion records aligned with [`Self::td`].
    pub fn info(&self) -> &[NodeInfo] {
        &self.info
    }

    /// Part-local labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The deepest tree node whose `V(G'_x)` contains every touched vertex.
    fn dirty_node(&self, touched: &[u32]) -> usize {
        let mut x = self.td.root;
        'descend: loop {
            for &c in &self.td.children[x] {
                let gpx = &self.info[c].gpx;
                if touched.iter().all(|t| gpx.binary_search(t).is_ok()) {
                    x = c;
                    continue 'descend;
                }
            }
            return x;
        }
    }

    /// Vertices of `subtree(x)` marked in a bool mask over tree nodes.
    fn subtree_mask(&self, x: usize) -> Vec<bool> {
        let mut mask = vec![false; self.td.bags.len()];
        let mut stack = vec![x];
        while let Some(y) = stack.pop() {
            mask[y] = true;
            stack.extend(self.td.children[y].iter().copied());
        }
        mask
    }

    /// Full relabel of the part on its current decomposition (used by the
    /// gate-failure fallback after the region splice).
    fn relabel_all(&mut self) {
        let (labels, memo) = build_labels_memoized(&self.inst, &self.td, &self.info);
        self.labels = labels;
        self.memo = memo;
    }

    /// Apply an in-place update (same vertex set, still connected):
    /// `graph`/`inst` are the part-induced *new* structures and
    /// `touched` the part-local endpoints of effective edge changes.
    fn apply_scoped(
        &mut self,
        graph: UGraph,
        inst: MultiDigraph,
        touched: &[u32],
        rng: &mut SmallRng,
    ) -> Result<ScopedStats, DecompError> {
        self.graph = graph;
        self.inst = inst;
        let x = self.dirty_node(touched);

        if x == self.td.root {
            // The batch spans the root's own region: nothing outside the
            // recursion is reusable — rebuild the part's decomposition.
            let cfg = SepConfig::practical(self.graph.n());
            let dec = decompose_centralized(&self.graph, self.t0, &cfg, rng)?;
            self.td = dec.td;
            self.info = dec.info;
            self.t_used = dec.t_used;
            self.relabel_all();
            return Ok(ScopedStats {
                fallback: true,
                region_nodes: 0,
                refreshed: 0,
                dirty_local: (0..self.graph.n() as u32).collect(),
            });
        }

        let p = self.td.parent[x];
        let old_gpx = self.info[x].gpx.clone();
        let old_inh = self.info[x].inherited.clone();
        let cfg = SepConfig::practical(self.graph.n());
        let region = decompose_region(&self.graph, &old_gpx, &self.td.bags[p], self.t0, &cfg, rng)?;
        self.t_used = self.t_used.max(region.t_used);

        // Splice: copy survivors in old id order (parents precede children
        // by push_bag construction), then attach the replacement nodes.
        let in_subtree = self.subtree_mask(x);
        let mut td = TreeDecomposition::default();
        let mut info: Vec<NodeInfo> = Vec::new();
        let mut memo: Vec<NodeMemo> = Vec::new();
        let mut map = vec![usize::MAX; self.td.bags.len()];
        for y in 0..self.td.bags.len() {
            if in_subtree[y] {
                continue;
            }
            let parent = if self.td.parent[y] == y {
                None
            } else {
                Some(map[self.td.parent[y]])
            };
            map[y] = td.push_bag(parent, self.td.bags[y].clone());
            info.push(self.info[y].clone());
            memo.push(self.memo[y].clone());
        }
        let p_new = map[p];
        let mut region_ids = Vec::with_capacity(region.nodes.len());
        for rn in &region.nodes {
            let parent = Some(match rn.parent {
                Some(i) => region_ids[i],
                None => p_new,
            });
            let id = td.push_bag(parent, rn.bag.clone());
            region_ids.push(id);
            info.push(rn.info.clone());
            memo.push(NodeMemo::default());
        }
        self.td = td;
        self.info = info;
        self.memo = memo;

        // Clear: region vertices lose their labels entirely; boundary
        // vertices drop entries whose hub lies inside the region (only
        // subtree(x) bags can contain region vertices).
        for &u in &old_gpx {
            self.labels[u as usize] = Label::new(u);
        }
        for &u in &old_inh {
            self.labels[u as usize]
                .entries
                .retain(|e| old_gpx.binary_search(&e.0).is_err());
        }

        // Reprocess the replacement nodes children-first (reverse of the
        // BFS creation order).
        for &id in region_ids.iter().rev() {
            process_node_memoized(
                &self.inst,
                &self.td,
                &self.info,
                id,
                &mut self.labels,
                &mut self.memo,
            );
        }

        // Gate: H_{p(x)} recomputed from the new child memos must match its
        // memoized pre-update value; otherwise boundary-through distances
        // moved and the scoped refresh would be unsound.
        let h_new = h_from_memos(
            &self.inst,
            &self.td.bags[p_new],
            self.td.children[p_new].iter().map(|&c| &self.memo[c]),
        );
        if h_new != self.memo[p_new].d {
            self.relabel_all();
            return Ok(ScopedStats {
                fallback: true,
                region_nodes: region_ids.len(),
                refreshed: 0,
                dirty_local: (0..self.graph.n() as u32).collect(),
            });
        }

        // Path refresh: ancestors keep their (provably unchanged) memos;
        // only the dirty members need their bag entries re-bridged.
        let mut dirty: Vec<u32> = old_gpx.iter().chain(old_inh.iter()).copied().collect();
        dirty.sort_unstable();
        let mut refreshed = 0usize;
        let mut a = p_new;
        loop {
            let k = self.td.bags[a].len();
            debug_assert_eq!(self.memo[a].d.len(), k * k);
            refresh_from_h(&mut self.labels, &self.td.bags[a], &self.memo[a].d, &dirty);
            refreshed += dirty.len();
            if self.td.parent[a] == a {
                break;
            }
            a = self.td.parent[a];
        }
        Ok(ScopedStats {
            fallback: false,
            region_nodes: region_ids.len(),
            refreshed,
            dirty_local: dirty,
        })
    }
}

/// What one [`DynamicLabeling::apply`] did, for reporting and for scoping
/// downstream store rebuilds.
#[derive(Clone, Debug, Default)]
pub struct UpdateReport {
    /// Sorted global vertex ids whose labels may have changed.
    pub dirty: Vec<u32>,
    /// Parts reused wholesale (vertex set unchanged, no touched vertex).
    pub parts_reused: usize,
    /// Parts updated through the scoped dirty-subtree path.
    pub parts_scoped: usize,
    /// Parts rebuilt from scratch (component splits and merges).
    pub parts_rebuilt: usize,
    /// Scoped applies that fell back to a full relabel (gate failure or
    /// root-level dirty node).
    pub fallbacks: usize,
    /// Replacement tree nodes produced across all scoped applies.
    pub region_nodes: usize,
    /// Member-refresh operations along ancestor paths.
    pub refreshed: usize,
    /// Total tree nodes across all parts after the apply.
    pub total_nodes: usize,
}

/// A maintained distance labeling of a (possibly disconnected) instance:
/// build once, then [`apply`](Self::apply) edge batches.
#[derive(Clone, Debug)]
pub struct DynamicLabeling {
    inst: MultiDigraph,
    graph: UGraph,
    comp_of: Vec<u32>,
    parts: Vec<PartLabeling>,
    /// Per global vertex: `(part index, part-local index)`.
    part_of: Vec<(u32, u32)>,
    t0: u64,
    seed: u64,
    applied: u64,
}

impl DynamicLabeling {
    /// Decompose and label every connected component of `inst`.
    pub fn build(inst: &MultiDigraph, t0: u64, seed: u64) -> Result<Self, DecompError> {
        let graph = inst.comm_graph();
        let n = graph.n();
        if n == 0 {
            return Err(DecompError::EmptyGraph);
        }
        let (comp_of, n_comp) = alg::components(&graph);
        let mut parts = Vec::with_capacity(n_comp);
        for c in 0..n_comp {
            let keep: Vec<bool> = comp_of.iter().map(|&cc| cc as usize == c).collect();
            let (pg, old_of) = graph.induced(&keep);
            let (pi, _) = inst.induced(&keep);
            let mut rng = derive_rng("dynlabel_build", &[c as u64], seed);
            let cfg = SepConfig::practical(pg.n());
            parts.push(PartLabeling::build(pg, pi, old_of, t0, &cfg, &mut rng)?);
        }
        let part_of = index_parts(n, &parts);
        Ok(DynamicLabeling {
            inst: inst.clone(),
            graph,
            comp_of,
            parts,
            part_of,
            t0,
            seed,
            applied: 0,
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The current instance (after all applied batches).
    pub fn inst(&self) -> &MultiDigraph {
        &self.inst
    }

    /// Component id per vertex (recomputed on every apply).
    pub fn comp_of(&self) -> &[u32] {
        &self.comp_of
    }

    /// The per-component labelings.
    pub fn parts(&self) -> &[PartLabeling] {
        &self.parts
    }

    /// Exact `d(s → t)` in the current instance (`INF` across components).
    pub fn distance(&self, s: u32, t: u32) -> Dist {
        if self.comp_of[s as usize] != self.comp_of[t as usize] {
            return INF;
        }
        let (ps, ls) = self.part_of[s as usize];
        let (_, lt) = self.part_of[t as usize];
        let part = &self.parts[ps as usize];
        decode(&part.labels[ls as usize], &part.labels[lt as usize])
    }

    /// Label entries of global vertex `v` with hubs mapped to global ids
    /// (sorted by hub) — the store-compaction input.
    pub fn label_entries_global(&self, v: u32) -> Vec<(u32, Dist, Dist)> {
        let (p, l) = self.part_of[v as usize];
        let part = &self.parts[p as usize];
        let mut out: Vec<(u32, Dist, Dist)> = part.labels[l as usize]
            .entries
            .iter()
            .map(|&(h, to, from)| (part.old_of[h as usize], to, from))
            .collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Apply an edge batch, updating labels incrementally where possible.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<UpdateReport, DecompError> {
        let (new_inst, touched) = batch.apply(&self.inst);
        self.applied += 1;
        if touched.is_empty() {
            return Ok(UpdateReport {
                parts_reused: self.parts.len(),
                total_nodes: self.parts.iter().map(|p| p.td.bags.len()).sum(),
                ..UpdateReport::default()
            });
        }
        let n = self.graph.n();
        let new_graph = new_inst.comm_graph();
        let (comp_of, n_comp) = alg::components(&new_graph);
        let mut comp_verts: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
        for v in 0..n {
            comp_verts[comp_of[v] as usize].push(v as u32);
        }
        // Old parts keyed by smallest vertex: `induced` old_of is sorted,
        // so identical vertex sets share their first element.
        let old_key: HashMap<u32, usize> = self
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.old_of[0], i))
            .collect();
        let mut old_parts: Vec<Option<PartLabeling>> = std::mem::take(&mut self.parts)
            .into_iter()
            .map(Some)
            .collect();

        let mut rep = UpdateReport::default();
        let mut new_parts: Vec<PartLabeling> = Vec::with_capacity(n_comp);
        for verts in comp_verts {
            let matching = old_key
                .get(&verts[0])
                .copied()
                .filter(|&i| old_parts[i].as_ref().is_some_and(|p| p.old_of == verts));
            let touched_here: Vec<u32> = touched
                .iter()
                .copied()
                .filter(|t| verts.binary_search(t).is_ok())
                .collect();
            match matching {
                Some(i) if touched_here.is_empty() => {
                    // Vertex set unchanged and nothing touched: the induced
                    // instance is identical — reuse the part wholesale.
                    rep.parts_reused += 1;
                    new_parts.push(old_parts[i].take().unwrap());
                }
                Some(i) => {
                    let mut keep = vec![false; n];
                    for &v in &verts {
                        keep[v as usize] = true;
                    }
                    let (pg, _) = new_graph.induced(&keep);
                    let (pi, _) = new_inst.induced(&keep);
                    let mut part = old_parts[i].take().unwrap();
                    let touched_local: Vec<u32> = touched_here
                        .iter()
                        .map(|t| part.old_of.binary_search(t).unwrap() as u32)
                        .collect();
                    let mut rng = derive_rng(
                        "dynlabel_apply",
                        &[self.applied, verts[0] as u64],
                        self.seed,
                    );
                    let stats = part.apply_scoped(pg, pi, &touched_local, &mut rng)?;
                    rep.parts_scoped += 1;
                    rep.fallbacks += stats.fallback as usize;
                    rep.region_nodes += stats.region_nodes;
                    rep.refreshed += stats.refreshed;
                    rep.dirty
                        .extend(stats.dirty_local.iter().map(|&l| part.old_of[l as usize]));
                    new_parts.push(part);
                }
                None => {
                    // Split or merge: the vertex set is new — scratch-build.
                    let mut keep = vec![false; n];
                    for &v in &verts {
                        keep[v as usize] = true;
                    }
                    let (pg, old_of) = new_graph.induced(&keep);
                    let (pi, _) = new_inst.induced(&keep);
                    let mut rng = derive_rng(
                        "dynlabel_apply",
                        &[self.applied, verts[0] as u64],
                        self.seed,
                    );
                    let cfg = SepConfig::practical(pg.n());
                    let part = PartLabeling::build(pg, pi, old_of, self.t0, &cfg, &mut rng)?;
                    rep.parts_rebuilt += 1;
                    rep.dirty.extend(verts.iter().copied());
                    new_parts.push(part);
                }
            }
        }
        rep.dirty.sort_unstable();
        rep.dirty.dedup();
        rep.total_nodes = new_parts.iter().map(|p| p.td.bags.len()).sum();
        self.inst = new_inst;
        self.graph = new_graph;
        self.comp_of = comp_of;
        self.part_of = index_parts(n, &new_parts);
        self.parts = new_parts;
        Ok(rep)
    }
}

/// Global vertex → `(part, local)` index.
fn index_parts(n: usize, parts: &[PartLabeling]) -> Vec<(u32, u32)> {
    let mut part_of = vec![(u32::MAX, u32::MAX); n];
    for (pi, part) in parts.iter().enumerate() {
        for (li, &g) in part.old_of.iter().enumerate() {
            part_of[g as usize] = (pi as u32, li as u32);
        }
    }
    part_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::alg::apsp_dijkstra;
    use twgraph::gen::{banded_path, disjoint_union, grid, ktree, with_random_weights};

    fn assert_matches_dijkstra(dyn_l: &DynamicLabeling) {
        let truth = apsp_dijkstra(dyn_l.inst());
        let n = dyn_l.n();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert_eq!(
                    dyn_l.distance(u, v),
                    truth[u as usize][v as usize],
                    "distance({u},{v}) after updates"
                );
            }
        }
    }

    #[test]
    fn memoized_build_is_exact() {
        let g = banded_path(60, 2);
        let inst = with_random_weights(&g, 20, 7);
        let dyn_l = DynamicLabeling::build(&inst, 3, 1).unwrap();
        assert_matches_dijkstra(&dyn_l);
    }

    #[test]
    fn memoized_build_handles_components() {
        let g = disjoint_union(&[banded_path(20, 2), grid(4, 4), twgraph::UGraph::empty(1)]);
        let inst = with_random_weights(&g, 9, 3);
        let dyn_l = DynamicLabeling::build(&inst, 3, 2).unwrap();
        assert_matches_dijkstra(&dyn_l);
        // Cross-component pairs decode to INF.
        assert_eq!(dyn_l.distance(0, 20), INF);
        assert_eq!(dyn_l.distance(36, 0), INF);
    }

    #[test]
    fn apply_matches_scratch_rebuild() {
        let g = ktree(48, 2, 5);
        let inst = with_random_weights(&g, 12, 4);
        let mut dyn_l = DynamicLabeling::build(&inst, 3, 3).unwrap();
        let batches = [
            EdgeBatch::new().insert(3, 40, 2),
            EdgeBatch::new().delete(3, 40).insert(10, 11, 1),
            EdgeBatch::new().delete(0, 1),
        ];
        for batch in &batches {
            let rep = dyn_l.apply(batch).unwrap();
            assert!(rep.parts_reused + rep.parts_scoped + rep.parts_rebuilt > 0);
            assert_matches_dijkstra(&dyn_l);
            // The incremental result answers identically to a from-scratch
            // build over the updated instance.
            let scratch = DynamicLabeling::build(dyn_l.inst(), 3, 3).unwrap();
            for u in 0..dyn_l.n() as u32 {
                for v in 0..dyn_l.n() as u32 {
                    assert_eq!(dyn_l.distance(u, v), scratch.distance(u, v));
                }
            }
        }
    }

    #[test]
    fn split_and_merge_components() {
        // A path of two blobs joined by a bridge: deleting the bridge
        // splits the component, re-inserting it merges back.
        let g = banded_path(30, 1);
        let inst = with_random_weights(&g, 8, 9);
        let mut dyn_l = DynamicLabeling::build(&inst, 3, 4).unwrap();
        let rep = dyn_l.apply(&EdgeBatch::new().delete(14, 15)).unwrap();
        assert!(rep.parts_rebuilt >= 1, "split must rebuild parts: {rep:?}");
        assert_eq!(dyn_l.distance(0, 29), INF);
        assert_matches_dijkstra(&dyn_l);
        let rep = dyn_l.apply(&EdgeBatch::new().insert(14, 15, 3)).unwrap();
        assert!(rep.parts_rebuilt >= 1, "merge must rebuild parts: {rep:?}");
        assert!(dyn_l.distance(0, 29) < INF);
        assert_matches_dijkstra(&dyn_l);
    }

    #[test]
    fn noop_batch_reuses_everything() {
        let g = grid(5, 5);
        let inst = with_random_weights(&g, 6, 2);
        let mut dyn_l = DynamicLabeling::build(&inst, 3, 5).unwrap();
        let rep = dyn_l.apply(&EdgeBatch::new().delete(0, 24)).unwrap();
        assert_eq!(rep.parts_reused, 1);
        assert_eq!(rep.parts_scoped + rep.parts_rebuilt, 0);
        assert!(rep.dirty.is_empty());
        assert_matches_dijkstra(&dyn_l);
    }

    #[test]
    fn deep_edit_goes_scoped() {
        // A long banded path decomposes into a deep tree; an edit confined
        // to one end should stay far from the root.
        let g = banded_path(400, 2);
        let inst = with_random_weights(&g, 10, 1);
        let mut dyn_l = DynamicLabeling::build(&inst, 3, 6).unwrap();
        let rep = dyn_l.apply(&EdgeBatch::new().insert(2, 4, 1)).unwrap();
        assert_eq!(rep.parts_scoped, 1);
        assert!(
            rep.dirty.len() < dyn_l.n(),
            "scoped apply should not dirty the whole part: {} of {}",
            rep.dirty.len(),
            dyn_l.n()
        );
        let truth = apsp_dijkstra(dyn_l.inst());
        for u in (0..400).step_by(13) {
            for v in (0..400).step_by(17) {
                assert_eq!(dyn_l.distance(u as u32, v as u32), truth[u][v]);
            }
        }
    }

    #[test]
    fn label_entries_global_maps_hubs() {
        let g = disjoint_union(&[grid(3, 3), grid(3, 3)]);
        let inst = with_random_weights(&g, 5, 8);
        let dyn_l = DynamicLabeling::build(&inst, 3, 7).unwrap();
        // Vertex 9 is the first vertex of the second component; its hubs
        // must all be global ids ≥ 9.
        let entries = dyn_l.label_entries_global(9);
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|e| e.0 >= 9));
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
