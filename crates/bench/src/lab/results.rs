//! The versioned results table every lab run emits and the gate consumes.
//!
//! One schema for every experiment: a [`LabReport`] header
//! (`schema_version`, `host`, `profile`) over uniform [`TrialRow`]s whose
//! metrics are pre-classified at the source:
//!
//! * `det`  — deterministic charged metrics (rounds, congestion, message
//!   counts, label sizes, output checksums). Bit-equal across hosts; the
//!   gate fails hard on any drift.
//! * `wall` — wall-clock microseconds. Host-dependent; gated with a
//!   relative tolerance and an absolute floor.
//! * `info` — context numbers (throughputs, rates, speedups) derived from
//!   wall clocks or thread interleaving. Recorded, never gated.

use std::fmt;
use std::path::Path;

/// Bump when the report layout changes incompatibly; the gate refuses to
/// compare reports across versions with a typed error.
pub const SCHEMA_VERSION: u64 = 1;

/// One trial's classified metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrialRow {
    /// Join key: `experiment/scenario/pipeline/variant#rep`.
    pub id: String,
    pub experiment: String,
    pub scenario: String,
    pub pipeline: String,
    pub variant: String,
    pub rep: u64,
    /// Deterministic charged metrics, insertion-ordered.
    pub det: Vec<(String, u64)>,
    /// Wall-clock spans in microseconds.
    pub wall_us: Vec<(String, u64)>,
    /// Ungated context numbers.
    pub info: Vec<(String, f64)>,
}

impl TrialRow {
    pub fn det_get(&self, key: &str) -> Option<u64> {
        self.det.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    pub fn wall_get(&self, key: &str) -> Option<u64> {
        self.wall_us.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// A full lab run: header + rows.
#[derive(Clone, Debug, PartialEq)]
pub struct LabReport {
    pub schema_version: u64,
    /// Hostname the run executed on (wall clocks are only comparable
    /// same-host; the gate downgrades cross-host wall findings).
    pub host: String,
    /// Profile the trials were planned under.
    pub profile: String,
    pub rows: Vec<TrialRow>,
}

impl LabReport {
    pub fn new(profile: &str, rows: Vec<TrialRow>) -> Self {
        LabReport {
            schema_version: SCHEMA_VERSION,
            host: host_name(),
            profile: profile.to_string(),
            rows,
        }
    }

    /// The report restricted to one experiment's rows.
    pub fn restricted_to(&self, experiment: &str) -> LabReport {
        LabReport {
            schema_version: self.schema_version,
            host: self.host.clone(),
            profile: self.profile.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| r.experiment == experiment)
                .cloned()
                .collect(),
        }
    }

    /// Experiment names present, in first-appearance order.
    pub fn experiments(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.experiment) {
                out.push(r.experiment.clone());
            }
        }
        out
    }

    /// Serialize to the canonical single-line JSON document.
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "id": r.id.clone(),
                    "experiment": r.experiment.clone(),
                    "scenario": r.scenario.clone(),
                    "pipeline": r.pipeline.clone(),
                    "variant": r.variant.clone(),
                    "rep": r.rep,
                    "det": pairs_u64(&r.det),
                    "wall_us": pairs_u64(&r.wall_us),
                    "info": pairs_f64(&r.info),
                })
            })
            .collect();
        serde_json::json!({
            "schema_version": self.schema_version,
            "host": self.host.clone(),
            "profile": self.profile.clone(),
            "rows": rows,
        })
    }

    /// Write the report as one JSON line (the committed-baseline format).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(&self.to_json()).unwrap() + "\n")
    }

    /// Parse a report back from its JSON document.
    pub fn from_json(doc: &serde_json::Value) -> Result<LabReport, BaselineError> {
        let field = |key: &str| -> Result<&serde_json::Value, BaselineError> {
            doc.get(key)
                .ok_or_else(|| BaselineError::Malformed(format!("missing field {key:?}")))
        };
        let schema_version = field("schema_version")?
            .as_u64()
            .ok_or_else(|| BaselineError::Malformed("schema_version must be a u64".into()))?;
        if schema_version != SCHEMA_VERSION {
            return Err(BaselineError::SchemaMismatch {
                found: schema_version,
                expected: SCHEMA_VERSION,
            });
        }
        let host = str_field(doc, "host")?;
        let profile = str_field(doc, "profile")?;
        let rows_v = field("rows")?
            .as_array()
            .ok_or_else(|| BaselineError::Malformed("rows must be an array".into()))?;
        let mut rows = Vec::with_capacity(rows_v.len());
        for rv in rows_v {
            rows.push(TrialRow {
                id: str_field(rv, "id")?,
                experiment: str_field(rv, "experiment")?,
                scenario: str_field(rv, "scenario")?,
                pipeline: str_field(rv, "pipeline")?,
                variant: str_field(rv, "variant")?,
                rep: rv
                    .get("rep")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| BaselineError::Malformed("rep must be a u64".into()))?,
                det: u64_pairs(rv, "det")?,
                wall_us: u64_pairs(rv, "wall_us")?,
                info: f64_pairs(rv, "info")?,
            });
        }
        Ok(LabReport {
            schema_version,
            host,
            profile,
            rows,
        })
    }

    /// Load a report file (the committed `BENCH_<experiment>.json` shape).
    pub fn load(path: &Path) -> Result<LabReport, BaselineError> {
        let src = std::fs::read_to_string(path).map_err(|e| BaselineError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        let doc = serde_json::from_str(&src)
            .map_err(|e| BaselineError::Malformed(format!("{}: {e}", path.display())))?;
        LabReport::from_json(&doc)
    }
}

/// Why a baseline (or candidate) report could not be used.
#[derive(Debug, PartialEq)]
pub enum BaselineError {
    /// The file exists but its schema version is not ours.
    SchemaMismatch { found: u64, expected: u64 },
    /// The document is not a valid report.
    Malformed(String),
    /// The file could not be read at all.
    Io { path: String, msg: String },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::SchemaMismatch { found, expected } => write!(
                f,
                "schema_version {found} is incompatible with this lab (expected {expected}); \
                 regenerate the baseline with `lab run --bless`"
            ),
            BaselineError::Malformed(m) => write!(f, "malformed report: {m}"),
            BaselineError::Io { path, msg } => write!(f, "cannot read {path}: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// The hostname recorded in reports: `$LAB_HOST` override, else
/// `/etc/hostname`, else `"unknown"`.
pub fn host_name() -> String {
    if let Ok(h) = std::env::var("LAB_HOST") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    std::fs::read_to_string("/etc/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn pairs_u64(pairs: &[(String, u64)]) -> serde_json::Value {
    serde_json::Value::Object(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
            .collect(),
    )
}

fn pairs_f64(pairs: &[(String, f64)]) -> serde_json::Value {
    serde_json::Value::Object(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
            .collect(),
    )
}

fn str_field(v: &serde_json::Value, key: &str) -> Result<String, BaselineError> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(String::from)
        .ok_or_else(|| BaselineError::Malformed(format!("{key} must be a string")))
}

fn u64_pairs(v: &serde_json::Value, key: &str) -> Result<Vec<(String, u64)>, BaselineError> {
    let obj = v
        .get(key)
        .and_then(|x| x.as_object())
        .ok_or_else(|| BaselineError::Malformed(format!("{key} must be an object")))?;
    obj.iter()
        .map(|(k, x)| {
            x.as_u64()
                .map(|u| (k.clone(), u))
                .ok_or_else(|| BaselineError::Malformed(format!("{key}.{k} must be a u64")))
        })
        .collect()
}

fn f64_pairs(v: &serde_json::Value, key: &str) -> Result<Vec<(String, f64)>, BaselineError> {
    let obj = v
        .get(key)
        .and_then(|x| x.as_object())
        .ok_or_else(|| BaselineError::Malformed(format!("{key} must be an object")))?;
    obj.iter()
        .map(|(k, x)| {
            x.as_f64()
                .map(|u| (k.clone(), u))
                .ok_or_else(|| BaselineError::Malformed(format!("{key}.{k} must be a number")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_row(id: &str, det: &[(&str, u64)]) -> TrialRow {
        TrialRow {
            id: id.to_string(),
            experiment: id.split('/').next().unwrap().to_string(),
            scenario: "-".into(),
            pipeline: "-".into(),
            variant: "-".into(),
            rep: 0,
            det: det.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            wall_us: vec![("total".into(), 120_000)],
            info: vec![("qps".into(), 1234.5)],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let rep = LabReport::new(
            "quick",
            vec![
                sample_row("e/-/-/-#0", &[("rounds", 10), ("words", 99)]),
                sample_row("e/-/-/flat#0", &[("congestion", 4)]),
            ],
        );
        let s = serde_json::to_string(&rep.to_json()).unwrap();
        let back = LabReport::from_json(&serde_json::from_str(&s).unwrap()).unwrap();
        assert_eq!(rep, back);
    }

    #[test]
    fn schema_mismatch_is_typed() {
        let mut doc = LabReport::new("quick", vec![]).to_json();
        let s = serde_json::to_string(&doc).unwrap().replace(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
        );
        doc = serde_json::from_str(&s).unwrap();
        match LabReport::from_json(&doc) {
            Err(BaselineError::SchemaMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, SCHEMA_VERSION);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_reports_are_rejected() {
        for bad in [
            "{}",
            "{\"schema_version\":1}",
            "{\"schema_version\":1,\"host\":\"h\",\"profile\":\"q\",\"rows\":7}",
        ] {
            let doc = serde_json::from_str(bad).unwrap();
            assert!(matches!(
                LabReport::from_json(&doc),
                Err(BaselineError::Malformed(_))
            ));
        }
    }
}
