//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace's build environment has no registry access, so this crate
//! re-implements exactly the surface the workspace uses: [`Rng`],
//! [`SeedableRng`], [`rngs::SmallRng`] and [`seq::SliceRandom`]. Everything
//! is deterministic given the seed; see `crates/compat/README.md`.

pub mod rngs;
pub mod seq;

/// A source of random 32/64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the full value domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to yield a `T` (the `SampleRange` of real
/// `rand`). Implemented for `Range` and `RangeInclusive` over the integer
/// widths the workspace uses, plus `Range<f64>`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut Wrap(self))
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(&mut Wrap(self))
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(&mut Wrap(self)) < p
    }
}

/// Adapter that lets the `Rng` default methods forward `&mut Self` (possibly
/// unsized) to the `R: RngCore + ?Sized` sampling functions.
struct Wrap<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for Wrap<'_, R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-4i64..9);
            assert!((-4..9).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying put is ~impossible");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [10u32, 20, 30];
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..200 {
            let x = *v.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
