//! The superstep engine, built around a flat CSR mailbox arena.
//!
//! A superstep stages every emitted message into one contiguous buffer
//! (ordered by source), charges it against precomputed per-directed-edge
//! slots, then counting-sorts it into a second contiguous delivery buffer
//! indexed by destination. All index/accounting scratch (slot loads, the
//! touched-slot list, inbox offsets) lives in a reusable [`MailboxArena`],
//! so after warm-up a superstep performs no per-node allocations — the only
//! per-call allocations are the two flat message buffers, and quiescence
//! loops ([`Network::run_until_quiet`]) reuse even those across supersteps.
//! Accounting is *sparse*: only slots that actually carried words are
//! visited, so an almost-quiet superstep costs O(active) rather than O(m).
//!
//! ## Scoped supersteps
//!
//! A full superstep still evaluates `send` for all `n` nodes and lays out
//! `n` inbox windows, so a protocol that only involves a small vertex set
//! (one recursion subproblem, one part collection) pays O(n) per superstep
//! regardless of how quiet the network is. The *scoped* entry points
//! ([`superstep_on`](Network::superstep_on),
//! [`run_until_quiet_on`](Network::run_until_quiet_on)) take a sorted
//! active-node list and positional states (`states[i]` belongs to
//! `active[i]`): `send`/`recv` run only over the active set and every piece
//! of delivery bookkeeping is reset sparsely, so a scoped superstep costs
//! O(active + messages). The charged metrics are **identical** to running
//! the full superstep with `send` returning nothing outside the active set
//! — the staged message multiset, and hence every counter, is the same.
//! Messages must stay inside the active set
//! ([`CongestError::InactiveRecipient`] otherwise).

use crate::error::CongestError;
use crate::metrics::{Metrics, PhaseSnapshot};
use crate::projection::{EdgeProjection, NO_SLOT};
use crate::wire::WireMsg;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::ops::Range;
use std::sync::Arc;
use twgraph::UGraph;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Words each edge carries per direction per round (`W`; default 1 —
    /// the classical CONGEST normalization of one O(log n)-bit message).
    pub bandwidth_words: u64,
    /// Node count above which send/recv phases run on the rayon pool,
    /// partitioned over edge-balanced node ranges.
    pub parallel_threshold: usize,
    /// Seed for the unique O(log n)-bit node identifiers.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            bandwidth_words: 1,
            parallel_threshold: 2048,
            seed: 0xC0FFEE,
        }
    }
}

/// The messages delivered to one node in a superstep: a window into the
/// flat delivery arena. Iterating by value (`for (src, msg) in inbox`)
/// moves each message out of the arena; [`iter`](Inbox::iter) borrows.
/// Messages arrive ordered by source id.
pub struct Inbox<'a, M> {
    slots: &'a mut [Option<(u32, M)>],
}

impl<'a, M> Inbox<'a, M> {
    /// Number of delivered messages.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing was delivered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The first message (lowest source id), by reference.
    #[inline]
    pub fn first(&self) -> Option<&(u32, M)> {
        self.slots
            .first()
            .map(|s| s.as_ref().expect("message already taken"))
    }

    /// Borrowing iterator over `(source, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, M)> + '_ {
        self.slots
            .iter()
            .map(|s| s.as_ref().expect("message already taken"))
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (u32, M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        InboxIter {
            inner: self.slots.iter_mut(),
        }
    }
}

/// By-value iterator over an [`Inbox`] (see [`Inbox`]).
pub struct InboxIter<'a, M> {
    inner: std::slice::IterMut<'a, Option<(u32, M)>>,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (u32, M);

    #[inline]
    fn next(&mut self) -> Option<(u32, M)> {
        self.inner
            .next()
            .map(|s| s.take().expect("message already taken"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, M> ExactSizeIterator for InboxIter<'a, M> {}

/// Reusable accounting scratch: zeroed between supersteps, never shrunk.
#[derive(Default)]
struct MailboxArena {
    /// Words accumulated per physical directed-edge slot this superstep.
    /// Invariant between supersteps: all zeros (reset via `touched`).
    slot_words: Vec<u64>,
    /// The slots dirtied this superstep (sparse reset + sparse max/sum).
    touched: Vec<u32>,
    /// Per-node inbox cursor (counts, then scatter positions). The dense
    /// path refills it whole; the scoped path touches active entries only,
    /// resetting them on entry (stale entries outside an active set are
    /// never read).
    cursor: Vec<usize>,
    /// Per-node inbox offsets into the delivery buffer (`n + 1` entries for
    /// the dense path; scatter positions per active node for the scoped
    /// path).
    inbox_off: Vec<usize>,
    /// Membership stamp of the current scoped superstep's active set:
    /// `active_stamp[v] == active_epoch` iff `v` is active. Bumping the
    /// epoch clears the whole set in O(1).
    active_stamp: Vec<u64>,
    /// Generation counter for `active_stamp`.
    active_epoch: u64,
}

/// A simulated CONGEST network over a fixed communication graph.
///
/// The network owns the topology, the cost accounting and the node
/// identifiers; *algorithm state* lives outside in a `Vec<S>` supplied to
/// [`superstep`](Network::superstep), so one network can run many protocols
/// back to back while accumulating a single round count.
pub struct Network {
    g: Arc<UGraph>,
    /// CSR offsets mirroring `g` (`adj_off[v]..adj_off[v+1]` indexes the
    /// sorted neighbour array below).
    adj_off: Vec<u32>,
    /// Undirected edge id per adjacency slot (edge id = rank in the sorted
    /// `(lo, hi)` edge list, as in [`UGraph::edges`]).
    adj_eids: Vec<u32>,
    /// Per virtual edge id: physical directed slot of the lo→hi direction
    /// ([`NO_SLOT`] = free node-local edge).
    slot_fwd: Vec<u32>,
    /// Per virtual edge id: physical directed slot of the hi→lo direction.
    slot_rev: Vec<u32>,
    cfg: NetworkConfig,
    metrics: Metrics,
    /// Unique random O(log n)-bit node ids (the model's identifiers).
    uids: Vec<u64>,
    /// Target number of work chunks for the parallel paths.
    n_chunks: usize,
    arena: MailboxArena,
    phase_log: Vec<PhaseSnapshot>,
}

/// Split `0..n` into up to `chunks` contiguous ranges of roughly equal
/// total weight, where `prefix(i)` is the cumulative weight of the first
/// `i` items. Returns a single range when there is no weight to balance —
/// in particular a graph with zero edges (or all-isolated vertices) must
/// not divide by its total edge weight.
///
/// Public because the same weight-balanced partitioning drives other
/// deterministic fan-outs (e.g. `treedec`'s sibling-branch scheduling).
pub fn balanced_ranges(
    n: usize,
    chunks: usize,
    prefix: impl Fn(usize) -> u64,
) -> Vec<Range<usize>> {
    let total = prefix(n);
    let chunks = chunks.clamp(1, n.max(1));
    if total == 0 || chunks == 1 || n == 0 {
        // A single whole-range chunk, not `vec![0; n]`.
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n];
    }
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 1..=chunks {
        let end = if c == chunks {
            n
        } else {
            // Smallest i ≥ start with prefix(i) ≥ c/chunks of the total.
            let target = total * c as u64 / chunks as u64;
            let (mut lo, mut hi) = (start, n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if prefix(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    out
}

impl Network {
    /// A physical network on the communication graph `g`.
    pub fn new(g: UGraph, cfg: NetworkConfig) -> Self {
        let projection = EdgeProjection::identity(&g);
        Self::with_projection(g, projection, cfg)
    }

    /// A (possibly virtual) network whose word traffic is charged through
    /// `projection` onto physical edges.
    pub fn with_projection(g: UGraph, projection: EdgeProjection, cfg: NetworkConfig) -> Self {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut uids: Vec<u64> = (0..n as u64)
            .map(|v| (v << 32) | rng.gen::<u32>() as u64)
            .collect();
        // The high half guarantees uniqueness; shuffle the order relation by
        // rotating so uid order is unrelated to index order.
        for u in uids.iter_mut() {
            *u = u.rotate_left(32);
        }

        // Flatten the adjacency into a CSR mirror annotated with edge ids,
        // so `{u, v} → edge id` is one binary search in u's neighbour list.
        let mut adj_off = Vec::with_capacity(n + 1);
        adj_off.push(0u32);
        for v in 0..n as u32 {
            adj_off.push(adj_off[v as usize] + g.degree(v) as u32);
        }
        let mut adj_eids = vec![0u32; adj_off[n] as usize];
        for (eid, (u, v)) in g.edges().enumerate() {
            for (a, b) in [(u, v), (v, u)] {
                let lo = adj_off[a as usize] as usize;
                let pos = g
                    .neighbors(a)
                    .binary_search(&b)
                    .expect("edge ids out of sync");
                adj_eids[lo + pos] = eid as u32;
            }
        }
        let (slot_fwd, slot_rev) = projection.slot_tables();
        debug_assert_eq!(slot_fwd.len(), g.m());

        let n_chunks = std::thread::available_parallelism().map_or(1, |p| p.get()) * 4;
        let arena = MailboxArena {
            slot_words: vec![0u64; projection.n_physical_edges() * 2],
            touched: Vec::new(),
            cursor: vec![0usize; n],
            inbox_off: vec![0usize; n + 1],
            active_stamp: vec![0u64; n],
            active_epoch: 0,
        };
        Network {
            g: Arc::new(g),
            adj_off,
            adj_eids,
            slot_fwd,
            slot_rev,
            cfg,
            metrics: Metrics::default(),
            uids,
            n_chunks: n_chunks.clamp(1, 256),
            arena,
            phase_log: Vec::new(),
        }
    }

    /// The communication graph.
    #[inline]
    pub fn graph(&self) -> &UGraph {
        &self.g
    }

    /// A shared handle to the communication graph — a refcount bump, not a
    /// topology copy. Algorithms that need the adjacency inside `send`/
    /// `recv` closures (while the network itself is mutably borrowed) take
    /// this instead of cloning O(n + m) state per invocation.
    #[inline]
    pub fn graph_handle(&self) -> Arc<UGraph> {
        Arc::clone(&self.g)
    }

    /// Node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The unique identifier of node `v`.
    #[inline]
    pub fn uid(&self, v: u32) -> u64 {
        self.uids[v as usize]
    }

    /// Accumulated metrics.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Engine configuration.
    #[inline]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Charge rounds outside message traffic (global O(D)-round control
    /// pulses by the orchestrator; see DESIGN.md §4.4).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.note_charged(rounds);
    }

    /// Close the current accounting phase under `phase` (see
    /// [`Metrics::snapshot`]) and append it to the network's phase log.
    pub fn snapshot(&mut self, phase: &str) -> PhaseSnapshot {
        let snap = self.metrics.snapshot(phase);
        self.phase_log.push(snap.clone());
        snap
    }

    /// Every phase recorded via [`snapshot`](Network::snapshot), in order.
    #[inline]
    pub fn phase_log(&self) -> &[PhaseSnapshot] {
        &self.phase_log
    }

    /// Phase 1: evaluate `send` for every node and append the emitted
    /// messages to the flat staging buffer as `(src, dst, payload)`,
    /// ordered by source. Above the parallel threshold the nodes are
    /// partitioned into edge-balanced ranges for the rayon pool.
    fn stage_sends<S, M>(
        &self,
        states: &[S],
        send: &(impl Fn(u32, &S) -> Vec<(u32, M)> + Sync),
        stage: &mut Vec<(u32, u32, M)>,
    ) where
        S: Send + Sync,
        M: WireMsg,
    {
        let n = states.len();
        stage.clear();
        if n >= self.cfg.parallel_threshold {
            // adj_off doubles as the degree prefix sum (edge-balanced split).
            let adj_off = &self.adj_off;
            let ranges = balanced_ranges(n, self.n_chunks, |i| adj_off[i] as u64);
            let parts: Vec<Vec<(u32, u32, M)>> = ranges
                .into_par_iter()
                .map(|r| {
                    let mut buf = Vec::new();
                    for u in r {
                        for (v, m) in send(u as u32, &states[u]) {
                            buf.push((u as u32, v, m));
                        }
                    }
                    buf
                })
                .collect();
            stage.reserve(parts.iter().map(Vec::len).sum());
            for part in parts {
                stage.extend(part);
            }
        } else {
            for (u, s) in states.iter().enumerate() {
                for (v, m) in send(u as u32, s) {
                    stage.push((u as u32, v, m));
                }
            }
        }
    }

    /// Scoped phase 1: evaluate `send` over the active nodes only
    /// (`states[i]` belongs to `active[i]`). The active list is sorted, so
    /// the stage comes out source-ascending exactly like the dense path.
    /// Scoped supersteps are small by construction, so this path stays
    /// sequential — fan-out parallelism belongs to the caller's level, not
    /// to a near-quiet superstep.
    fn stage_sends_on<S, M>(
        &self,
        active: &[u32],
        states: &[S],
        send: &(impl Fn(u32, &S) -> Vec<(u32, M)> + Sync),
        stage: &mut Vec<(u32, u32, M)>,
    ) where
        M: WireMsg,
    {
        stage.clear();
        for (i, &u) in active.iter().enumerate() {
            for (v, m) in send(u, &states[i]) {
                stage.push((u, v, m));
            }
        }
    }

    /// Phase 2 (shared): validate and charge the staged messages, count
    /// them per destination into `arena.cursor` (which the caller must have
    /// reset for every possible destination), and record the superstep in
    /// the metrics. When `scoped` is set, destinations must carry the
    /// current active stamp. On error the slot accounting is rolled back
    /// and nothing is charged.
    fn charge_stage<M: WireMsg>(
        &mut self,
        stage: &[(u32, u32, M)],
        scoped: bool,
    ) -> Result<u64, CongestError> {
        let Network {
            g,
            arena,
            adj_off,
            adj_eids,
            slot_fwd,
            slot_rev,
            ..
        } = self;
        // Defensive reset: an aborted earlier superstep may have left slots
        // dirty mid-accounting; normal supersteps drain `touched` on exit,
        // so this is free.
        for s in arena.touched.drain(..) {
            arena.slot_words[s as usize] = 0;
        }
        let mut failure = None;
        for &(u, v, ref m) in stage.iter() {
            let lo = adj_off[u as usize] as usize;
            let eid = match g.neighbors(u).binary_search(&v) {
                Ok(pos) => adj_eids[lo + pos],
                Err(_) => {
                    failure = Some(CongestError::NonNeighborSend { from: u, to: v });
                    break;
                }
            };
            if scoped && arena.active_stamp[v as usize] != arena.active_epoch {
                failure = Some(CongestError::InactiveRecipient { from: u, to: v });
                break;
            }
            let w = m.words();
            debug_assert!(w >= 1, "zero-word message");
            let slot = if u < v {
                slot_fwd[eid as usize]
            } else {
                slot_rev[eid as usize]
            };
            if slot != NO_SLOT {
                if arena.slot_words[slot as usize] == 0 {
                    arena.touched.push(slot);
                }
                arena.slot_words[slot as usize] += w;
            }
            arena.cursor[v as usize] += 1;
        }
        if let Some(e) = failure {
            // Roll back so the arena invariant (all slot loads zero) holds
            // and a failed superstep charges nothing. The per-destination
            // counts are re-zeroed by the next superstep's reset.
            for s in arena.touched.drain(..) {
                arena.slot_words[s as usize] = 0;
            }
            return Err(e);
        }
        let max_slot = arena
            .touched
            .iter()
            .map(|&s| arena.slot_words[s as usize])
            .max()
            .unwrap_or(0);
        let words: u64 = arena
            .touched
            .iter()
            .map(|&s| arena.slot_words[s as usize])
            .sum();
        let bw = self.cfg.bandwidth_words;
        let rounds = self
            .arena
            .touched
            .iter()
            .map(|&s| self.arena.slot_words[s as usize].div_ceil(bw))
            .max()
            .unwrap_or(0)
            .max(1);
        for s in self.arena.touched.drain(..) {
            self.arena.slot_words[s as usize] = 0;
        }
        self.metrics
            .note_superstep(rounds, stage.len() as u64, words, max_slot);
        Ok(rounds)
    }

    /// Phases 2–4: validate and charge the staged messages, counting-sort
    /// them into the delivery buffer, and run `recv` over every node's
    /// inbox window. Drains `stage`; returns the rounds charged.
    fn deliver_staged<S, M>(
        &mut self,
        states: &mut [S],
        stage: &mut Vec<(u32, u32, M)>,
        deliv: &mut Vec<Option<(u32, M)>>,
        recv: &(impl Fn(u32, &mut S, Inbox<'_, M>) + Sync),
    ) -> Result<u64, CongestError>
    where
        S: Send + Sync,
        M: WireMsg,
    {
        let n = states.len();

        // Phase 2: validate, account (sparsely — only touched slots).
        self.arena.cursor[..n].fill(0);
        let rounds = self.charge_stage(stage, false)?;
        let arena = &mut self.arena;

        // Phase 3: counting-sort delivery into the flat mailbox. The stage
        // is source-ascending and the sort is stable, so every inbox window
        // ends up ordered by source.
        arena.inbox_off[0] = 0;
        for v in 0..n {
            arena.inbox_off[v + 1] = arena.inbox_off[v] + arena.cursor[v];
        }
        arena.cursor[..n].copy_from_slice(&arena.inbox_off[..n]);
        deliv.clear();
        deliv.resize_with(stage.len(), || None);
        for (u, v, m) in stage.drain(..) {
            let p = arena.cursor[v as usize];
            arena.cursor[v as usize] += 1;
            deliv[p] = Some((u, m));
        }

        // Phase 4: deliver. Parallel path: message-balanced node ranges,
        // each owning a disjoint window of the delivery buffer.
        let inbox_off = &arena.inbox_off;
        if n >= self.cfg.parallel_threshold {
            let ranges = balanced_ranges(n, self.n_chunks, |i| inbox_off[i] as u64);
            let mut jobs = Vec::with_capacity(ranges.len());
            let mut state_rest = states;
            let mut deliv_rest = &mut deliv[..];
            let mut node_base = 0usize;
            for r in &ranges {
                let (s_chunk, s_rest) = state_rest.split_at_mut(r.end - r.start);
                let (d_chunk, d_rest) =
                    deliv_rest.split_at_mut(inbox_off[r.end] - inbox_off[r.start]);
                state_rest = s_rest;
                deliv_rest = d_rest;
                jobs.push((node_base, s_chunk, d_chunk));
                node_base = r.end;
            }
            jobs.into_par_iter().for_each(|(base, s_chunk, d_chunk)| {
                let mut rest = d_chunk;
                for (i, s) in s_chunk.iter_mut().enumerate() {
                    let v = base + i;
                    let (window, r) = rest.split_at_mut(inbox_off[v + 1] - inbox_off[v]);
                    rest = r;
                    recv(v as u32, s, Inbox { slots: window });
                }
            });
        } else {
            let mut rest = &mut deliv[..];
            for (v, s) in states.iter_mut().enumerate() {
                let (window, r) = rest.split_at_mut(inbox_off[v + 1] - inbox_off[v]);
                rest = r;
                recv(v as u32, s, Inbox { slots: window });
            }
        }
        Ok(rounds)
    }

    /// Scoped phases 2–4: all bookkeeping is reset and laid out over the
    /// active list only, so the cost is O(active + messages) instead of
    /// O(n). Inbox windows appear in active order (source-ascending within
    /// each window, as in the dense path).
    fn deliver_staged_on<S, M>(
        &mut self,
        active: &[u32],
        states: &mut [S],
        stage: &mut Vec<(u32, u32, M)>,
        deliv: &mut Vec<Option<(u32, M)>>,
        recv: &(impl Fn(u32, &mut S, Inbox<'_, M>) + Sync),
    ) -> Result<u64, CongestError>
    where
        M: WireMsg,
    {
        // Stamp the active set (O(1) clear via the epoch bump) and reset
        // this set's per-destination counts. A whole-graph active set (a
        // scoped protocol that happens to span everything, e.g. a top-level
        // flow) skips the stamping: every recipient is trivially active and
        // the dense vectorized reset beats n scattered writes.
        let full = active.len() == self.g.n();
        if full {
            self.arena.cursor[..active.len()].fill(0);
        } else {
            self.arena.active_epoch += 1;
            for &v in active {
                self.arena.active_stamp[v as usize] = self.arena.active_epoch;
                self.arena.cursor[v as usize] = 0;
            }
        }
        let rounds = self.charge_stage(stage, !full)?;
        let arena = &mut self.arena;

        // Scatter positions per active node, in active order.
        let mut off = 0usize;
        for &v in active {
            arena.inbox_off[v as usize] = off;
            off += arena.cursor[v as usize];
        }
        deliv.clear();
        deliv.resize_with(stage.len(), || None);
        for (u, v, m) in stage.drain(..) {
            let p = arena.inbox_off[v as usize];
            arena.inbox_off[v as usize] += 1;
            deliv[p] = Some((u, m));
        }

        // Deliver sequentially over the active windows (they are laid out
        // contiguously in active order).
        let mut rest = &mut deliv[..];
        for (i, &v) in active.iter().enumerate() {
            let (window, r) = rest.split_at_mut(arena.cursor[v as usize]);
            rest = r;
            recv(v, &mut states[i], Inbox { slots: window });
        }
        Ok(rounds)
    }

    /// Execute one superstep.
    ///
    /// * `send(v, &state)` returns the messages node `v` emits as
    ///   `(neighbor, payload)` pairs — sending to a non-neighbor is a model
    ///   violation and returns [`CongestError::NonNeighborSend`] (nothing
    ///   is charged or delivered in that case).
    /// * `recv(v, &mut state, inbox)` consumes the delivered messages as
    ///   `(source, payload)` pairs, ordered by source id.
    ///
    /// Returns the number of rounds charged:
    /// `max(1, max_slot ⌈words(slot)/W⌉)` over physical directed edges.
    pub fn superstep<S, M>(
        &mut self,
        states: &mut [S],
        send: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
        recv: impl Fn(u32, &mut S, Inbox<'_, M>) + Sync,
    ) -> Result<u64, CongestError>
    where
        S: Send + Sync,
        M: WireMsg,
    {
        assert_eq!(
            states.len(),
            self.g.n(),
            "state vector must match node count"
        );
        let mut stage = Vec::new();
        let mut deliv = Vec::new();
        self.stage_sends(states, &send, &mut stage);
        self.deliver_staged(states, &mut stage, &mut deliv, &recv)
    }

    /// Execute one superstep scoped to `active` (sorted, unique node ids).
    ///
    /// States are *positional*: `states[i]` is the state of `active[i]`, so
    /// a protocol over k nodes allocates k states, not n. `send`/`recv` are
    /// evaluated for active nodes only and every message must target an
    /// active node. Charged exactly like [`superstep`](Network::superstep)
    /// with `send` empty outside the active set.
    pub fn superstep_on<S, M>(
        &mut self,
        active: &[u32],
        states: &mut [S],
        send: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
        recv: impl Fn(u32, &mut S, Inbox<'_, M>) + Sync,
    ) -> Result<u64, CongestError>
    where
        S: Send + Sync,
        M: WireMsg,
    {
        assert_eq!(
            states.len(),
            active.len(),
            "positional states must match the active list"
        );
        debug_assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active list must be sorted+unique"
        );
        debug_assert!(active.iter().all(|&v| (v as usize) < self.g.n()));
        let mut stage = Vec::new();
        let mut deliv = Vec::new();
        self.stage_sends_on(active, states, &send, &mut stage);
        self.deliver_staged_on(active, states, &mut stage, &mut deliv, &recv)
    }

    /// Run supersteps until `send` produces no messages anywhere (a
    /// quiescence-driven loop, e.g. flooding). The final silent superstep is
    /// *not* charged. Returns the number of productive supersteps.
    ///
    /// `send` must be a pure function of the state. The staged messages of
    /// the quiescence probe are delivered directly (send is evaluated once
    /// per superstep), and the flat message buffers are reused across the
    /// whole loop.
    pub fn run_until_quiet<S, M>(
        &mut self,
        states: &mut [S],
        send: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
        recv: impl Fn(u32, &mut S, Inbox<'_, M>) + Sync,
        max_supersteps: u64,
    ) -> Result<u64, CongestError>
    where
        S: Send + Sync,
        M: WireMsg,
    {
        assert_eq!(
            states.len(),
            self.g.n(),
            "state vector must match node count"
        );
        let mut steps = 0;
        let mut stage = Vec::new();
        let mut deliv = Vec::new();
        loop {
            assert!(
                steps < max_supersteps,
                "run_until_quiet exceeded {max_supersteps} supersteps"
            );
            self.stage_sends(states, &send, &mut stage);
            if stage.is_empty() {
                return Ok(steps);
            }
            self.deliver_staged(states, &mut stage, &mut deliv, &recv)?;
            steps += 1;
        }
    }

    /// [`run_until_quiet`](Network::run_until_quiet) scoped to `active`
    /// (sorted, unique) with positional states — the quiescence loop for
    /// subproblem-local floods. Cost per superstep is O(active + messages).
    pub fn run_until_quiet_on<S, M>(
        &mut self,
        active: &[u32],
        states: &mut [S],
        send: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
        recv: impl Fn(u32, &mut S, Inbox<'_, M>) + Sync,
        max_supersteps: u64,
    ) -> Result<u64, CongestError>
    where
        S: Send + Sync,
        M: WireMsg,
    {
        assert_eq!(
            states.len(),
            active.len(),
            "positional states must match the active list"
        );
        debug_assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active list must be sorted+unique"
        );
        let mut steps = 0;
        let mut stage = Vec::new();
        let mut deliv = Vec::new();
        loop {
            assert!(
                steps < max_supersteps,
                "run_until_quiet_on exceeded {max_supersteps} supersteps"
            );
            self.stage_sends_on(active, states, &send, &mut stage);
            if stage.is_empty() {
                return Ok(steps);
            }
            self.deliver_staged_on(active, states, &mut stage, &mut deliv, &recv)?;
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::gen::{gnp, path};

    #[derive(Clone, Default)]
    struct FloodState {
        dist: Option<u32>,
        fresh: bool,
    }

    /// Distributed BFS flood; returns (dists, supersteps).
    fn flood(net: &mut Network, src: u32) -> Vec<Option<u32>> {
        let n = net.n();
        let mut states = vec![FloodState::default(); n];
        states[src as usize] = FloodState {
            dist: Some(0),
            fresh: true,
        };
        let g = net.graph().clone();
        net.run_until_quiet(
            &mut states,
            |u, s: &FloodState| {
                if s.fresh {
                    let d = s.dist.unwrap();
                    g.neighbors(u).iter().map(|&v| (v, d + 1)).collect()
                } else {
                    Vec::new()
                }
            },
            |_v, s, inbox| {
                s.fresh = false;
                for (_src, d) in inbox {
                    if s.dist.map_or(true, |cur| d < cur) {
                        s.dist = Some(d);
                        s.fresh = true;
                    }
                }
            },
            10_000,
        )
        .unwrap();
        states.into_iter().map(|s| s.dist).collect()
    }

    #[test]
    fn flood_on_path_costs_diameter_rounds() {
        let g = path(10);
        let mut net = Network::new(g, NetworkConfig::default());
        let dists = flood(&mut net, 0);
        for (v, d) in dists.iter().enumerate() {
            assert_eq!(*d, Some(v as u32));
        }
        // Nine propagation supersteps plus the last node's final echo.
        assert_eq!(net.metrics().rounds, 10);
        assert_eq!(net.metrics().max_edge_words_in_superstep, 1);
    }

    #[test]
    fn big_messages_charge_extra_rounds() {
        let g = path(2);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![0u64; 2];
        let rounds = net
            .superstep(
                &mut states,
                |u, _s| {
                    if u == 0 {
                        vec![(1u32, vec![7u32; 5])] // one 5-word message
                    } else {
                        Vec::new()
                    }
                },
                |_v, s, inbox| {
                    if let Some((_, payload)) = inbox.first() {
                        *s = payload.len() as u64;
                    }
                },
            )
            .unwrap();
        assert_eq!(rounds, 5);
        assert_eq!(states[1], 5);
        assert_eq!(net.metrics().words, 5);
    }

    #[test]
    fn wider_bandwidth_reduces_rounds() {
        let g = path(2);
        let cfg = NetworkConfig {
            bandwidth_words: 4,
            ..Default::default()
        };
        let mut net = Network::new(g, cfg);
        let mut states = vec![(); 2];
        let rounds = net
            .superstep(
                &mut states,
                |u, _s| {
                    if u == 0 {
                        vec![(1u32, vec![0u32; 8])]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(rounds, 2); // ⌈8/4⌉
    }

    #[test]
    fn both_directions_accounted_separately() {
        let g = path(2);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![(); 2];
        // One word each way in the same superstep: full-duplex, 1 round.
        let rounds = net
            .superstep(
                &mut states,
                |u, _s| vec![(1 - u, 1u32)],
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(rounds, 1);
    }

    #[test]
    fn sending_to_non_neighbor_errors() {
        let g = path(3); // 0-1-2: 0 and 2 not adjacent
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![(); 3];
        let err = net
            .superstep(
                &mut states,
                |u, _s| {
                    if u == 0 {
                        vec![(2u32, 1u32)]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap_err();
        assert_eq!(err, CongestError::NonNeighborSend { from: 0, to: 2 });
        // A failed superstep charges nothing.
        assert_eq!(net.metrics().rounds, 0);
        assert_eq!(net.metrics().supersteps, 0);
    }

    #[test]
    fn inbox_sorted_by_source() {
        let g = twgraph::UGraph::from_edges(4, [(3, 0), (3, 1), (3, 2)]);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states: Vec<Vec<u32>> = vec![Vec::new(); 4];
        net.superstep(
            &mut states,
            |u, _s| if u != 3 { vec![(3u32, u)] } else { Vec::new() },
            |v, s, inbox| {
                if v == 3 {
                    *s = inbox.iter().map(|&(src, _)| src).collect();
                }
            },
        )
        .unwrap();
        assert_eq!(states[3], vec![0, 1, 2]);
    }

    #[test]
    fn uids_unique() {
        let g = path(100);
        let net = Network::new(g, NetworkConfig::default());
        let mut ids: Vec<u64> = (0..100).map(|v| net.uid(v)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn charged_rounds_tracked() {
        let g = path(2);
        let mut net = Network::new(g, NetworkConfig::default());
        net.charge_rounds(7);
        assert_eq!(net.metrics().rounds, 7);
        assert_eq!(net.metrics().charged_rounds, 7);
    }

    #[test]
    fn virtual_local_edges_are_free() {
        // Physical: 0-1. Virtual: 4 nodes, host v/2; local virtual edges
        // (0,1) and (2,3) must not be charged.
        let phys = path(2);
        let virt = twgraph::UGraph::from_edges(4, [(0, 1), (2, 3), (0, 2)]);
        let proj = crate::EdgeProjection::from_hosts(&virt, &phys, |v| v / 2).unwrap();
        let mut net = Network::with_projection(virt, proj, NetworkConfig::default());
        let mut states = vec![(); 4];
        // Heavy local chatter + one physical word: still 1 round.
        let rounds = net
            .superstep(
                &mut states,
                |u, _s| match u {
                    0 => vec![(1u32, vec![9u32; 100]), (2u32, vec![1u32; 1])],
                    3 => vec![(2u32, vec![9u32; 50])],
                    _ => Vec::new(),
                },
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(net.metrics().words, 1); // only the physical word counted
    }

    #[test]
    fn arena_state_clean_between_supersteps() {
        // Two different traffic patterns back to back must account
        // independently (the touched-slot reset works).
        let g = path(3);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![(); 3];
        let r1 = net
            .superstep(
                &mut states,
                |u, _s| {
                    if u == 0 {
                        vec![(1u32, vec![1u32; 4])]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(r1, 4);
        let r2 = net
            .superstep(
                &mut states,
                |u, _s| {
                    if u == 2 {
                        vec![(1u32, 1u32)]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(r2, 1);
        assert_eq!(net.metrics().words, 5);
        assert_eq!(net.metrics().max_edge_words_in_superstep, 4);
    }

    #[test]
    fn parallel_path_handles_zero_edges() {
        // Regression: a graph with no edges (gnp with p = 0) must not
        // panic in the edge-partitioned parallel send/recv path.
        let g = gnp(64, 0.0, 9);
        assert_eq!(g.m(), 0);
        let cfg = NetworkConfig {
            parallel_threshold: 1, // force the parallel path
            ..Default::default()
        };
        let mut net = Network::new(g, cfg);
        let mut states = vec![0u32; 64];
        let rounds = net
            .superstep(
                &mut states,
                |_u, _s| Vec::<(u32, u32)>::new(),
                |_v, s, inbox| *s = inbox.len() as u32,
            )
            .unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(net.metrics().messages, 0);
        assert!(states.iter().all(|&c| c == 0));
    }

    #[test]
    fn parallel_path_handles_isolated_vertices() {
        // Isolated vertices next to an active component, through the
        // parallel path: delivery windows must line up.
        let mut g = twgraph::UGraphBuilder::new(40);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let g = g.build();
        let cfg = NetworkConfig {
            parallel_threshold: 1,
            ..Default::default()
        };
        let mut net = Network::new(g, cfg);
        let dists = flood(&mut net, 0);
        assert_eq!(dists[1], Some(1));
        assert_eq!(dists[2], Some(2));
        assert!(dists[3..].iter().all(Option::is_none));
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        let g = twgraph::gen::gnp(96, 0.08, 5);
        let run = |threshold: usize| {
            let cfg = NetworkConfig {
                parallel_threshold: threshold,
                ..Default::default()
            };
            let mut net = Network::new(g.clone(), cfg);
            let dists = flood(&mut net, 0);
            (dists, *net.metrics())
        };
        let (d_seq, m_seq) = run(usize::MAX);
        let (d_par, m_par) = run(1);
        assert_eq!(d_seq, d_par);
        assert_eq!(m_seq, m_par);
    }

    #[test]
    fn phase_snapshots_partition_the_totals() {
        let g = path(12);
        let mut net = Network::new(g, NetworkConfig::default());
        flood(&mut net, 0);
        let p1 = net.snapshot("flood-a");
        flood(&mut net, 11);
        net.charge_rounds(3);
        let p2 = net.snapshot("flood-b");
        assert_eq!(net.phase_log().len(), 2);
        assert_eq!(p1.rounds + p2.rounds, net.metrics().rounds);
        assert_eq!(p1.words + p2.words, net.metrics().words);
        assert_eq!(p2.charged_rounds, 3);
        assert!(p1.max_edge_words_in_superstep >= 1);
    }

    #[test]
    fn accounting_recovers_from_violation_error() {
        // A rejected superstep must not leave dirty slot loads behind (the
        // arena is reused, unlike the seed's fresh buffers).
        let g = path(3);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![(); 3];
        let err = net.superstep(
            &mut states,
            // Node 0 charges a legal 7-word message first, then node 2
            // violates the model — the error lands mid-accounting.
            |u, _s| match u {
                0 => vec![(1u32, vec![1u32; 7])],
                1 => vec![(0u32, vec![2u32; 3]), (2, vec![2u32; 3])],
                _ => vec![(0u32, vec![3u32; 5])], // 2 → 0: non-neighbor
            },
            |_v, _s, _inbox| {},
        );
        assert!(err.is_err());
        // A clean one-word superstep afterwards must charge exactly 1 round
        // and 1 word on top of nothing.
        let mut states = vec![(); 3];
        let rounds = net
            .superstep(
                &mut states,
                |u, _s| {
                    if u == 0 {
                        vec![(1u32, 1u32)]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(net.metrics().words, 1);
        assert_eq!(net.metrics().max_edge_words_in_superstep, 1);
    }

    /// Scoped flood over a sub-path, positional states.
    fn scoped_flood(net: &mut Network, active: &[u32], src: u32) -> Vec<Option<u32>> {
        let g = net.graph().clone();
        let pos_of = |v: u32| active.binary_search(&v).unwrap();
        let mut states = vec![FloodState::default(); active.len()];
        states[pos_of(src)] = FloodState {
            dist: Some(0),
            fresh: true,
        };
        let active_ref = active;
        net.run_until_quiet_on(
            active,
            &mut states,
            |u, s: &FloodState| {
                if s.fresh {
                    let d = s.dist.unwrap();
                    g.neighbors(u)
                        .iter()
                        .copied()
                        .filter(|v| active_ref.binary_search(v).is_ok())
                        .map(|v| (v, d + 1))
                        .collect()
                } else {
                    Vec::new()
                }
            },
            |_v, s, inbox| {
                s.fresh = false;
                for (_src, d) in inbox {
                    if s.dist.map_or(true, |cur| d < cur) {
                        s.dist = Some(d);
                        s.fresh = true;
                    }
                }
            },
            10_000,
        )
        .unwrap();
        states.into_iter().map(|s| s.dist).collect()
    }

    #[test]
    fn scoped_superstep_charges_like_dense() {
        // The same restricted flood, dense (send empty outside the set)
        // versus scoped: identical metrics, identical results.
        let g = path(64);
        let active: Vec<u32> = (8..24).collect();

        let mut dense = Network::new(g.clone(), NetworkConfig::default());
        let mut states = vec![FloodState::default(); 64];
        states[8] = FloodState {
            dist: Some(0),
            fresh: true,
        };
        let ga = g.clone();
        let active_ref = &active;
        dense
            .run_until_quiet(
                &mut states,
                |u, s: &FloodState| {
                    if s.fresh && active_ref.binary_search(&u).is_ok() {
                        let d = s.dist.unwrap();
                        ga.neighbors(u)
                            .iter()
                            .copied()
                            .filter(|v| active_ref.binary_search(v).is_ok())
                            .map(|v| (v, d + 1))
                            .collect()
                    } else {
                        Vec::new()
                    }
                },
                |_v, s, inbox| {
                    s.fresh = false;
                    for (_src, d) in inbox {
                        if s.dist.map_or(true, |cur| d < cur) {
                            s.dist = Some(d);
                            s.fresh = true;
                        }
                    }
                },
                10_000,
            )
            .unwrap();

        let mut scoped = Network::new(g, NetworkConfig::default());
        let got = scoped_flood(&mut scoped, &active, 8);

        assert_eq!(*dense.metrics(), *scoped.metrics());
        for (i, &v) in active.iter().enumerate() {
            assert_eq!(got[i], states[v as usize].dist, "node {v}");
        }
    }

    #[test]
    fn scoped_superstep_rejects_outside_recipient() {
        let g = path(4);
        let mut net = Network::new(g, NetworkConfig::default());
        let active = [1u32, 2];
        let mut states = vec![(); 2];
        let err = net
            .superstep_on(
                &active,
                &mut states,
                |u, _s| {
                    if u == 1 {
                        vec![(0u32, 1u32)]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap_err();
        assert_eq!(err, CongestError::InactiveRecipient { from: 1, to: 0 });
        // Nothing charged; a later clean scoped superstep works.
        assert_eq!(net.metrics().supersteps, 0);
        let rounds = net
            .superstep_on(
                &active,
                &mut states,
                |u, _s| {
                    if u == 1 {
                        vec![(2u32, 1u32)]
                    } else {
                        Vec::new()
                    }
                },
                |_v, _s, _inbox| {},
            )
            .unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(net.metrics().words, 1);
    }

    #[test]
    fn scoped_inbox_windows_line_up() {
        // Star into node 5, scoped to {1, 3, 5}: node 5's window sees both
        // messages sorted by source; the others see empty windows.
        let g = twgraph::UGraph::from_edges(6, [(1, 5), (3, 5), (0, 5)]);
        let mut net = Network::new(g, NetworkConfig::default());
        let active = [1u32, 3, 5];
        let mut states: Vec<Vec<u32>> = vec![Vec::new(); 3];
        net.superstep_on(
            &active,
            &mut states,
            |u, _s| if u != 5 { vec![(5u32, u)] } else { Vec::new() },
            |v, s, inbox| {
                if v == 5 {
                    *s = inbox.iter().map(|&(src, _)| src).collect();
                } else {
                    assert!(inbox.is_empty());
                }
            },
        )
        .unwrap();
        assert_eq!(states[2], vec![1, 3]);
    }

    #[test]
    fn scoped_then_dense_then_scoped_bookkeeping_clean() {
        // Interleave scoped and dense supersteps with different active
        // sets: stale cursor entries must never leak into a later layout.
        let g = path(8);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let d1 = scoped_flood(&mut net, &[0, 1, 2], 0);
        assert_eq!(d1, vec![Some(0), Some(1), Some(2)]);
        let full = flood(&mut net, 0);
        assert_eq!(full[7], Some(7));
        let d2 = scoped_flood(&mut net, &[4, 5, 6, 7], 6);
        assert_eq!(d2, vec![Some(2), Some(1), Some(0), Some(1)]);
    }

    #[test]
    fn balanced_ranges_cover_and_balance() {
        // Uniform weights: every chunk within a factor 2 of ideal.
        let prefix = |i: usize| i as u64;
        let ranges = balanced_ranges(100, 4, prefix);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 100);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            assert!(r.len() >= 13 && r.len() <= 50, "unbalanced: {r:?}");
        }
        // Degenerate cases.
        assert_eq!(balanced_ranges(10, 4, |_| 0), vec![0..10]);
        assert_eq!(balanced_ranges(0, 4, |_| 0), vec![0..0]);
    }
}
