//! # lab — the declarative, spec-driven experiment harness
//!
//! The six ad-hoc bench bins of earlier revisions are now one pipeline:
//!
//! ```text
//! experiments/*.toml ──parse──▶ ExperimentSpec ──plan──▶ [Trial]
//!        (spec)                    (spec.rs)            (plan.rs)
//!                                                           │ run
//!                                                           ▼
//! BENCH_<name>.json ◀──bless── LabReport { schema_version, host,
//!     (baseline)               profile, rows: Vec<TrialRow> }
//!        │                                (results.rs, runner.rs)
//!        └──────────── gate ◀── candidate run ──────────────┘
//!                    (gate.rs: det exact, wall ±20%)
//! ```
//!
//! * [`toml`] — span-tracking parser for the spec subset.
//! * [`spec`] — typed specs validated against the live scenario/pipeline
//!   registries; errors carry `file:line:col`.
//! * [`plan`] — cross-product expansion into the trial grid.
//! * [`runner`] — executes trials through [`crate::drivers`].
//! * [`results`] — the versioned [`results::LabReport`] table.
//! * [`gate`] — the CI regression gate.

pub mod gate;
pub mod plan;
pub mod results;
pub mod runner;
pub mod spec;
pub mod toml;
