//! Epoch-versioned serving: queries keep flowing while the next label
//! store compacts.
//!
//! A [`VersionedEngine`] holds the current [`Epoch`] — a
//! [`QueryEngine`] stamped with a monotone epoch number — behind an
//! `RwLock<Arc<_>>`. Readers take a [`snapshot`](VersionedEngine::snapshot)
//! (an `Arc` clone under a momentary read lock) and answer queries off it
//! for as long as they like; a writer prepares the next store *outside*
//! any lock and [`publish`](VersionedEngine::publish)es it with a single
//! pointer swap. A reader therefore always observes a complete store:
//! either all of epoch N or all of epoch N+1, never a mix — and there is
//! no instant at which queries cannot be served.
//!
//! Epoch-to-epoch work is confined to what actually changed:
//! [`publish_from`](VersionedEngine::publish_from) recompacts only the
//! shards containing a dirty vertex ([`LabelStore::rebuilt`] shares every
//! clean shard's arena via `Arc`) and carries cached hot pairs forward
//! when both endpoints live in clean shards — distances between untouched
//! parts are provably unchanged, so warm cache entries stay exact.

use crate::engine::{relock, QueryEngine, ServeConfig};
use crate::error::ServeError;
use crate::store::LabelStore;
use distlabel::DynamicLabeling;
use std::sync::{Arc, RwLock};
use std::time::Instant;
use twgraph::Dist;

/// One published version of the store: an engine plus its epoch stamp.
pub struct Epoch {
    epoch: u64,
    engine: QueryEngine,
}

impl Epoch {
    /// The monotone version number (0 for the initial build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch's query engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Exact `d(s → t)` at this epoch.
    pub fn distance(&self, s: u32, t: u32) -> Result<Dist, ServeError> {
        self.engine.distance(s, t)
    }
}

/// What one publish did.
#[derive(Clone, Copy, Debug, Default)]
pub struct PublishStats {
    /// The epoch that became current.
    pub epoch: u64,
    /// Wall time of store rebuild + cache carry + swap, in microseconds.
    /// (Queries were served off the previous epoch throughout.)
    pub publish_us: u64,
    /// Shards recompacted for this epoch.
    pub dirty_shards: usize,
    /// Total shards in the store.
    pub total_shards: usize,
    /// Hot-pair cache entries carried over from the previous epoch.
    pub carried_pairs: usize,
}

/// An epoch-versioned [`QueryEngine`]: swap-published snapshots with
/// uninterrupted reads.
pub struct VersionedEngine {
    current: RwLock<Arc<Epoch>>,
    cfg: ServeConfig,
}

/// Compact a [`DynamicLabeling`]'s parts into a store (global hub ids come
/// from the labeling itself), honoring the config's sharding and layout.
fn store_of(labeling: &DynamicLabeling, cfg: &ServeConfig) -> Result<LabelStore, ServeError> {
    let mut b = crate::store::StoreBuilder::new(labeling.n());
    for part in labeling.parts() {
        if part.n() == 1 {
            b.add_singleton(part.old_of()[0])?;
        } else {
            b.add_component(part.labels(), part.old_of())?;
        }
    }
    b.build_layout(cfg.shard_size, cfg.layout)
}

impl VersionedEngine {
    /// Version an already-compacted store as epoch 0.
    pub fn new(store: LabelStore, cfg: ServeConfig) -> Self {
        VersionedEngine {
            current: RwLock::new(Arc::new(Epoch {
                epoch: 0,
                engine: QueryEngine::new(store, cfg),
            })),
            cfg,
        }
    }

    /// Compact a dynamic labeling and serve it as epoch 0 (in the
    /// config's [`crate::store::StoreLayout`]).
    pub fn from_labeling(labeling: &DynamicLabeling, cfg: ServeConfig) -> Result<Self, ServeError> {
        Ok(VersionedEngine::new(store_of(labeling, &cfg)?, cfg))
    }

    /// The serving configuration (shared by every epoch).
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Pin the current epoch. The returned `Arc` keeps that version alive
    /// and serving regardless of later publishes.
    pub fn snapshot(&self) -> Arc<Epoch> {
        Arc::clone(&relock_read(&self.current))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        relock_read(&self.current).epoch
    }

    /// Convenience single query against the current epoch.
    pub fn distance(&self, s: u32, t: u32) -> Result<Dist, ServeError> {
        self.snapshot().engine.distance(s, t)
    }

    /// Convenience batch against the current epoch (one snapshot for the
    /// whole batch, so the answers are mutually consistent).
    pub fn batch(&self, queries: &[(u32, u32)]) -> Result<Vec<Dist>, ServeError> {
        self.snapshot().engine.batch(queries)
    }

    /// Publish a fully rebuilt store as the next epoch (no cache carry).
    pub fn publish(&self, store: LabelStore) -> PublishStats {
        let t = Instant::now();
        let total_shards = store.shard_count();
        let mut cur = relock_write(&self.current);
        let epoch = cur.epoch + 1;
        *cur = Arc::new(Epoch {
            epoch,
            engine: QueryEngine::new(store, self.cfg),
        });
        PublishStats {
            epoch,
            publish_us: t.elapsed().as_micros() as u64,
            dirty_shards: total_shards,
            total_shards,
            carried_pairs: 0,
        }
    }

    /// Publish the next epoch from an updated labeling: recompact only the
    /// shards containing a vertex of `dirty` (sorted global ids — a
    /// [`distlabel::UpdateReport::dirty`] list), share every clean shard
    /// with the current epoch, and carry hot cache pairs whose endpoints
    /// both live in clean shards. The store rebuild runs outside any lock;
    /// in-flight snapshots keep answering at their epoch throughout.
    pub fn publish_from(
        &self,
        labeling: &DynamicLabeling,
        dirty: &[u32],
    ) -> Result<PublishStats, ServeError> {
        let t = Instant::now();
        let prev = self.snapshot();
        let old_store = prev.engine.store();
        let store = old_store.rebuilt(dirty, labeling.comp_of().to_vec(), |v| {
            labeling.label_entries_global(v)
        })?;
        let dirty_shards = (0..store.shard_count())
            .filter(|&s| !old_store.shard_clean(s, dirty))
            .count();
        let total_shards = store.shard_count();
        let engine = QueryEngine::new(store, self.cfg);
        let mut carried = 0usize;
        if self.cfg.cache_capacity > 0 {
            for (s, old_cache) in prev.engine.caches.iter().enumerate() {
                if !old_store.shard_clean(s, dirty) {
                    continue;
                }
                let old_cache = relock(old_cache);
                let mut new_cache = relock(&engine.caches[s]);
                for (&(a, b), &d) in old_cache.iter() {
                    if old_store.shard_clean(old_store.shard_of(b), dirty) {
                        new_cache.insert((a, b), d);
                        carried += 1;
                    }
                }
            }
        }
        let mut cur = relock_write(&self.current);
        let epoch = cur.epoch + 1;
        *cur = Arc::new(Epoch { epoch, engine });
        Ok(PublishStats {
            epoch,
            publish_us: t.elapsed().as_micros() as u64,
            dirty_shards,
            total_shards,
            carried_pairs: carried,
        })
    }
}

/// Read-lock recovery twin of [`relock`]: a panicking publisher leaves the
/// previous (complete) epoch in place, so the state is always valid.
fn relock_read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-lock recovery twin of [`relock`].
fn relock_write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::gen::{banded_path, with_random_weights};
    use twgraph::{EdgeBatch, INF};

    use crate::store::StoreLayout;

    fn versioned_layout(n: usize, layout: StoreLayout) -> (DynamicLabeling, VersionedEngine) {
        let g = banded_path(n, 2);
        let inst = with_random_weights(&g, 10, 3);
        let labeling = DynamicLabeling::build(&inst, 3, 1).unwrap();
        let cfg = ServeConfig {
            shard_size: (n / 8).max(1),
            cache_capacity: 64,
            layout,
        };
        let eng = VersionedEngine::from_labeling(&labeling, cfg).unwrap();
        (labeling, eng)
    }

    fn versioned(n: usize) -> (DynamicLabeling, VersionedEngine) {
        versioned_layout(n, StoreLayout::Flat)
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let (mut labeling, eng) = versioned(120);
        assert_eq!(eng.epoch(), 0);
        let before = eng.snapshot();
        let d_before = before.distance(0, 119).unwrap();

        // Delete an edge on the 0–119 route and publish.
        let rep = labeling.apply(&EdgeBatch::new().delete(0, 1)).unwrap();
        let stats = eng.publish_from(&labeling, &rep.dirty).unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(eng.epoch(), 1);

        // The pinned snapshot still answers the old value; the current
        // epoch answers the new one.
        assert_eq!(before.distance(0, 119).unwrap(), d_before);
        assert_eq!(before.epoch(), 0);
        let now = eng.snapshot();
        assert_eq!(now.epoch(), 1);
        assert_eq!(
            now.distance(0, 119).unwrap(),
            labeling.distance(0, 119),
            "current epoch must match the updated labeling"
        );
    }

    #[test]
    fn partial_publish_shares_clean_shards() {
        let (mut labeling, eng) = versioned(240);
        let before = eng.snapshot();
        // A scoped edit near one end dirties a bounded vertex range.
        let rep = labeling.apply(&EdgeBatch::new().insert(2, 4, 1)).unwrap();
        let stats = eng.publish_from(&labeling, &rep.dirty).unwrap();
        assert!(
            stats.dirty_shards < stats.total_shards,
            "scoped update must leave clean shards: {stats:?}"
        );
        let shared = eng
            .snapshot()
            .engine()
            .store()
            .shards_shared_with(before.engine().store());
        assert_eq!(shared, stats.total_shards - stats.dirty_shards);
    }

    #[test]
    fn cache_carry_is_confined_to_clean_shards() {
        let (mut labeling, eng) = versioned(240);
        // Warm the epoch-0 cache at both ends of the path.
        for _ in 0..4 {
            eng.distance(200, 239).unwrap();
            eng.distance(3, 5).unwrap();
        }
        let rep = labeling.apply(&EdgeBatch::new().insert(2, 4, 1)).unwrap();
        let stats = eng.publish_from(&labeling, &rep.dirty).unwrap();
        assert!(stats.carried_pairs >= 1, "clean hot pair must carry over");
        let snap = eng.snapshot();
        // Carried entries answer exactly (cache hit or not).
        assert_eq!(
            snap.distance(200, 239).unwrap(),
            labeling.distance(200, 239)
        );
        assert_eq!(snap.distance(3, 5).unwrap(), labeling.distance(3, 5));
    }

    /// Regression (issue 7): ids ≥ n must come back as typed errors —
    /// never a panic or index — through the versioned single, batch, and
    /// pinned-snapshot paths, on the `s` and the `t` side alike.
    #[test]
    fn out_of_range_ids_reject_through_versioned_serving() {
        let (_labeling, eng) = versioned(60);
        let reject = |s, t, bad| {
            assert_eq!(
                eng.distance(s, t),
                Err(ServeError::UnknownNode { node: bad, n: 60 })
            );
        };
        reject(60, 0, 60);
        reject(0, 60, 60);
        reject(u32::MAX, 0, u32::MAX);
        reject(0, u32::MAX, u32::MAX);
        assert_eq!(
            eng.batch(&[(0, 1), (1, 61)]).unwrap_err(),
            ServeError::UnknownNode { node: 61, n: 60 }
        );
        let snap = eng.snapshot();
        assert_eq!(
            snap.distance(0, 60),
            Err(ServeError::UnknownNode { node: 60, n: 60 })
        );
        assert!(eng.distance(0, 59).is_ok(), "valid pairs still serve");
    }

    #[test]
    fn cross_component_inf_tracks_publishes() {
        // Both layouts: the packed store must track splits and merges —
        // including the epoch's component *count*, which must follow the
        // distinct ids of the published map (issue 8: a merge leaving a
        // non-dense id space used to be overcounted as `max + 1`).
        for layout in [StoreLayout::Flat, StoreLayout::Packed] {
            let (mut labeling, eng) = versioned_layout(60, layout);
            assert!(eng.distance(0, 59).unwrap() < INF);
            let store_components =
                |eng: &VersionedEngine| eng.snapshot().engine().store().components();
            let before_split = store_components(&eng);
            // Bandwidth 2: cutting 29|30 means severing all three crossing
            // edges.
            let cut = EdgeBatch::new()
                .delete(28, 30)
                .delete(29, 30)
                .delete(29, 31);
            let rep = labeling.apply(&cut).unwrap();
            eng.publish_from(&labeling, &rep.dirty).unwrap();
            assert_eq!(eng.distance(0, 59).unwrap(), INF, "split must serve INF");
            assert_eq!(
                store_components(&eng),
                before_split + 1,
                "split adds exactly one component"
            );
            let rep = labeling.apply(&EdgeBatch::new().insert(29, 30, 2)).unwrap();
            eng.publish_from(&labeling, &rep.dirty).unwrap();
            assert!(eng.distance(0, 59).unwrap() < INF, "merge must reconnect");
            assert_eq!(
                store_components(&eng),
                before_split,
                "merge-then-query: count distinct ids, not max + 1"
            );
        }
    }
}
