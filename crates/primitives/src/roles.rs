//! Per-part tree roles: the structure both flow engines run on.
//!
//! A [`TreeRoles`] records, for every node and every part it participates
//! in, the node's parent and children within that part's tree. The tree's
//! edges must be communication-graph edges (the flow engines send messages
//! along them). Roles come from two sources:
//!
//! * part BFS trees ([`crate::bfs::part_bfs_trees`]) — the paper's RST task;
//! * Steiner subtrees of the global BFS tree ([`crate::pa::steiner_roles`])
//!   — the tree-restricted shortcut substitute (DESIGN.md §4.1). There,
//!   *relay* nodes that lie on the Steiner tree without belonging to the
//!   part also get a role, flagged [`Role::relay`].

/// One part's tree as `(part, entries)` where each entry is
/// `(node, parent, relay)` and `parent == node` marks the root — the input
/// unit of [`TreeRoles::from_parent_maps`].
pub type ParentMap = (u32, Vec<(u32, u32, bool)>);

/// One node's role in one part's tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Role {
    /// The part id.
    pub part: u32,
    /// Parent node within the part tree (self = root of this part's tree).
    pub parent: u32,
    /// Children within the part tree.
    pub children: Vec<u32>,
    /// True if the node only forwards for this part (Steiner relay) and
    /// contributes no value of its own.
    pub relay: bool,
}

/// Role lists per node.
#[derive(Clone, Debug, Default)]
pub struct TreeRoles {
    /// `roles[v]` = the roles of node `v`, sorted by part id.
    pub roles: Vec<Vec<Role>>,
    /// Sorted list of the nodes that hold at least one role — the active
    /// set a flow over these trees ever touches. Maintained by the
    /// constructors so flows can scope their supersteps without an O(n)
    /// scan per invocation.
    pub nodes: Vec<u32>,
}

impl TreeRoles {
    /// Empty role set over `n` nodes.
    pub fn new(n: usize) -> Self {
        TreeRoles {
            roles: vec![Vec::new(); n],
            nodes: Vec::new(),
        }
    }

    /// Build from per-part parent maps: for each part, a list of
    /// `(node, parent, relay)` entries (`parent == node` marks the root).
    pub fn from_parent_maps(
        n: usize,
        parts: impl IntoIterator<Item = (u32, Vec<(u32, u32, bool)>)>,
    ) -> Self {
        let mut tr = TreeRoles::new(n);
        for (part, entries) in parts {
            for &(node, parent, relay) in &entries {
                if tr.roles[node as usize].is_empty() {
                    tr.nodes.push(node);
                }
                tr.roles[node as usize].push(Role {
                    part,
                    parent,
                    children: Vec::new(),
                    relay,
                });
            }
            // Fill children.
            for &(node, parent, _) in &entries {
                if parent != node {
                    let r = tr.roles[parent as usize]
                        .iter_mut()
                        .rev()
                        .find(|r| r.part == part)
                        .expect("parent must have a role in the same part");
                    r.children.push(node);
                }
            }
        }
        tr.nodes.sort_unstable();
        for list in &mut tr.roles {
            list.sort_by_key(|r| r.part);
            for r in list.iter_mut() {
                r.children.sort_unstable();
            }
        }
        tr
    }

    /// Find node `v`'s role in `part`.
    #[inline]
    pub fn role_of(&self, v: u32, part: u32) -> Option<&Role> {
        let list = &self.roles[v as usize];
        list.binary_search_by_key(&part, |r| r.part)
            .ok()
            .map(|i| &list[i])
    }

    /// The root node of each part present (part → root), as pairs.
    pub fn roots(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (v, list) in self.roles.iter().enumerate() {
            for r in list {
                if r.parent == v as u32 {
                    out.push((r.part, v as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Validate the structural invariants: parent/child symmetry, exactly
    /// one root per part, acyclicity. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut roots: HashMap<u32, u32> = HashMap::new();
        for (v, list) in self.roles.iter().enumerate() {
            for r in list {
                if r.parent == v as u32 {
                    if let Some(prev) = roots.insert(r.part, v as u32) {
                        return Err(format!("part {} has roots {} and {}", r.part, prev, v));
                    }
                } else {
                    let pr = self.role_of(r.parent, r.part).ok_or_else(|| {
                        format!("parent {} lacks role in part {}", r.parent, r.part)
                    })?;
                    if !pr.children.contains(&(v as u32)) {
                        return Err(format!(
                            "part {}: node {} not in parent {}'s child list",
                            r.part, v, r.parent
                        ));
                    }
                }
            }
        }
        // Acyclicity: walk up from every role; bounded by n steps.
        let n = self.roles.len();
        for (v, list) in self.roles.iter().enumerate() {
            for r in list {
                let mut cur = v as u32;
                for _ in 0..=n {
                    let role = self.role_of(cur, r.part).unwrap();
                    if role.parent == cur {
                        break;
                    }
                    cur = role.parent;
                }
                let role = self.role_of(cur, r.part).unwrap();
                if role.parent != cur {
                    return Err(format!(
                        "cycle in part {} reachable from node {}",
                        r.part, v
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        // Part 0: star 0<-1, 0<-2. Part 1: chain 2<-3.
        let tr = TreeRoles::from_parent_maps(
            4,
            [
                (0u32, vec![(0, 0, false), (1, 0, false), (2, 0, true)]),
                (1u32, vec![(2, 2, false), (3, 2, false)]),
            ],
        );
        assert!(tr.validate().is_ok());
        assert_eq!(tr.roots(), vec![(0, 0), (1, 2)]);
        let r = tr.role_of(0, 0).unwrap();
        assert_eq!(r.children, vec![1, 2]);
        assert!(tr.role_of(2, 0).unwrap().relay);
        assert!(tr.role_of(1, 1).is_none());
    }

    #[test]
    fn validate_rejects_two_roots() {
        let tr = TreeRoles::from_parent_maps(2, [(0u32, vec![(0, 0, false), (1, 1, false)])]);
        assert!(tr.validate().unwrap_err().contains("roots"));
    }

    #[test]
    #[should_panic(expected = "parent must have a role")]
    fn build_rejects_orphan_parent() {
        let _ = TreeRoles::from_parent_maps(3, [(0u32, vec![(1, 2, false)])]);
    }
}
