//! The graph families themselves.
//!
//! All seeded families draw their randomness through
//! [`derive_rng`](super::derive_rng) — see the seed-derivation rule in the
//! [module docs](super).

use super::derive_rng;
use crate::ugraph::{UGraph, UGraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Path on `n` vertices (treewidth 1, diameter n−1).
pub fn path(n: usize) -> UGraph {
    assert!(n >= 1);
    UGraph::from_edges(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
}

/// Cycle on `n ≥ 3` vertices (treewidth 2, diameter ⌊n/2⌋).
pub fn cycle(n: usize) -> UGraph {
    assert!(n >= 3);
    UGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// `rows × cols` grid (treewidth min(rows, cols), diameter rows+cols−2).
pub fn grid(rows: usize, cols: usize) -> UGraph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = UGraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// The `k`-banded path: vertices 0..n, edge {i, j} iff |i−j| ≤ k.
/// Treewidth exactly k (for n ≥ k+1), diameter ⌈(n−1)/k⌉ — the family the
/// D-scaling experiments use, since D = Θ(n/k) can be made large at fixed τ.
pub fn banded_path(n: usize, k: usize) -> UGraph {
    assert!(k >= 1);
    let mut b = UGraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..(i + k + 1).min(n) {
            b.add_edge(i as u32, j as u32);
        }
    }
    b.build()
}

/// Random `k`-tree on `n ≥ k+1` vertices: start from a (k+1)-clique and
/// attach each new vertex to a uniformly random existing k-clique.
/// Treewidth is exactly k (for n ≥ k+2); diameter is typically Θ(log n).
pub fn ktree(n: usize, k: usize, seed: u64) -> UGraph {
    assert!(n > k, "ktree needs n ≥ k+1");
    let mut rng = derive_rng("ktree", &[n as u64, k as u64], seed);
    let mut b = UGraphBuilder::new(n);
    // Seed clique.
    for i in 0..=k {
        for j in i + 1..=k {
            b.add_edge(i as u32, j as u32);
        }
    }
    // All k-subsets of the seed clique are attachment cliques.
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let seed_vertices: Vec<u32> = (0..=k as u32).collect();
    for skip in 0..=k {
        let mut c = seed_vertices.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let attach = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &attach {
            b.add_edge(v as u32, u);
        }
        // New k-cliques: v plus each (k−1)-subset of `attach`.
        for skip in 0..attach.len() {
            let mut c = attach.clone();
            c[skip] = v as u32;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    b.build()
}

/// Random connected partial `k`-tree: a [`ktree`] with each non-backbone
/// edge kept independently with probability `keep_prob`. The attachment
/// backbone (one edge per added vertex, plus a seed-clique spanning path)
/// is always kept, so the result is connected. Treewidth ≤ k.
pub fn partial_ktree(n: usize, k: usize, keep_prob: f64, seed: u64) -> UGraph {
    assert!((0.0..=1.0).contains(&keep_prob));
    assert!(n > k);
    let mut rng = derive_rng(
        "partial_ktree",
        &[n as u64, k as u64, keep_prob.to_bits()],
        seed,
    );
    let mut b = UGraphBuilder::new(n);
    for i in 0..k {
        b.add_edge(i as u32, i as u32 + 1); // spanning path through the seed clique
    }
    for i in 0..=k {
        for j in i + 1..=k {
            if j != i + 1 && rng.gen_bool(keep_prob) {
                b.add_edge(i as u32, j as u32);
            }
        }
    }
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let seed_vertices: Vec<u32> = (0..=k as u32).collect();
    for skip in 0..=k {
        let mut c = seed_vertices.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let attach = cliques[rng.gen_range(0..cliques.len())].clone();
        // Keep one backbone edge unconditionally for connectivity.
        let backbone = *attach.choose(&mut rng).unwrap();
        b.add_edge(v as u32, backbone);
        for &u in &attach {
            if u != backbone && rng.gen_bool(keep_prob) {
                b.add_edge(v as u32, u);
            }
        }
        for skip in 0..attach.len() {
            let mut c = attach.clone();
            c[skip] = v as u32;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    b.build()
}

/// Uniform random recursive tree on `n` vertices (treewidth 1).
pub fn random_tree(n: usize, seed: u64) -> UGraph {
    assert!(n >= 1);
    let mut rng = derive_rng("random_tree", &[n as u64], seed);
    let mut b = UGraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_edge(v as u32, p as u32);
    }
    b.build()
}

/// Erdős–Rényi G(n, p) — the *un*structured control family (treewidth is
/// typically Θ(n) once p ≫ 1/n).
pub fn gnp(n: usize, p: f64, seed: u64) -> UGraph {
    let mut rng = derive_rng("gnp", &[n as u64, p.to_bits()], seed);
    let mut b = UGraphBuilder::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            if rng.gen_bool(p) {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// The \[ACK16\]-flavoured bit-gadget family: constant diameter, logarithmic
/// treewidth (paper §1.2 uses such instances to separate girth from
/// diameter). Layout with `m = 2^bits` pair vertices per side:
///
/// * `a_0..a_{m-1}` and `b_0..b_{m-1}` — the two "word" sides;
/// * bit vertices `x_j` / `x̄_j` for each bit position `j`;
/// * one hub `c` adjacent to every bit vertex.
///
/// `a_i` (resp. `b_i`) connects to `x_j` if bit `j` of `i` is set, else to
/// `x̄_j`. Removing the `2·bits + 1` bit/hub vertices isolates everything, so
/// treewidth ≤ 2·bits + 1, while the diameter is ≤ 4.
pub fn bit_gadget(bits: usize) -> UGraph {
    assert!((1..20).contains(&bits));
    let m = 1usize << bits;
    let a0 = 0u32;
    let b0 = m as u32;
    let x0 = 2 * m as u32; // x_j at x0 + 2j, x̄_j at x0 + 2j + 1
    let hub = x0 + 2 * bits as u32;
    let n = hub as usize + 1;
    let mut b = UGraphBuilder::new(n);
    for j in 0..bits as u32 {
        b.add_edge(hub, x0 + 2 * j);
        b.add_edge(hub, x0 + 2 * j + 1);
    }
    for i in 0..m {
        for j in 0..bits {
            let bitv = if (i >> j) & 1 == 1 {
                x0 + 2 * j as u32
            } else {
                x0 + 2 * j as u32 + 1
            };
            b.add_edge(a0 + i as u32, bitv);
            b.add_edge(b0 + i as u32, bitv);
        }
    }
    b.build()
}

/// Random bipartite graph with banded structure: left vertices `0..nl`,
/// right vertices `nl..nl+nr`; left `i` may connect to right `j` only when
/// `|i·nr/nl − j| ≤ band`, each allowed edge kept with probability `p`, and
/// a deterministic backbone keeps the graph connected. Low treewidth
/// (≤ 2·band + 2) because it embeds in a banded path.
///
/// Returns the graph and the side assignment (`true` = left).
pub fn bipartite_banded(
    nl: usize,
    nr: usize,
    band: usize,
    p: f64,
    seed: u64,
) -> (UGraph, Vec<bool>) {
    assert!(nl >= 1 && nr >= 1);
    let mut rng = derive_rng(
        "bipartite_banded",
        &[nl as u64, nr as u64, band as u64, p.to_bits()],
        seed,
    );
    let n = nl + nr;
    let mut b = UGraphBuilder::new(n);
    let right = |j: usize| (nl + j) as u32;
    for i in 0..nl {
        let center = (i * nr / nl).min(nr - 1);
        let lo = center.saturating_sub(band);
        let hi = (center + band).min(nr - 1);
        // Zigzag backbone keeps the whole graph connected: left i and
        // left i+1 share the right vertex at i's center.
        b.add_edge(i as u32, right(center));
        if i + 1 < nl {
            b.add_edge((i + 1) as u32, right(center));
        }
        for j in lo..=hi {
            if rng.gen_bool(p) {
                b.add_edge(i as u32, right(j));
            }
        }
    }
    // Attach any right vertex that ended up isolated.
    let g0 = b.clone().build();
    for j in 0..nr {
        if g0.degree(right(j)) == 0 {
            let i = (j * nl / nr).min(nl - 1);
            b.add_edge(i as u32, right(j));
        }
    }
    let mut side = vec![false; n];
    for s in side.iter_mut().take(nl) {
        *s = true;
    }
    (b.build(), side)
}

/// Random 2-terminal series-parallel graph on `n ≥ 2` vertices
/// (treewidth ≤ 2). Grown from the single edge {0, 1} by `n − 2` random
/// compositions, each adding one vertex `v` on a uniformly random existing
/// edge `{a, b}`:
///
/// * **series** — subdivide: `{a, b}` is replaced by `{a, v}, {v, b}`;
/// * **parallel** — diamond: `{a, v}, {v, b}` are added next to `{a, b}`
///   (a parallel composition of the edge with a fresh series pair).
///
/// Both operations preserve 2-terminal series-parallel structure, so the
/// result is connected, simple, and has treewidth ≤ 2.
pub fn series_parallel(n: usize, seed: u64) -> UGraph {
    assert!(n >= 2);
    let mut rng = derive_rng("series_parallel", &[n as u64], seed);
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    for v in 2..n as u32 {
        let e = rng.gen_range(0..edges.len());
        let (a, b) = edges[e];
        if rng.gen_bool(0.5) {
            edges.swap_remove(e); // series: subdivide {a, b} through v
        }
        edges.push((a, v));
        edges.push((v, b));
    }
    UGraph::from_edges(n, edges)
}

/// Random cactus on `n` vertices: every edge lies on at most one cycle
/// (treewidth ≤ 2). Grown from a single vertex by attaching, at a uniformly
/// random existing vertex, either a fresh cycle of length 3–5 (probability
/// 0.7, budget permitting) or a pendant edge.
pub fn cactus(n: usize, seed: u64) -> UGraph {
    assert!(n >= 1);
    let mut rng = derive_rng("cactus", &[n as u64], seed);
    let mut b = UGraphBuilder::new(n);
    let mut next = 1u32;
    while (next as usize) < n {
        let anchor = rng.gen_range(0..next);
        let remaining = n - next as usize;
        if remaining >= 2 && rng.gen_bool(0.7) {
            // A cycle through the anchor: `len − 1` fresh vertices.
            let len = rng.gen_range(3..=5usize).min(remaining + 1);
            for i in 0..(len - 1) as u32 {
                let prev = if i == 0 { anchor } else { next - 1 };
                b.add_edge(prev, next);
                next += 1;
            }
            b.add_edge(next - 1, anchor);
        } else {
            b.add_edge(anchor, next);
            next += 1;
        }
    }
    b.build()
}

/// Random Halin graph on `n ≥ 4` vertices (treewidth ≤ 3): a tree without
/// degree-2 vertices, with its leaves joined by a cycle in depth-first
/// order. Grown by giving the root three children and then repeatedly
/// expanding a uniformly random leaf with 2–3 children; a final budget of
/// one vertex becomes an extra child of the root (which keeps every
/// internal degree ≥ 3).
pub fn halin(n: usize, seed: u64) -> UGraph {
    assert!(n >= 4);
    let mut rng = derive_rng("halin", &[n as u64], seed);
    let mut children: Vec<Vec<u32>> = vec![Vec::new()];
    let mut leaves: Vec<u32> = Vec::new();
    let spawn = |children: &mut Vec<Vec<u32>>, leaves: &mut Vec<u32>, parent: u32, k: usize| {
        for _ in 0..k {
            let v = children.len() as u32;
            children.push(Vec::new());
            children[parent as usize].push(v);
            leaves.push(v);
        }
    };
    spawn(&mut children, &mut leaves, 0, 3.min(n - 1));
    loop {
        let budget = n - children.len();
        if budget < 2 {
            if budget == 1 {
                spawn(&mut children, &mut leaves, 0, 1);
            }
            break;
        }
        let li = rng.gen_range(0..leaves.len());
        let leaf = leaves.swap_remove(li);
        let k = rng.gen_range(2..=3usize).min(budget);
        spawn(&mut children, &mut leaves, leaf, k);
    }
    let mut b = UGraphBuilder::new(children.len());
    for (p, cs) in children.iter().enumerate() {
        for &c in cs {
            b.add_edge(p as u32, c);
        }
    }
    // Leaf cycle in depth-first order (planar embedding order).
    let mut order = Vec::new();
    let mut stack = vec![0u32];
    while let Some(v) = stack.pop() {
        if children[v as usize].is_empty() {
            order.push(v);
        } else {
            stack.extend(children[v as usize].iter().rev());
        }
    }
    for w in order.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.add_edge(*order.last().unwrap(), order[0]);
    b.build()
}

/// `cliques ≥ 3` cliques of `size ≥ 2` vertices each, arranged in a ring:
/// clique `i`'s last vertex connects to clique `i+1`'s first. Treewidth is
/// `size − 1` ≤ tw ≤ `size + 1` (the clique forces `size − 1`; breaking the
/// ring at one bridge and adding its two endpoints to every bag of a
/// path-of-cliques decomposition gives `size + 1`). Diameter Θ(`cliques`).
pub fn ring_of_cliques(cliques: usize, size: usize) -> UGraph {
    assert!(cliques >= 3 && size >= 2);
    let id = |c: usize, j: usize| (c * size + j) as u32;
    let mut b = UGraphBuilder::new(cliques * size);
    for c in 0..cliques {
        for i in 0..size {
            for j in i + 1..size {
                b.add_edge(id(c, i), id(c, j));
            }
        }
        b.add_edge(id(c, size - 1), id((c + 1) % cliques, 0));
    }
    b.build()
}

/// The disjoint union of `parts`, with vertex ids offset in order.
pub fn disjoint_union(parts: &[UGraph]) -> UGraph {
    let n = parts.iter().map(|g| g.n()).sum();
    let mut b = UGraphBuilder::new(n);
    let mut off = 0u32;
    for g in parts {
        for (u, v) in g.edges() {
            b.add_edge(u + off, v + off);
        }
        off += g.n() as u32;
    }
    b.build()
}

/// Disconnected mixed-family instance on `n ≥ 24` vertices: a partial
/// 2-tree (≈ n/2), a cactus (≈ n/4), a cycle (≈ n/8), a random tree (the
/// rest — the n ≥ 24 floor keeps it ≥ 2 vertices, i.e. a real tree, so
/// the result always has exactly five components with one isolated
/// vertex). Every component has treewidth ≤ 2; the graph as a whole
/// exercises per-component pipeline handling.
pub fn multi_component(n: usize, seed: u64) -> UGraph {
    assert!(n >= 24);
    let a = n / 2;
    let b = n / 4;
    let c = (n / 8).max(3);
    let d = n - a - b - c - 1;
    disjoint_union(&[
        partial_ktree(a, 2, 0.7, seed),
        cactus(b, seed),
        cycle(c),
        random_tree(d, seed),
        UGraph::empty(1),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{components, diameter_exact, is_connected};
    use crate::tw::{elimination_width, min_degree_order};

    #[test]
    fn banded_path_params() {
        let g = banded_path(20, 3);
        assert!(is_connected(&g));
        assert_eq!(elimination_width(&g, &min_degree_order(&g)), 3);
        assert_eq!(diameter_exact(&g), 19u32.div_ceil(3)); // ⌈19/3⌉ = 7
    }

    #[test]
    fn ktree_width_is_k() {
        for k in 1..=4 {
            let g = ktree(40, k, 11 + k as u64);
            assert!(is_connected(&g));
            let w = elimination_width(&g, &min_degree_order(&g));
            assert_eq!(w, k, "k-tree width must equal k (k = {k})");
        }
    }

    #[test]
    fn partial_ktree_connected_and_bounded() {
        for seed in 0..5 {
            let g = partial_ktree(60, 3, 0.6, seed);
            assert!(is_connected(&g), "seed {seed}");
            let w = elimination_width(&g, &min_degree_order(&g));
            assert!(w <= 3, "width {w} exceeds k");
        }
    }

    #[test]
    fn grid_properties() {
        let g = grid(3, 5);
        assert_eq!(g.n(), 15);
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), 6);
        let w = elimination_width(&g, &min_degree_order(&g));
        assert!((3..=4).contains(&w));
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(50, 3);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 49);
        assert_eq!(elimination_width(&g, &min_degree_order(&g)), 1);
    }

    #[test]
    fn bit_gadget_shape() {
        let bits = 4;
        let g = bit_gadget(bits);
        assert!(is_connected(&g));
        assert!(diameter_exact(&g) <= 4);
        // Width bounded by 2·bits + 1 (delete bit vertices + hub).
        let w = elimination_width(&g, &min_degree_order(&g));
        assert!(w <= 2 * bits + 1, "width {w}");
        // and n is exponential in bits: separation family's point.
        assert_eq!(g.n(), 2 * (1 << bits) + 2 * bits + 1);
    }

    #[test]
    fn bipartite_banded_is_bipartite() {
        let (g, side) = bipartite_banded(30, 30, 2, 0.5, 9);
        assert!(is_connected(&g));
        for (u, v) in g.edges() {
            assert_ne!(side[u as usize], side[v as usize], "edge within one side");
        }
    }

    #[test]
    fn cycle_and_path_degenerate_sizes() {
        assert_eq!(path(1).n(), 1);
        assert_eq!(cycle(3).m(), 3);
    }

    #[test]
    fn gnp_determinism() {
        assert_eq!(gnp(20, 0.2, 5), gnp(20, 0.2, 5));
    }

    #[test]
    fn gnp_streams_decorrelated_across_p() {
        // Under the old direct seeding, gnp(n, 0.1, s) was a subgraph of
        // gnp(n, 0.3, s); the derived streams break that coupling.
        let lo = gnp(40, 0.1, 7);
        let hi = gnp(40, 0.3, 7);
        let contained = lo.edges().filter(|&(u, v)| hi.has_edge(u, v)).count();
        assert!(
            contained < lo.m(),
            "low-p gnp is still a subgraph of high-p gnp: streams collapsed"
        );
    }

    #[test]
    fn series_parallel_width_at_most_2() {
        for seed in 0..6 {
            let g = series_parallel(60, seed);
            assert!(is_connected(&g), "seed {seed}");
            let w = elimination_width(&g, &min_degree_order(&g));
            assert!(w <= 2, "seed {seed}: width {w} exceeds 2");
        }
    }

    #[test]
    fn cactus_width_at_most_2_and_edge_count() {
        for seed in 0..6 {
            let g = cactus(50, seed);
            assert!(is_connected(&g), "seed {seed}");
            // Cactus: n − 1 ≤ m ≤ ⌊3(n−1)/2⌋.
            assert!(
                g.m() >= g.n() - 1 && g.m() <= 3 * (g.n() - 1) / 2,
                "seed {seed}"
            );
            let w = elimination_width(&g, &min_degree_order(&g));
            assert!(w <= 2, "seed {seed}: width {w} exceeds 2");
        }
    }

    #[test]
    fn halin_width_at_most_3_no_degree_2() {
        for seed in 0..6 {
            let g = halin(40, seed);
            assert!(is_connected(&g), "seed {seed}");
            assert_eq!(g.n(), 40, "seed {seed}: exact vertex budget");
            for v in g.vertices() {
                assert_ne!(
                    g.degree(v),
                    2,
                    "seed {seed}: Halin graphs have no degree-2 vertex"
                );
                assert_ne!(g.degree(v), 1, "seed {seed}: every leaf lies on the cycle");
            }
            // True treewidth of a Halin graph is ≤ 3; the min-degree
            // heuristic may overshoot by one.
            let w = elimination_width(&g, &min_degree_order(&g));
            assert!(w <= 4, "seed {seed}: width {w} exceeds 4");
        }
    }

    #[test]
    fn ring_of_cliques_width_bounds() {
        for size in [3usize, 4, 6] {
            let g = ring_of_cliques(5, size);
            assert!(is_connected(&g));
            assert_eq!(g.n(), 5 * size);
            let w = elimination_width(&g, &min_degree_order(&g));
            assert!((size - 1..=size + 1).contains(&w), "size {size}: width {w}");
        }
    }

    #[test]
    fn multi_component_structure() {
        for n in [24usize, 25, 31, 48] {
            let g = multi_component(n, 9);
            assert_eq!(g.n(), n);
            let (_, k) = components(&g);
            assert_eq!(
                k, 5,
                "n = {n}: partial 2-tree + cactus + cycle + tree + isolate"
            );
        }
        let g = multi_component(48, 9);
        let (comp, k) = components(&g);
        assert_eq!(k, 5);
        // The isolated vertex is the last one.
        assert_eq!(g.degree(47), 0);
        assert!(comp.iter().all(|&c| (c as usize) < k));
        let w = elimination_width(&g, &min_degree_order(&g));
        assert!(w <= 2, "every component is width ≤ 2, width {w}");
    }

    #[test]
    fn disjoint_union_offsets() {
        let g = disjoint_union(&[cycle(3), path(2), UGraph::empty(1)]);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 4);
        assert!(g.has_edge(3, 4) && !g.has_edge(2, 3) && g.degree(5) == 0);
    }
}
