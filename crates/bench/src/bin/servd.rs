//! The `servd` bench: the build-once / query-many pipeline served over a
//! real socket. Builds the store like the `serve` bench, spawns the
//! `servd` front-end on an ephemeral loopback port, and drives it with an
//! open-loop mixed workload (hot/cold-skewed singles plus periodic
//! batches) from several client connections. Latency is measured from
//! each request's *scheduled* send time, so falling behind the schedule
//! is charged to the server — no coordinated omission. Writes
//! `BENCH_servd.json` with p50/p90/p99/p999 and sustained QPS.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin servd                # n = 100_000
//! cargo run --release -p lowtw-bench --bin servd -- 20000 2     # smaller / wider
//! cargo run --release -p lowtw-bench --bin servd -- --packed   # serve the
//! #   compressed (delta-coded bit-packed block) store layout over the wire
//! cargo run --release -p lowtw-bench --bin servd -- --smoke     # CI smoke: small
//! #   instance, 10k mixed queries, every wire answer checked against the
//! #   in-process engine, zero protocol errors required; no JSON written.
//! ```
//!
//! Positional arguments: `n` (default 100_000), `k` (default 1), `keep`
//! (default 0.5), `seed` (default 1) — the `serve` bench family, so the
//! in-process and over-the-wire numbers line up.

use labelserve::{
    seeded_queries, ServeConfig, StoreBuilder, StoreLayout, VersionedEngine, WorkloadSpec,
};
use lowtw::servd::{Client, Request, Response, ServdConfig, Server};
use lowtw::{distlabel, treedec, twgraph};
use lowtw_bench::{fmt, rate_per_sec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every 64th scheduled request ships as one batch of this many pairs.
const BATCH_EVERY: usize = 64;
const BATCH_LEN: usize = 32;

fn build_engine(
    n: usize,
    k: usize,
    keep: f64,
    seed: u64,
    layout: StoreLayout,
) -> (Arc<VersionedEngine>, usize, usize) {
    eprintln!("generating partial {k}-tree, n = {n}, keep = {keep}, seed = {seed} ...");
    let g = twgraph::gen::partial_ktree(n, k, keep, seed);
    let inst = twgraph::gen::with_random_weights(&g, 30, seed);
    let m = g.m();

    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = Instant::now();
    let out = treedec::decompose_centralized(&g, k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    let labels = distlabel::build_labels_centralized(&inst, &out.td, &out.info);
    let serve_cfg = ServeConfig::default().with_layout(layout);
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut builder = StoreBuilder::new(n);
    builder
        .add_component(&labels, &ids)
        .expect("store compaction failed");
    let store = builder
        .build_layout(serve_cfg.shard_size, layout)
        .expect("store build failed");
    eprintln!(
        "built: width = {}, {} label entries, {} shards ({:.1?})",
        out.td.width(),
        fmt(store.entries() as u64),
        store.shard_count(),
        t.elapsed()
    );
    let width = out.td.width();
    (Arc::new(VersionedEngine::new(store, serve_cfg)), m, width)
}

/// One connection's share of the open-loop run.
struct ConnReport {
    samples_us: Vec<u64>,
    requests: u64,
    queries: u64,
}

/// Drive `requests` scheduled sends at `interval_us` spacing over one
/// connection; a synchronous round trip per request, latency charged
/// from the scheduled instant.
fn drive_connection(
    addr: std::net::SocketAddr,
    queries: &[(u32, u32)],
    requests: usize,
    interval_us: u64,
) -> ConnReport {
    let mut client = Client::connect(addr).expect("client connect failed");
    let mut samples_us = Vec::with_capacity(requests);
    let mut qcount = 0u64;
    let mut qi = 0usize;
    let next = |qi: &mut usize| {
        let q = queries[*qi % queries.len()];
        *qi += 1;
        q
    };
    let start = Instant::now();
    for i in 0..requests {
        let sched = Duration::from_micros(i as u64 * interval_us);
        let elapsed = start.elapsed();
        if sched > elapsed {
            std::thread::sleep(sched - elapsed);
        }
        if i % BATCH_EVERY == BATCH_EVERY - 1 {
            let pairs: Vec<(u32, u32)> = (0..BATCH_LEN).map(|_| next(&mut qi)).collect();
            let got = client.batch(&pairs).expect("batch over the wire failed");
            assert_eq!(got.len(), BATCH_LEN);
            qcount += BATCH_LEN as u64;
        } else {
            let (s, t) = next(&mut qi);
            client.distance(s, t).expect("query over the wire failed");
            qcount += 1;
        }
        samples_us.push((start.elapsed() - sched).as_micros() as u64);
    }
    ConnReport {
        samples_us,
        requests: requests as u64,
        queries: qcount,
    }
}

/// Check a slice of the workload over the wire against the in-process
/// engine, answer by answer; returns how many pairs were verified.
fn differential(addr: std::net::SocketAddr, engine: &VersionedEngine, pairs: &[(u32, u32)]) -> u64 {
    let mut client = Client::connect(addr).expect("differential connect failed");
    // Singles and batch through distinct opcodes; both must agree exactly.
    for &(s, t) in pairs.iter().take(pairs.len() / 4) {
        assert_eq!(
            client.distance(s, t).expect("wire query failed"),
            engine.distance(s, t).expect("in-process query failed"),
            "wire({s}, {t}) diverged from the in-process engine"
        );
    }
    assert_eq!(
        client.batch(pairs).expect("wire batch failed"),
        engine.batch(pairs).expect("in-process batch failed"),
        "batched wire answers diverged from the in-process engine"
    );
    // Epoch sanity while we hold the connection.
    match client.call(&Request::Epoch).expect("epoch call failed") {
        Response::Epoch(e) => assert_eq!(e, engine.epoch()),
        other => panic!("unexpected epoch response {other:?}"),
    }
    (pairs.len() + pairs.len() / 4) as u64
}

fn smoke(layout: StoreLayout) {
    let (engine, _m, _width) = build_engine(2_000, 1, 0.5, 1, layout);
    let server = Server::spawn(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServdConfig::default(),
    )
    .expect("server spawn failed");
    let addr = server.local_addr();
    let spec = WorkloadSpec {
        queries: 10_000,
        hot_pairs: 256,
        hot_fraction: 0.75,
    };
    let queries = seeded_queries(2_000, &spec, 1);
    // Every answer verified: singles over one half, one big batch over the
    // other — exact agreement with the in-process engine required.
    let mut client = Client::connect(addr).expect("smoke connect failed");
    let (head, tail) = queries.split_at(queries.len() / 2);
    for &(s, t) in head {
        assert_eq!(
            client.distance(s, t).expect("smoke query failed"),
            engine.distance(s, t).expect("in-process query failed"),
            "smoke: wire({s}, {t}) diverged"
        );
    }
    assert_eq!(
        client.batch(tail).expect("smoke batch failed"),
        engine.batch(tail).expect("in-process batch failed"),
        "smoke: batched answers diverged"
    );
    drop(client);
    let stats = server.shutdown();
    assert_eq!(
        (stats.malformed, stats.overloads, stats.rejected_batches),
        (0, 0, 0),
        "smoke: protocol errors on a clean workload"
    );
    assert_eq!(stats.queries, queries.len() as u64);
    println!(
        "smoke ok: {} queries over the wire, all bit-identical, zero protocol errors",
        fmt(stats.queries)
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let layout = if raw.iter().any(|a| a == "--packed") {
        StoreLayout::Packed
    } else {
        StoreLayout::Flat
    };
    if raw.iter().any(|a| a == "--smoke") {
        smoke(layout);
        return;
    }
    let args: Vec<&String> = raw.iter().filter(|a| !a.starts_with("--")).collect();
    let arg = |i: usize, default: f64| -> f64 {
        args.get(i)
            .map(|s| s.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let n = arg(0, 100_000.0) as usize;
    let k = arg(1, 1.0) as usize;
    let keep = arg(2, 0.5);
    let seed = arg(3, 1.0) as u64;
    let conns = 4usize;
    let per_conn_rate = 10_000u64; // scheduled req/s per connection
    let per_conn_requests = 40_000usize;

    let (engine, m, width) = build_engine(n, k, keep, seed, layout);
    let server = Server::spawn(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServdConfig::default(),
    )
    .expect("server spawn failed");
    let addr = server.local_addr();
    eprintln!("serving on {addr}");

    // Differential gate before timing: the wire must agree with the
    // in-process engine on a seeded slice of the workload.
    let diff_pairs = seeded_queries(
        n,
        &WorkloadSpec {
            queries: 2_000,
            hot_pairs: 128,
            hot_fraction: 0.75,
        },
        seed ^ 0xD1FF,
    );
    let verified = differential(addr, &engine, &diff_pairs);
    eprintln!("differential: {} wire answers bit-identical", fmt(verified));

    // The open-loop run: `conns` connections, each pacing its own seeded
    // skewed stream at `per_conn_rate` scheduled requests per second.
    let spec = WorkloadSpec {
        queries: 200_000,
        hot_pairs: 4096,
        hot_fraction: 0.75,
    };
    let interval_us = 1_000_000 / per_conn_rate;
    let t = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let queries = seeded_queries(n, &spec, seed.wrapping_add(c as u64));
            std::thread::spawn(move || {
                drive_connection(addr, &queries, per_conn_requests, interval_us)
            })
        })
        .collect();
    let reports: Vec<ConnReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = t.elapsed();

    let mut samples: Vec<u64> = reports.iter().flat_map(|r| r.samples_us.clone()).collect();
    let requests: u64 = reports.iter().map(|r| r.requests).sum();
    let queries: u64 = reports.iter().map(|r| r.queries).sum();
    let summary = lowtw::servd::LatencySummary::from_samples(&mut samples);
    let sustained_rps = rate_per_sec(requests, wall);
    let sustained_qps = rate_per_sec(queries, wall);
    eprintln!(
        "open loop: {} req ({} q) over {} conns in {:.1?} = {} req/s, {} q/s",
        fmt(requests),
        fmt(queries),
        conns,
        wall,
        fmt(sustained_rps),
        fmt(sustained_qps)
    );
    eprintln!(
        "latency: p50 {}µs  p90 {}µs  p99 {}µs  p999 {}µs  max {}µs",
        summary.p50_us, summary.p90_us, summary.p99_us, summary.p999_us, summary.max_us
    );

    let stats = server.shutdown();
    assert_eq!(
        (stats.malformed, stats.overloads, stats.rejected_batches),
        (0, 0, 0),
        "protocol errors during a clean benchmark run"
    );

    let doc = serde_json::json!({
        "bench": "servd",
        "family": "partial_ktree",
        "n": n,
        "m": m,
        "k": k,
        "keep": keep,
        "seed": seed,
        "width": width,
        "conns": conns,
        "scheduled_rate_per_conn": per_conn_rate,
        "requests": requests,
        "queries": queries,
        "differential_pairs": verified,
        "wall_us": wall.as_micros() as u64,
        "sustained_rps": sustained_rps,
        "sustained_qps": sustained_qps,
        "latency_us": serde_json::json!({
            "count": summary.count,
            "mean": summary.mean_us,
            "p50": summary.p50_us,
            "p90": summary.p90_us,
            "p99": summary.p99_us,
            "p999": summary.p999_us,
            "max": summary.max_us,
        }),
        "workload": serde_json::json!({
            "hot_pairs": spec.hot_pairs,
            "hot_fraction": spec.hot_fraction,
            "batch_every": BATCH_EVERY,
            "batch_len": BATCH_LEN,
        }),
        "server": serde_json::json!({
            "connections": stats.connections,
            "requests": stats.requests,
            "queries": stats.queries,
        }),
    });
    std::fs::write(
        "BENCH_servd.json",
        serde_json::to_string(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_servd.json");
}
