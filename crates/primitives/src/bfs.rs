//! RST — rooted spanning trees per part, by parallel BFS flooding
//! (paper Lemma 8's RST task).
//!
//! All parts flood simultaneously in shared supersteps, so the measured
//! cost is `O(max part diameter + interference)`, the scheduling-theorem
//! envelope. A one-superstep membership exchange lets senders target only
//! neighbours in the same part; a final notification superstep gives every
//! parent its child list.

use crate::parts::Parts;
use crate::roles::TreeRoles;
use crate::snc;
use congest_sim::{CongestError, Network};

#[derive(Clone)]
struct PBfsState {
    /// Aligned with the node's membership list: (dist, parent), or MAX.
    dist: Vec<u32>,
    parent: Vec<u32>,
    fresh: Vec<bool>,
    /// Neighbours known to share each membership (filled by the preamble).
    nbrs: Vec<Vec<u32>>,
}

/// Build one BFS tree per part, rooted at the given `(part, root)` pairs.
/// Every part must be connected within the communication graph restricted
/// to its members; the root must be a member.
///
/// The membership-exchange preamble and the child-notification round are
/// full-network SNCs (every node advertises, members notify); the flood in
/// between runs scoped to the member nodes, so its per-superstep cost is
/// O(members) instead of O(n) at identical charged metrics.
pub fn part_bfs_trees(
    net: &mut Network,
    parts: &Parts,
    roots: &[(u32, u32)],
) -> Result<TreeRoles, CongestError> {
    let n = net.n();
    assert_eq!(parts.members.len(), n);
    let memberships = &parts.members;

    // The nodes that belong to any part, sorted — the flood's active set.
    let active: Vec<u32> = (0..n as u32)
        .filter(|&v| !memberships[v as usize].is_empty())
        .collect();

    // Preamble SNC: learn which neighbours share which parts.
    let shared = snc::share_with_neighbors(net, |v| memberships[v as usize].clone())?;
    let mut states: Vec<PBfsState> = active
        .iter()
        .map(|&v| {
            let mine = &memberships[v as usize];
            let nbrs: Vec<Vec<u32>> = mine
                .iter()
                .map(|&p| {
                    shared[v as usize]
                        .iter()
                        .filter(|(_, their)| their.binary_search(&p).is_ok())
                        .map(|&(w, _)| w)
                        .collect()
                })
                .collect();
            PBfsState {
                dist: vec![u32::MAX; mine.len()],
                parent: vec![u32::MAX; mine.len()],
                fresh: vec![false; mine.len()],
                nbrs,
            }
        })
        .collect();
    let pos_of = |v: u32| -> usize {
        active
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("node {v} belongs to no part"))
    };
    for &(p, r) in roots {
        let idx = memberships[r as usize]
            .binary_search(&p)
            .unwrap_or_else(|_| panic!("root {r} is not a member of part {p}"));
        let rp = pos_of(r);
        states[rp].dist[idx] = 0;
        states[rp].parent[idx] = r;
        states[rp].fresh[idx] = true;
    }

    net.run_until_quiet_on(
        &active,
        &mut states,
        |u, s: &PBfsState| {
            let mut out = Vec::new();
            for (i, &p) in memberships[u as usize].iter().enumerate() {
                if s.fresh[i] {
                    for &w in &s.nbrs[i] {
                        out.push((w, (p, s.dist[i])));
                    }
                }
            }
            out
        },
        |v, s, inbox| {
            for f in s.fresh.iter_mut() {
                *f = false;
            }
            for (src, (p, d)) in inbox {
                if let Ok(i) = memberships[v as usize].binary_search(&p) {
                    if d + 1 < s.dist[i] {
                        s.dist[i] = d + 1;
                        s.parent[i] = src;
                        s.fresh[i] = true;
                    }
                }
            }
        },
        8 * n as u64 + 64,
    )?;

    // Notification SNC: tell parents about children (the cost of producing
    // the RST output format of Lemma 8). Parents are members, so this round
    // is scoped too.
    let mut children: Vec<Vec<(u32, Vec<u32>)>> = active
        .iter()
        .map(|&v| {
            memberships[v as usize]
                .iter()
                .map(|&p| (p, Vec::new()))
                .collect()
        })
        .collect();
    let states_ref = &states;
    let pos_ref = &pos_of;
    net.superstep_on(
        &active,
        &mut children,
        |u, _c| {
            let mut out = Vec::new();
            let su = &states_ref[pos_ref(u)];
            for (i, &p) in memberships[u as usize].iter().enumerate() {
                let par = su.parent[i];
                if par != u32::MAX && par != u {
                    out.push((par, p));
                }
            }
            out
        },
        |v, c, inbox| {
            for (src, p) in inbox {
                let i = memberships[v as usize].binary_search(&p).unwrap();
                c[i].1.push(src);
            }
        },
    )?;

    // Assemble the roles (each node's local knowledge, gathered by the
    // orchestrator as output).
    let mut maps: std::collections::HashMap<u32, Vec<(u32, u32, bool)>> =
        std::collections::HashMap::new();
    for (pos, &v) in active.iter().enumerate() {
        for (i, &p) in memberships[v as usize].iter().enumerate() {
            let par = states[pos].parent[i];
            assert!(
                par != u32::MAX,
                "part {p} is disconnected: node {v} unreached"
            );
            maps.entry(p).or_default().push((v, par, false));
        }
    }
    let mut maps: Vec<_> = maps.into_iter().collect();
    maps.sort_by_key(|&(p, _)| p);
    Ok(TreeRoles::from_parent_maps(n, maps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::gen::{banded_path, grid};

    #[test]
    fn trees_span_parts() {
        // Grid rows as parts.
        let g = grid(3, 5);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let labels: Vec<Option<u32>> = (0..15).map(|v| Some(v / 5)).collect();
        let parts = Parts::from_labels(&labels);
        let roots = [(0u32, 0u32), (1, 5), (2, 10)];
        let tr = part_bfs_trees(&mut net, &parts, &roots).unwrap();
        tr.validate().unwrap();
        assert_eq!(tr.roots(), vec![(0, 0), (1, 5), (2, 10)]);
        // Tree edges are graph edges within the part.
        for v in 0..15u32 {
            for r in &tr.roles[v as usize] {
                if r.parent != v {
                    assert!(g.has_edge(v, r.parent));
                    assert_eq!(labels[v as usize], labels[r.parent as usize]);
                }
            }
        }
    }

    #[test]
    fn bfs_tree_depth_is_part_distance() {
        let g = banded_path(30, 3);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        // One part = whole graph.
        let parts = Parts::from_labels(&vec![Some(0); 30]);
        let tr = part_bfs_trees(&mut net, &parts, &[(0, 0)]).unwrap();
        // Parent distance decreases by one hop along the tree.
        let d = twgraph::alg::bfs_dist(&g, 0);
        for v in 1..30u32 {
            let r = tr.role_of(v, 0).unwrap();
            assert_eq!(d[v as usize], d[r.parent as usize] + 1);
        }
    }

    #[test]
    fn near_disjoint_shared_root() {
        // Path 0-1-2-3-4; parts {0,1,2} and {2,3,4} share node 2.
        let g = twgraph::gen::path(5);
        let mut net = Network::new(g, NetworkConfig::default());
        let parts = Parts::from_lists(2, vec![vec![0], vec![0], vec![0, 1], vec![1], vec![1]]);
        let tr = part_bfs_trees(&mut net, &parts, &[(0, 2), (1, 2)]).unwrap();
        tr.validate().unwrap();
        assert_eq!(tr.roots(), vec![(0, 2), (1, 2)]);
        assert_eq!(tr.role_of(0, 0).unwrap().parent, 1);
        assert_eq!(tr.role_of(4, 1).unwrap().parent, 3);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_part_detected() {
        let g = twgraph::gen::path(5);
        let mut net = Network::new(g, NetworkConfig::default());
        // Part 0 = {0, 4}: not connected through members only.
        let parts = Parts::from_lists(1, vec![vec![0], vec![], vec![], vec![], vec![0]]);
        let _ = part_bfs_trees(&mut net, &parts, &[(0, 0)]).unwrap();
    }
}
