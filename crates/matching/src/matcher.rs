//! The separator-hierarchy matcher.

use baselines::{hopcroft_karp, matching_size};
use congest_sim::{CongestError, NetworkConfig, PhaseSnapshot};
use stateful_walks::{CdlLabeling, ColoredWalk, ConstrainedSssp};
use treedec::decomp::NodeInfo;
use twgraph::gen::BipartiteInstance;
use twgraph::tw::TreeDecomposition;
use twgraph::{Arc, MultiDigraph, UEdgeId, INF};

/// Execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// Pure algorithm, no round accounting (fast; the oracle-comparable
    /// reference).
    Centralized,
    /// Per augmentation, run the CDL(C_col(2)) construction through the
    /// charged virtual network and accumulate its rounds (slow, faithful).
    Distributed,
}

/// Result of a matching run.
#[derive(Clone, Debug)]
pub struct MatchingOutcome {
    /// `mate[v]` = the matched partner.
    pub mate: Vec<Option<u32>>,
    /// Number of successful augmentations performed at separator vertices.
    pub augmentations: usize,
    /// Number of augmentation attempts (= activated separator vertices).
    pub attempts: usize,
    /// Accumulated measured rounds (0 in centralized mode).
    pub rounds: u64,
    /// Per-augmentation phase costs of the charged virtual CDL runs
    /// (empty in centralized mode).
    pub phases: Vec<PhaseSnapshot>,
}

impl MatchingOutcome {
    /// Matching cardinality.
    pub fn size(&self) -> usize {
        matching_size(&self.mate)
    }
}

/// Edge colors for the alternating-walk constraint.
const UNMATCHED: u32 = 0;
const MATCHED: u32 = 1;

/// Build the 2-colored weighted instance for the current matching and
/// active set: arcs of active edges get weight 1 and their match color;
/// arcs touching an inactive vertex get weight ∞ (the paper's masking).
fn alternating_instance(
    edges: &[(u32, u32)],
    n: usize,
    matched: &[bool],
    active: &[bool],
) -> MultiDigraph {
    let mut arcs = Vec::with_capacity(edges.len() * 2);
    for (e, &(u, v)) in edges.iter().enumerate() {
        let usable = active[u as usize] && active[v as usize];
        let w = if usable { 1 } else { INF };
        let label = if matched[e] { MATCHED } else { UNMATCHED };
        let ue = UEdgeId(e as u32);
        arcs.push(Arc {
            src: u,
            dst: v,
            weight: w,
            label,
            uedge: ue,
        });
        arcs.push(Arc {
            src: v,
            dst: u,
            weight: w,
            label,
            uedge: ue,
        });
    }
    MultiDigraph::from_arcs(n, arcs)
}

/// Exact maximum matching of a bipartite instance over the given
/// decomposition (paper Theorem 4).
pub fn max_matching(
    inst: &BipartiteInstance,
    td: &TreeDecomposition,
    info: &[NodeInfo],
    mode: MatchMode,
) -> Result<MatchingOutcome, CongestError> {
    let g = &inst.graph;
    let n = g.n();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut matched = vec![false; edges.len()];
    let mut mate: Vec<Option<u32>> = vec![None; n];
    let mut active = vec![false; n];
    let mut rounds = 0u64;
    let mut augmentations = 0usize;
    let mut attempts = 0usize;
    let mut phases: Vec<PhaseSnapshot> = Vec::new();

    // Incidence: edge ids per vertex (for local mate bookkeeping).
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (e, &(u, v)) in edges.iter().enumerate() {
        incident[u as usize].push(e as u32);
        incident[v as usize].push(e as u32);
    }

    // Process the decomposition bottom-up.
    let order = distlabel::build::order_bottom_up(td);
    for x in order {
        let ni = &info[x];
        if ni.is_leaf {
            // Leaf: gather and match locally (the paper's "centralized
            // fashion" base case).
            for &v in &ni.gpx {
                active[v as usize] = true;
            }
            let keep: Vec<bool> = (0..n as u32)
                .map(|v| ni.gpx.binary_search(&v).is_ok())
                .collect();
            let (sub, old_of) = g.induced(&keep);
            let sub_side: Vec<bool> = old_of.iter().map(|&v| inst.side[v as usize]).collect();
            let sub_mate = hopcroft_karp(&sub, &sub_side);
            for (new_v, m) in sub_mate.iter().enumerate() {
                if let Some(new_m) = m {
                    let (a, b) = (old_of[new_v], old_of[*new_m as usize]);
                    if a < b {
                        mate[a as usize] = Some(b);
                        mate[b as usize] = Some(a);
                        let e = edges
                            .binary_search(&(a, b))
                            .expect("matched pair must be an edge");
                        matched[e] = true;
                    }
                }
            }
            continue;
        }
        // Internal: activate separator vertices one at a time (only those
        // not already active — the separator partition guarantees
        // uniqueness, this is a defensive filter).
        for &s in &ni.sep {
            if active[s as usize] {
                continue;
            }
            active[s as usize] = true;
            attempts += 1;
            // Invariant (checked in release builds: a violation means the
            // matching is corrupt, not merely slow): a newly activated
            // vertex is unmatched. Matched edges only ever join vertices
            // that were already active — the leaf base case activates all
            // of `gpx` before matching inside it, and every augmentation
            // walks the alternating instance restricted to the active set.
            assert!(
                mate[s as usize].is_none(),
                "separator vertex {s} was matched before activation"
            );

            let alt = alternating_instance(&edges, n, &matched, &active);
            let constraint = ColoredWalk { colors: 2 };
            if mode == MatchMode::Distributed {
                let (_cdl, metrics) = CdlLabeling::build_distributed(
                    &alt,
                    &constraint,
                    td,
                    info,
                    NetworkConfig::default(),
                )?;
                rounds += metrics.rounds;
                phases.push(metrics.as_phase(&format!("matching/augment-{attempts}")));
            }
            let sssp = ConstrainedSssp::run(&alt, &constraint, s);
            // Best unmatched target reached with an unmatched final edge.
            let end_state = 2 + UNMATCHED as u16;
            let target = (0..n as u32)
                .filter(|&t| t != s && mate[t as usize].is_none() && active[t as usize])
                .map(|t| (sssp.dist(t, end_state), t))
                .filter(|&(d, _)| d < INF)
                .min();
            let Some((path_len, t)) = target else {
                continue;
            };
            let walk = sssp
                .walk_to(t, end_state)
                .expect("finite distance must yield a walk");
            // Shortest alternating walks are simple in bipartite graphs:
            // verify, then flip.
            {
                let mut seen: Vec<u32> = walk.iter().map(|&a| alt.arc(a).src).collect();
                seen.push(t);
                let len_before = seen.len();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), len_before, "augmenting walk not simple");
            }
            rounds += walk.len() as u64; // the Corollary-1 walk output pass
            for aid in &walk {
                let ue = alt.arc(*aid).uedge;
                matched[ue.idx()] = !matched[ue.idx()];
            }
            // Rebuild mate[] for the touched vertices.
            let mut touched: Vec<u32> = walk
                .iter()
                .flat_map(|&a| [alt.arc(a).src, alt.arc(a).dst])
                .collect();
            touched.sort_unstable();
            touched.dedup();
            for &v in &touched {
                mate[v as usize] = None;
                for &e in &incident[v as usize] {
                    if matched[e as usize] {
                        let (a, b) = edges[e as usize];
                        mate[v as usize] = Some(if a == v { b } else { a });
                    }
                }
            }
            augmentations += 1;
            // Invariant (checked in release builds): the augmenting walk
            // has positive length — `path_len` is the CDL distance of a
            // finite walk from `s` to `t ≠ s`, and every arc carries unit
            // weight, so a zero here would mean the constrained SSSP
            // fabricated an empty walk between distinct vertices.
            assert!(path_len >= 1, "augmenting walk {s} → {t} has zero length");
        }
    }

    Ok(MatchingOutcome {
        mate,
        augmentations,
        attempts,
        rounds,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::matching::is_valid_matching;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::gen::bipartite_banded;

    fn run(
        nl: usize,
        nr: usize,
        band: usize,
        p: f64,
        seed: u64,
        mode: MatchMode,
    ) -> (BipartiteInstance, MatchingOutcome) {
        let (g, side) = bipartite_banded(nl, nr, band, p, seed);
        let inst = BipartiteInstance::new(g, side);
        let cfg = SepConfig::practical(inst.graph.n());
        let mut rng = SmallRng::seed_from_u64(seed + 1000);
        let dec = decompose_centralized(&inst.graph, 3, &cfg, &mut rng).unwrap();
        let out = max_matching(&inst, &dec.td, &dec.info, mode).unwrap();
        (inst, out)
    }

    #[test]
    fn matches_hopcroft_karp_cardinality() {
        for seed in 0..6 {
            let (inst, out) = run(40, 40, 2, 0.5, seed, MatchMode::Centralized);
            assert!(is_valid_matching(&inst.graph, &inst.side, &out.mate));
            let want = matching_size(&hopcroft_karp(&inst.graph, &inst.side));
            assert_eq!(out.size(), want, "seed {seed}");
        }
    }

    #[test]
    fn asymmetric_sides() {
        for seed in 0..3 {
            let (inst, out) = run(30, 12, 3, 0.6, seed, MatchMode::Centralized);
            assert!(is_valid_matching(&inst.graph, &inst.side, &out.mate));
            let want = matching_size(&hopcroft_karp(&inst.graph, &inst.side));
            assert_eq!(out.size(), want, "seed {seed}");
        }
    }

    #[test]
    fn sparse_instances() {
        for seed in 10..13 {
            let (inst, out) = run(25, 25, 1, 0.3, seed, MatchMode::Centralized);
            assert!(is_valid_matching(&inst.graph, &inst.side, &out.mate));
            let want = matching_size(&hopcroft_karp(&inst.graph, &inst.side));
            assert_eq!(out.size(), want, "seed {seed}");
        }
    }

    /// The activation and walk-length invariants are release-mode
    /// `assert!`s on the augmentation path; this sweep drives enough
    /// seeds and shapes through `max_matching` that every internal node
    /// activates separator vertices (attempts > 0) and at least one
    /// augmentation flips a walk — i.e. both asserts actually execute,
    /// in release builds too, and hold.
    #[test]
    fn activation_invariants_hold_across_seeds() {
        let mut total_attempts = 0;
        let mut total_augmentations = 0;
        for seed in 0..8 {
            let (inst, out) = run(36, 36, 2, 0.45, seed, MatchMode::Centralized);
            assert!(is_valid_matching(&inst.graph, &inst.side, &out.mate));
            total_attempts += out.attempts;
            total_augmentations += out.augmentations;
        }
        assert!(total_attempts > 0, "no separator vertex was ever activated");
        assert!(total_augmentations > 0, "no augmenting walk was ever found");
    }

    #[test]
    fn distributed_mode_counts_rounds() {
        let (inst, out) = run(12, 12, 1, 0.5, 3, MatchMode::Distributed);
        assert!(is_valid_matching(&inst.graph, &inst.side, &out.mate));
        let want = matching_size(&hopcroft_karp(&inst.graph, &inst.side));
        assert_eq!(out.size(), want);
        if out.attempts > 0 {
            assert!(out.rounds > 0, "distributed mode must charge rounds");
        }
        assert!(out.augmentations <= out.attempts);
    }
}
