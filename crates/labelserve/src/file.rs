//! Store persistence: build once, write to disk, serve from a fresh
//! process.
//!
//! ## File format (`LWLSTOR1`, version 1, little-endian throughout)
//!
//! ```text
//! 0   magic         8 bytes   "LWLSTOR1"
//! 8   version       u32       1
//! 12  layout        u32       0 = flat, 1 = packed
//! 16  n             u64       global vertex count
//! 24  shard_size    u64       nodes per shard
//! 32  shard_count   u64
//! 40  components    u64       distinct component ids
//! 48  entries_total u64
//! 56  comp_of       n × u32   component id per vertex
//! ..  shard index   shard_count × { seg_off u64, seg_len u64 }
//! ..  segments      one per shard, at the indexed offsets
//! ```
//!
//! A **packed** segment is byte-identical to the in-memory `PackedShard`
//! segment (`packed.rs`), so `open_mmap` serves packed shards zero-copy
//! straight off the mapping — the file *is* the store. A
//! **flat** segment stores the CSR lanes
//! (`nodes u32, entries u32, offsets, hubs, dto, dfrom`) and is copied
//! into typed `Vec`s on open: the flat hot loop indexes `u64` lanes,
//! which want alignment the file cannot promise, and flat is the layout
//! you pick when RAM is plentiful anyway — packed is the at-scale,
//! serve-from-disk path.
//!
//! ## Opening is where validation lives
//!
//! `open_mmap` re-checks everything the query path assumes — magic,
//! version, section bounds, CSR monotonicity, per-row stream decode, hub
//! sortedness, component-count consistency — so a truncated or corrupted
//! file is a typed [`StoreFileError`] at open and the serving hot path
//! stays panic-free plain indexing.
//!
//! ## The mapping itself
//!
//! The workspace is offline (no `libc`/`memmap2` crates), so the mapping
//! calls `mmap(2)`/`munmap(2)` directly through `extern "C"` — `std`
//! already links the platform C library on unix targets. On non-unix
//! targets, or if the kernel refuses the mapping, the file is read onto
//! the heap instead; everything above the `Storage` enum is identical
//! either way.

use crate::error::ServeError;
use crate::packed::{u32_at, PackedShard};
use crate::store::{distinct_components, FlatShard, LabelStore, ShardData, StoreLayout};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use twgraph::Dist;

const MAGIC: &[u8; 8] = b"LWLSTOR1";
const VERSION: u32 = 1;
const HEADER: usize = 56;

/// Opening or writing a persisted store failed.
#[derive(Debug)]
pub enum StoreFileError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The bytes are not a well-formed store file.
    Format {
        /// Which part of the container was malformed.
        what: &'static str,
    },
    /// The container parsed but a segment violated a store invariant.
    Store(ServeError),
}

impl fmt::Display for StoreFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFileError::Io(e) => write!(f, "store file i/o: {e}"),
            StoreFileError::Format { what } => write!(f, "malformed store file: {what}"),
            StoreFileError::Store(e) => write!(f, "store file segment: {e}"),
        }
    }
}

impl std::error::Error for StoreFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreFileError::Io(e) => Some(e),
            StoreFileError::Store(e) => Some(e),
            StoreFileError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreFileError {
    fn from(e: std::io::Error) -> Self {
        StoreFileError::Io(e)
    }
}

impl From<ServeError> for StoreFileError {
    fn from(e: ServeError) -> Self {
        StoreFileError::Store(e)
    }
}

/// The bytes behind a shard segment: an owned buffer (in-memory build or
/// mmap fallback) or a shared read-only file mapping.
#[derive(Debug)]
pub(crate) enum Storage {
    /// Heap-owned bytes.
    Heap(Vec<u8>),
    /// A read-only `mmap(2)` of a store file.
    Mmap(MmapFile),
}

impl Storage {
    /// The backing bytes.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Heap(v) => v,
            Storage::Mmap(m) => m.as_slice(),
        }
    }
}

/// A whole-file read-only private mapping, unmapped on drop.
#[derive(Debug)]
pub(crate) struct MmapFile {
    ptr: *mut u8,
    len: usize,
}

// The mapping is read-only and owned uniquely by this handle until drop;
// sharing &MmapFile across threads only ever reads the bytes.
unsafe impl Send for MmapFile {}
unsafe impl Sync for MmapFile {}

impl MmapFile {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        // Length and pointer come from a successful mmap of exactly `len`
        // bytes; the mapping lives until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        extern "C" {
            fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        }
        // A failed munmap leaks the mapping — nothing useful to do in Drop.
        unsafe {
            munmap(self.ptr.cast(), self.len);
        }
    }
}

/// Map `file` (of size `len`) read-only; `None` falls back to a heap read.
#[cfg(unix)]
fn map_file(file: &std::fs::File, len: usize) -> Option<MmapFile> {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
    }
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    if len == 0 {
        return None; // zero-length mappings are an EINVAL; heap handles it
    }
    let ptr = unsafe {
        mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ,
            MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr.is_null() || ptr as isize == -1 {
        return None;
    }
    Some(MmapFile {
        ptr: ptr.cast(),
        len,
    })
}

#[cfg(not(unix))]
fn map_file(_file: &std::fs::File, _len: usize) -> Option<MmapFile> {
    None
}

#[inline]
fn u64_at(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Serialized length of one shard's segment.
fn seg_len_of(shard: &ShardData) -> usize {
    match shard {
        ShardData::Flat(s) => 8 + 4 * s.offsets.len() + 4 * s.hubs.len() + 16 * s.hubs.len(),
        ShardData::Packed(p) => p.seg_len(),
    }
}

impl LabelStore {
    /// Persist the store to `path` in the `LWLSTOR1` container. The file
    /// is written whole-then-flushed; partial writes surface as
    /// [`StoreFileError::Io`] and leave no readable store behind
    /// (`open_mmap` rejects a truncated container).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), StoreFileError> {
        let shards = self.shards_data();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        let layout_tag: u32 = match self.layout() {
            StoreLayout::Flat => 0,
            StoreLayout::Packed => 1,
        };
        out.write_all(&layout_tag.to_le_bytes())?;
        for v in [
            self.n() as u64,
            self.shard_size() as u64,
            shards.len() as u64,
            self.components() as u64,
            self.entries() as u64,
        ] {
            out.write_all(&v.to_le_bytes())?;
        }
        for &c in self.comp_of_slice() {
            out.write_all(&c.to_le_bytes())?;
        }
        // Shard index: segment offsets are computable up front from the
        // per-shard lengths, so the index streams out before any segment.
        let index_at = HEADER + 4 * self.n();
        let mut seg_off = (index_at + 16 * shards.len()) as u64;
        for shard in shards {
            let len = seg_len_of(shard) as u64;
            out.write_all(&seg_off.to_le_bytes())?;
            out.write_all(&len.to_le_bytes())?;
            seg_off += len;
        }
        for shard in shards {
            match shard {
                ShardData::Flat(s) => {
                    out.write_all(&((s.offsets.len() - 1) as u32).to_le_bytes())?;
                    out.write_all(&(s.hubs.len() as u32).to_le_bytes())?;
                    for &v in &s.offsets {
                        out.write_all(&v.to_le_bytes())?;
                    }
                    for &v in &s.hubs {
                        out.write_all(&v.to_le_bytes())?;
                    }
                    for &v in s.dto.iter().chain(&s.dfrom) {
                        out.write_all(&v.to_le_bytes())?;
                    }
                }
                ShardData::Packed(p) => out.write_all(p.seg_bytes())?,
            }
        }
        out.flush()?;
        Ok(())
    }

    /// Open a store persisted by [`write_to`](Self::write_to): map the
    /// file read-only (heap read where mapping is unavailable), validate
    /// every segment, and serve. Packed shards decode straight off the
    /// mapping — opening a packed store costs the header, the component
    /// map, and the validation sweep, not a copy of the label data.
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<LabelStore, StoreFileError> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let storage = match map_file(&file, len) {
            Some(m) => Storage::Mmap(m),
            None => {
                let mut buf = Vec::new();
                use std::io::Read;
                (&file).read_to_end(&mut buf)?;
                Storage::Heap(buf)
            }
        };
        drop(file); // the mapping (or heap copy) outlives the descriptor
        let storage = Arc::new(storage);
        let bytes = storage.as_slice();
        if bytes.len() != len {
            return Err(StoreFileError::Format {
                what: "file changed size while opening",
            });
        }
        let fmt = |what| StoreFileError::Format { what };
        if len < HEADER || &bytes[..8] != MAGIC {
            return Err(fmt("missing LWLSTOR1 magic"));
        }
        if u32_at(bytes, 8) != VERSION {
            return Err(fmt("unsupported container version"));
        }
        let layout = match u32_at(bytes, 12) {
            0 => StoreLayout::Flat,
            1 => StoreLayout::Packed,
            _ => return Err(fmt("unknown layout tag")),
        };
        let n = u64_at(bytes, 16) as usize;
        let shard_size = u64_at(bytes, 24) as usize;
        let shard_count = u64_at(bytes, 32) as usize;
        let components = u64_at(bytes, 40) as usize;
        let entries_total = u64_at(bytes, 48) as usize;
        if shard_size == 0 || shard_count != n.div_ceil(shard_size).max(1) {
            return Err(fmt("shard count inconsistent with n and shard size"));
        }
        let index_at = HEADER + 4 * n;
        let segs_at = index_at + 16 * shard_count;
        if segs_at > len {
            return Err(fmt("component map or shard index past end of file"));
        }
        let comp_of: Vec<u32> = (0..n).map(|v| u32_at(bytes, HEADER + 4 * v)).collect();
        if distinct_components(&comp_of) != components {
            return Err(fmt("component count does not match the component map"));
        }
        let mut shards = Vec::with_capacity(shard_count);
        let mut entries_seen = 0usize;
        for s in 0..shard_count {
            let seg_off = u64_at(bytes, index_at + 16 * s) as usize;
            let seg_len = u64_at(bytes, index_at + 16 * s + 8) as usize;
            if seg_off < segs_at || seg_off.checked_add(seg_len).map_or(true, |end| end > len) {
                return Err(fmt("shard segment outside the file"));
            }
            let base = (s * shard_size) as u32;
            let nodes_expect = shard_size.min(n - (s * shard_size).min(n));
            let shard = match layout {
                StoreLayout::Packed => {
                    let p = PackedShard::from_segment(base, Arc::clone(&storage), seg_off)?;
                    p.validate()?;
                    if p.seg_len() != seg_len || p.nodes() != nodes_expect {
                        return Err(fmt("packed segment shape disagrees with the index"));
                    }
                    entries_seen += p.entries();
                    ShardData::Packed(Arc::new(p))
                }
                StoreLayout::Flat => {
                    let f = parse_flat(base, &bytes[seg_off..seg_off + seg_len])?;
                    if f.offsets.len() != nodes_expect + 1 {
                        return Err(fmt("flat segment shape disagrees with the index"));
                    }
                    entries_seen += f.hubs.len();
                    ShardData::Flat(Arc::new(f))
                }
            };
            shards.push(shard);
        }
        if entries_seen != entries_total {
            return Err(fmt("segment entries do not sum to the header total"));
        }
        Ok(LabelStore::from_parts(
            n,
            shard_size,
            comp_of,
            shards,
            entries_total,
            components,
            layout,
        ))
    }
}

/// Parse one flat segment, copying the lanes into typed `Vec`s (see the
/// module docs for why flat does not serve off the mapping).
fn parse_flat(base: u32, seg: &[u8]) -> Result<FlatShard, StoreFileError> {
    let fmt = |what| StoreFileError::Format { what };
    if seg.len() < 8 {
        return Err(fmt("flat segment shorter than its header"));
    }
    let nodes = u32_at(seg, 0) as usize;
    let entries = u32_at(seg, 4) as usize;
    let want = 8 + 4 * (nodes + 1) + 4 * entries + 16 * entries;
    if seg.len() != want {
        return Err(fmt("flat segment length disagrees with its header"));
    }
    let offsets: Vec<u32> = (0..=nodes).map(|i| u32_at(seg, 8 + 4 * i)).collect();
    if offsets[0] != 0
        || offsets[nodes] as usize != entries
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(fmt("flat segment offsets not a monotone CSR"));
    }
    let hubs_at = 8 + 4 * (nodes + 1);
    let hubs: Vec<u32> = (0..entries).map(|i| u32_at(seg, hubs_at + 4 * i)).collect();
    for local in 0..nodes {
        let row = &hubs[offsets[local] as usize..offsets[local + 1] as usize];
        if row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(fmt("flat segment row hubs not strictly ascending"));
        }
    }
    let dto_at = hubs_at + 4 * entries;
    let dfrom_at = dto_at + 8 * entries;
    let dist_lane = |at: usize| -> Vec<Dist> {
        (0..entries)
            .map(|i| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seg[at + 8 * i..at + 8 * i + 8]);
                Dist::from_le_bytes(b)
            })
            .collect()
    };
    Ok(FlatShard {
        base,
        offsets,
        hubs,
        dto: dist_lane(dto_at),
        dfrom: dist_lane(dfrom_at),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use distlabel::Label;
    use twgraph::INF;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lwl-{}-{name}", std::process::id()))
    }

    /// Two components (a 5-path and a singleton) through both layouts.
    fn sample(layout: StoreLayout) -> LabelStore {
        let mut labels = Vec::new();
        for v in 0..5i64 {
            let mut l = Label::new(v as u32);
            for h in 0..5i64 {
                l.merge(
                    h as u32,
                    2 * (v - h).unsigned_abs(),
                    2 * (h - v).unsigned_abs(),
                );
            }
            labels.push(l);
        }
        let mut b = StoreBuilder::new(6);
        b.add_component(&labels, &[0, 1, 2, 3, 4]).unwrap();
        b.add_singleton(5).unwrap();
        b.build_layout(2, layout).unwrap()
    }

    #[test]
    fn roundtrip_both_layouts() {
        for layout in [StoreLayout::Flat, StoreLayout::Packed] {
            let store = sample(layout);
            let path = tmp(&format!("roundtrip-{layout:?}"));
            store.write_to(&path).unwrap();
            let opened = LabelStore::open_mmap(&path).unwrap();
            assert_eq!(opened.layout(), layout);
            assert_eq!(opened.n(), store.n());
            assert_eq!(opened.entries(), store.entries());
            assert_eq!(opened.components(), store.components());
            assert_eq!(opened.shard_count(), store.shard_count());
            for s in 0..6u32 {
                for t in 0..6u32 {
                    assert_eq!(
                        opened.distance(s, t).unwrap(),
                        store.distance(s, t).unwrap(),
                        "({s},{t}) under {layout:?}"
                    );
                }
            }
            assert_eq!(opened.distance(0, 5).unwrap(), INF);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn corrupt_files_are_typed_errors() {
        let store = sample(StoreLayout::Packed);
        let path = tmp("corrupt");
        store.write_to(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            LabelStore::open_mmap(&path),
            Err(StoreFileError::Format { .. })
        ));

        // Truncated mid-segment.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(LabelStore::open_mmap(&path).is_err());

        // Header component count out of step with the map.
        let mut bad = good.clone();
        bad[40] = bad[40].wrapping_add(1);
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            LabelStore::open_mmap(&path),
            Err(StoreFileError::Format { .. })
        ));

        // Flipping a byte inside the packed body trips segment validation
        // (or parses to a benign stream — either way, never a panic).
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let _ = LabelStore::open_mmap(&path);

        std::fs::remove_file(&path).ok();
        assert!(matches!(
            LabelStore::open_mmap(&path),
            Err(StoreFileError::Io(_))
        ));
    }
}
