//! Offline stand-in for `serde` (1.x API subset).
//!
//! Provides a JSON-only [`Serialize`] trait plus the matching
//! `#[derive(Serialize)]` macro (re-exported from the local `serde_derive`).
//! The workspace only ever serializes flat records to JSON lines, so the
//! full serde data model is deliberately out of scope; see
//! `crates/compat/README.md` for the migration story.

// Let the generated `impl serde::Serialize for ...` resolve even when the
// derive is used inside this crate (its own tests).
extern crate self as serde;

pub use serde_derive::Serialize;

/// Types that can write themselves as a JSON value.
///
/// Unlike real serde this is not serializer-generic: the single consumer is
/// `serde_json::to_string`.
pub trait Serialize {
    /// Append `self` as a JSON value to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! impl_serialize_display_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

/// JSON string escaping shared with `serde_json`.
pub fn escape_str_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        escape_str_into(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        escape_str_into(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&42u64), "42");
        assert_eq!(json(&-3i32), "-3");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json(&Some(7u32)), "7");
        assert_eq!(json(&None::<u32>), "null");
        assert_eq!(json(&vec![1u8, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct R {
            name: String,
            n: usize,
            ok: bool,
        }
        let r = R {
            name: "x".into(),
            n: 3,
            ok: false,
        };
        assert_eq!(json(&r), r#"{"name":"x","n":3,"ok":false}"#);
    }
}
