//! Cost accounting for simulated executions.

/// Cumulative execution metrics of a [`crate::Network`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Charged CONGEST rounds (the headline figure in every experiment).
    pub rounds: u64,
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words moved across (physical) edges.
    pub words: u64,
    /// Largest per-directed-edge word load observed in any single superstep —
    /// the *congestion* that Lemma 9 bounds by Õ(τ) for part-wise aggregation.
    pub max_edge_words_in_superstep: u64,
    /// Rounds charged explicitly by orchestrators (control pulses, local
    /// gather allowances) rather than by message traffic.
    pub charged_rounds: u64,
}

impl Metrics {
    /// Difference `self − earlier`, for measuring a phase.
    pub fn since(&self, earlier: &Metrics) -> MetricsDelta {
        MetricsDelta {
            rounds: self.rounds - earlier.rounds,
            supersteps: self.supersteps - earlier.supersteps,
            messages: self.messages - earlier.messages,
            words: self.words - earlier.words,
            max_edge_words_in_superstep: self
                .max_edge_words_in_superstep
                .max(earlier.max_edge_words_in_superstep),
        }
    }
}

/// Metrics for a measured phase (see [`Metrics::since`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsDelta {
    /// Rounds spent in the phase.
    pub rounds: u64,
    /// Supersteps executed in the phase.
    pub supersteps: u64,
    /// Messages delivered in the phase.
    pub messages: u64,
    /// Words moved in the phase.
    pub words: u64,
    /// Peak single-superstep edge congestion (global max, not phase-local).
    pub max_edge_words_in_superstep: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = Metrics {
            rounds: 10,
            supersteps: 3,
            messages: 100,
            words: 150,
            max_edge_words_in_superstep: 4,
            charged_rounds: 0,
        };
        let b = Metrics {
            rounds: 25,
            supersteps: 5,
            messages: 180,
            words: 260,
            max_edge_words_in_superstep: 6,
            charged_rounds: 0,
        };
        let d = b.since(&a);
        assert_eq!(d.rounds, 15);
        assert_eq!(d.supersteps, 2);
        assert_eq!(d.messages, 80);
        assert_eq!(d.words, 110);
        assert_eq!(d.max_edge_words_in_superstep, 6);
    }
}
