//! Recursive tree decomposition from balanced separators (paper §3.4),
//! centralized reference implementation.
//!
//! Recursion state per tree node `x` (Proposition 3 of the paper):
//! `G'_x` is a connected component of `G − B_{p(x)}` (so it is an *induced*
//! subgraph of G), and `G_x = G'_x` plus the `B_{p(x)}`-vertices adjacent
//! to it (with only the cross edges — no edges inside the inherited set).
//! The bag is `B_x = (B_{p(x)} ∩ V(G_x)) ∪ S'_x` where `S'_x` is a balanced
//! separator of `G'_x`, or all of `V(G_x)` at leaves.

use crate::config::SepConfig;
use crate::sep::{sep_doubling, SepOutcome};
use congest_sim::CongestError;
use rand::Rng;
use std::collections::VecDeque;
use std::fmt;
use twgraph::alg::MincutError;
use twgraph::tw::TreeDecomposition;
use twgraph::UGraph;

/// Typed failure of a decomposition run. Input-validation conditions that
/// used to panic at the library surface are reported here; callers decide
/// whether to abort (test code may still `expect`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompError {
    /// The input graph has no vertices — there is nothing to decompose.
    EmptyGraph,
    /// The input communication graph is not connected; decompose each
    /// component separately (the `G'_x`-connected invariant of §3.4 cannot
    /// hold otherwise).
    Disconnected,
    /// A CONGEST model violation surfaced from the simulator.
    Congest(CongestError),
    /// The centralized `min_vertex_cut` inside `Sep` step 4 reported a
    /// violated precondition or a broken max-flow/min-cut invariant.
    Mincut(MincutError),
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::EmptyGraph => write!(f, "cannot decompose the empty graph"),
            DecompError::Disconnected => {
                write!(f, "input communication graph must be connected")
            }
            DecompError::Congest(e) => write!(f, "{e}"),
            DecompError::Mincut(e) => write!(f, "separator step 4: {e}"),
        }
    }
}

impl std::error::Error for DecompError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecompError::Congest(e) => Some(e),
            DecompError::Mincut(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CongestError> for DecompError {
    fn from(e: CongestError) -> Self {
        DecompError::Congest(e)
    }
}

impl From<MincutError> for DecompError {
    fn from(e: MincutError) -> Self {
        DecompError::Mincut(e)
    }
}

/// Per-tree-node recursion record, kept for downstream algorithms
/// (distance labeling walks the same G_x structure).
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// V(G'_x), sorted.
    pub gpx: Vec<u32>,
    /// B_{p(x)} ∩ V(G_x): the inherited boundary, sorted.
    pub inherited: Vec<u32>,
    /// S'_x — the separator computed for G'_x (sorted); for leaf nodes the
    /// separator that triggered termination.
    pub sep: Vec<u32>,
    /// Whether the node terminated the recursion (B_x = V(G_x)).
    pub is_leaf: bool,
}

impl NodeInfo {
    /// V(G_x) = V(G'_x) ∪ inherited (sorted).
    pub fn gx(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .gpx
            .iter()
            .chain(self.inherited.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// The record with every vertex set mapped through the renaming `perm`
    /// (the companion of [`TreeDecomposition::relabeled`]).
    pub fn relabeled(&self, perm: &[u32]) -> NodeInfo {
        let map = |vs: &Vec<u32>| -> Vec<u32> {
            let mut v: Vec<u32> = vs.iter().map(|&x| perm[x as usize]).collect();
            v.sort_unstable();
            v
        };
        NodeInfo {
            gpx: map(&self.gpx),
            inherited: map(&self.inherited),
            sep: map(&self.sep),
            is_leaf: self.is_leaf,
        }
    }
}

/// Result of a decomposition run.
#[derive(Clone, Debug)]
pub struct DecompOutcome {
    /// The tree decomposition Φ = (T, {B_x}).
    pub td: TreeDecomposition,
    /// Recursion records aligned with `td` node ids.
    pub info: Vec<NodeInfo>,
    /// The largest `t` any `Sep` call settled on.
    pub t_used: u64,
}

/// Sorted intersection of a sorted vector with a predicate-free list.
pub(crate) fn adjacent_subset(g: &UGraph, candidates: &[u32], comp_mask: &[bool]) -> Vec<u32> {
    let mut out: Vec<u32> = candidates
        .iter()
        .copied()
        .filter(|&b| g.neighbors(b).iter().any(|&u| comp_mask[u as usize]))
        .collect();
    out.sort_unstable();
    out
}

/// Build the tree decomposition of the (connected) graph `g` (Theorem 1's
/// centralized counterpart; the distributed version lives in [`crate::dist`]).
pub fn decompose_centralized(
    g: &UGraph,
    t0: u64,
    cfg: &SepConfig,
    rng: &mut impl Rng,
) -> Result<DecompOutcome, DecompError> {
    let n = g.n();
    if n == 0 {
        return Err(DecompError::EmptyGraph);
    }
    if !twgraph::alg::is_connected(g) {
        return Err(DecompError::Disconnected);
    }

    let mut td = TreeDecomposition::default();
    let mut info: Vec<NodeInfo> = Vec::new();
    let mut t_used = t0.max(2);

    struct Work {
        parent: Option<usize>,
        gpx: Vec<u32>,
        inherited: Vec<u32>,
    }
    let mut queue = VecDeque::new();
    queue.push_back(Work {
        parent: None,
        gpx: (0..n as u32).collect(),
        inherited: Vec::new(),
    });

    while let Some(w) = queue.pop_front() {
        // Separator of G'_x with X = V(G'_x).
        let mut members = vec![false; n];
        let mut mu = vec![0u64; n];
        for &v in &w.gpx {
            members[v as usize] = true;
            mu[v as usize] = 1;
        }
        let SepOutcome {
            separator: sep,
            t_used: t_here,
            ..
        } = sep_doubling(g, &members, &mu, t_used, cfg, rng)?;
        t_used = t_used.max(t_here);

        let gx_size = w.gpx.len() + w.inherited.len();
        let sx_size = sep.len() + w.inherited.len();
        if gx_size <= 2 * sx_size {
            // Leaf: B_x = V(G_x).
            let mut bag: Vec<u32> = w.gpx.iter().chain(w.inherited.iter()).copied().collect();
            bag.sort_unstable();
            let _ = td.push_bag(w.parent, bag);
            info.push(NodeInfo {
                gpx: w.gpx,
                inherited: w.inherited,
                sep,
                is_leaf: true,
            });
            continue;
        }

        // Internal node: B_x = inherited ∪ S'_x.
        let mut bag: Vec<u32> = w.inherited.iter().chain(sep.iter()).copied().collect();
        bag.sort_unstable();
        bag.dedup();
        let x = td.push_bag(w.parent, bag.clone());
        debug_assert_eq!(x, info.len());

        // Children: components of G'_x − S'_x.
        let mut child_members = members.clone();
        for &s in &sep {
            child_members[s as usize] = false;
        }
        let comps = components_of(g, &child_members);
        for comp in comps {
            let mut comp_mask = vec![false; n];
            for &v in &comp {
                comp_mask[v as usize] = true;
            }
            let child_inherited = adjacent_subset(g, &bag, &comp_mask);
            queue.push_back(Work {
                parent: Some(x),
                gpx: comp,
                inherited: child_inherited,
            });
        }
        info.push(NodeInfo {
            gpx: w.gpx,
            inherited: w.inherited,
            sep,
            is_leaf: false,
        });
    }

    Ok(DecompOutcome { td, info, t_used })
}

/// Connected components of the subgraph induced by `mask`, each sorted.
pub(crate) fn components_of(g: &UGraph, mask: &[bool]) -> Vec<Vec<u32>> {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for s in 0..n as u32 {
        if seen[s as usize] || !mask[s as usize] {
            continue;
        }
        let mut comp = vec![s];
        seen[s as usize] = true;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if mask[v as usize] && !seen[v as usize] {
                    seen[v as usize] = true;
                    comp.push(v);
                    q.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use twgraph::gen::{banded_path, cycle, grid, ktree, random_tree};

    fn check(g: &UGraph, t0: u64, seed: u64) -> DecompOutcome {
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = decompose_centralized(g, t0, &cfg, &mut rng).expect("decomposition failed");
        out.td
            .verify(g)
            .unwrap_or_else(|e| panic!("invalid decomposition: {e}"));
        out
    }

    #[test]
    fn empty_and_disconnected_are_typed_errors() {
        let cfg = SepConfig::practical(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let empty = UGraph::empty(0);
        assert_eq!(
            decompose_centralized(&empty, 2, &cfg, &mut rng).unwrap_err(),
            DecompError::EmptyGraph
        );
        let two = UGraph::empty(2); // two isolated vertices
        assert_eq!(
            decompose_centralized(&two, 2, &cfg, &mut rng).unwrap_err(),
            DecompError::Disconnected
        );
    }

    #[test]
    fn banded_path_decomposes() {
        let g = banded_path(500, 2);
        let out = check(&g, 3, 1);
        let stats = out.td.stats();
        assert!(stats.width < 120, "width {} too large", stats.width);
        assert!(stats.depth <= 64, "depth {}", stats.depth);
    }

    #[test]
    fn ktree_decomposes() {
        let g = ktree(300, 3, 7);
        let out = check(&g, 4, 2);
        assert!(out.td.stats().width < 150);
    }

    #[test]
    fn tree_decomposes_narrow() {
        let g = random_tree(400, 3);
        let out = check(&g, 2, 3);
        // τ = 1: practical constants keep this comfortably narrow.
        assert!(
            out.td.stats().width < 60,
            "width {} for a tree",
            out.td.stats().width
        );
    }

    #[test]
    fn cycle_and_grid() {
        check(&cycle(128), 3, 4);
        check(&grid(10, 10), 11, 5);
    }

    #[test]
    fn small_graph_single_bag() {
        let g = cycle(8);
        let out = check(&g, 3, 6);
        // Step 1 fires immediately: one bag with all vertices.
        assert_eq!(out.td.bags.len(), 1);
        assert_eq!(out.td.width(), 7);
    }

    #[test]
    fn info_consistency() {
        let g = banded_path(300, 3);
        let out = check(&g, 4, 8);
        for (x, ni) in out.info.iter().enumerate() {
            // G'_x and inherited are disjoint; bag ⊆ V(G_x).
            for b in &ni.inherited {
                assert!(ni.gpx.binary_search(b).is_err());
            }
            let gx = ni.gx();
            for b in &out.td.bags[x] {
                assert!(gx.binary_search(b).is_ok(), "bag vertex outside G_x");
            }
            // Children partition G'_x − S'_x.
            if !ni.is_leaf {
                let mut child_union: Vec<u32> = out.td.children[x]
                    .iter()
                    .flat_map(|&c| out.info[c].gpx.clone())
                    .collect();
                child_union.sort_unstable();
                let mut expect: Vec<u32> = ni
                    .gpx
                    .iter()
                    .copied()
                    .filter(|v| ni.sep.binary_search(v).is_err())
                    .collect();
                expect.sort_unstable();
                assert_eq!(child_union, expect);
            }
        }
    }

    #[test]
    fn width_scales_with_k() {
        // Same n, growing k: width should grow, stay valid.
        let mut last = 0;
        for k in [1usize, 3] {
            let g = banded_path(400, k.max(1));
            let out = check(&g, k as u64 + 1, 9);
            let w = out.td.stats().width;
            assert!(w >= last / 4, "width collapsed: {w} after {last}");
            last = w;
        }
    }

    #[test]
    fn depth_logarithmic() {
        for n in [200usize, 800] {
            let g = banded_path(n, 2);
            let out = check(&g, 3, 10);
            let depth = out.td.stats().depth;
            // practical balance 7/8 ⇒ depth ≤ log_{8/7}(n) + slack.
            let bound = ((n as f64).ln() / (8.0f64 / 7.0).ln()).ceil() as usize + 8;
            assert!(depth <= bound, "depth {depth} > bound {bound} at n={n}");
        }
    }
}
