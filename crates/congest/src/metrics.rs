//! Cost accounting for simulated executions.

/// Cumulative execution metrics of a [`crate::Network`].
///
/// Besides the running totals, a `Metrics` carries a *phase mark*: calling
/// [`snapshot`](Metrics::snapshot) returns everything charged since the
/// previous snapshot (or since the start) as a named [`PhaseSnapshot`] and
/// advances the mark, so each pipeline stage (decompose / label / query)
/// can report its own rounds-words-congestion delta.
#[derive(Clone, Copy, Debug, Default)]
pub struct Metrics {
    /// Charged CONGEST rounds (the headline figure in every experiment).
    pub rounds: u64,
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words moved across (physical) edges.
    pub words: u64,
    /// Largest per-directed-edge word load observed in any single superstep —
    /// the *congestion* that Lemma 9 bounds by Õ(τ) for part-wise aggregation.
    pub max_edge_words_in_superstep: u64,
    /// Rounds charged explicitly by orchestrators (control pulses, local
    /// gather allowances) rather than by message traffic.
    pub charged_rounds: u64,
    /// Totals at the last [`snapshot`](Metrics::snapshot) call.
    mark: PhaseMark,
    /// Peak single-superstep edge congestion since the last snapshot
    /// (phase-local, unlike the global `max_edge_words_in_superstep`).
    phase_congestion: u64,
}

/// Equality compares the six charged counters only — two executions with
/// identical costs are equal even if their pipelines took a different
/// number of [`snapshot`](Metrics::snapshot) calls along the way.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.supersteps == other.supersteps
            && self.messages == other.messages
            && self.words == other.words
            && self.max_edge_words_in_superstep == other.max_edge_words_in_superstep
            && self.charged_rounds == other.charged_rounds
    }
}

impl Eq for Metrics {}

/// The counter values frozen at a phase boundary (internal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct PhaseMark {
    rounds: u64,
    supersteps: u64,
    messages: u64,
    words: u64,
    charged_rounds: u64,
}

impl Metrics {
    /// Record one executed superstep (engine-internal accounting).
    pub(crate) fn note_superstep(&mut self, rounds: u64, messages: u64, words: u64, max_slot: u64) {
        self.rounds += rounds;
        self.supersteps += 1;
        self.messages += messages;
        self.words += words;
        self.max_edge_words_in_superstep = self.max_edge_words_in_superstep.max(max_slot);
        self.phase_congestion = self.phase_congestion.max(max_slot);
    }

    /// Record explicitly charged control rounds (engine-internal).
    pub(crate) fn note_charged(&mut self, rounds: u64) {
        self.rounds += rounds;
        self.charged_rounds += rounds;
    }

    /// Close the current phase: return everything charged since the last
    /// `snapshot` (or since the start) under the name `phase`, and start a
    /// new phase. The phase's congestion is exact (the peak single-superstep
    /// edge load *within* the phase, not the global running maximum).
    pub fn snapshot(&mut self, phase: &str) -> PhaseSnapshot {
        let snap = PhaseSnapshot {
            phase: phase.to_string(),
            rounds: self.rounds - self.mark.rounds,
            supersteps: self.supersteps - self.mark.supersteps,
            messages: self.messages - self.mark.messages,
            words: self.words - self.mark.words,
            charged_rounds: self.charged_rounds - self.mark.charged_rounds,
            max_edge_words_in_superstep: self.phase_congestion,
        };
        self.mark = PhaseMark {
            rounds: self.rounds,
            supersteps: self.supersteps,
            messages: self.messages,
            words: self.words,
            charged_rounds: self.charged_rounds,
        };
        self.phase_congestion = 0;
        snap
    }

    /// View the *totals* as one phase named `phase`, without touching the
    /// mark — for callers that hold a finished `Metrics` by value (e.g. a
    /// virtual network's result) and want a row in a phase table.
    pub fn as_phase(&self, phase: &str) -> PhaseSnapshot {
        PhaseSnapshot {
            phase: phase.to_string(),
            rounds: self.rounds,
            supersteps: self.supersteps,
            messages: self.messages,
            words: self.words,
            charged_rounds: self.charged_rounds,
            max_edge_words_in_superstep: self.max_edge_words_in_superstep,
        }
    }

    /// Fold another execution's counters into `self` under the **parallel
    /// composition** rule: two executions over vertex-disjoint subgraphs
    /// run concurrently in CONGEST, so round-like counters (rounds,
    /// supersteps, charged control rounds) take the maximum while traffic
    /// counters (messages, words) sum; peak per-edge congestion is a max
    /// because disjoint subgraphs never share an edge. The rule itself
    /// lives in [`PhaseSnapshot::par_absorb`] (this method and
    /// `scenarios::MetricsTotal` both delegate to it).
    pub fn par_absorb(&mut self, other: &Metrics) {
        let mut acc = self.as_phase("");
        acc.par_absorb(&other.as_phase(""));
        self.rounds = acc.rounds;
        self.supersteps = acc.supersteps;
        self.messages = acc.messages;
        self.words = acc.words;
        self.charged_rounds = acc.charged_rounds;
        self.max_edge_words_in_superstep = acc.max_edge_words_in_superstep;
        self.phase_congestion = self.phase_congestion.max(other.phase_congestion);
    }

    /// Difference `self − earlier`, for measuring a phase.
    pub fn since(&self, earlier: &Metrics) -> MetricsDelta {
        MetricsDelta {
            rounds: self.rounds - earlier.rounds,
            supersteps: self.supersteps - earlier.supersteps,
            messages: self.messages - earlier.messages,
            words: self.words - earlier.words,
            max_edge_words_in_superstep: self
                .max_edge_words_in_superstep
                .max(earlier.max_edge_words_in_superstep),
        }
    }
}

/// Metrics for a measured phase (see [`Metrics::since`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsDelta {
    /// Rounds spent in the phase.
    pub rounds: u64,
    /// Supersteps executed in the phase.
    pub supersteps: u64,
    /// Messages delivered in the phase.
    pub messages: u64,
    /// Words moved in the phase.
    pub words: u64,
    /// Peak single-superstep edge congestion (global max, not phase-local).
    pub max_edge_words_in_superstep: u64,
}

/// One named phase's charged costs (see [`Metrics::snapshot`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// The phase name passed to `snapshot`.
    pub phase: String,
    /// Rounds charged within the phase.
    pub rounds: u64,
    /// Supersteps executed within the phase.
    pub supersteps: u64,
    /// Messages delivered within the phase.
    pub messages: u64,
    /// Words moved within the phase.
    pub words: u64,
    /// Control rounds charged explicitly within the phase.
    pub charged_rounds: u64,
    /// Peak single-superstep edge congestion within the phase.
    pub max_edge_words_in_superstep: u64,
}

impl PhaseSnapshot {
    /// Fold another phase's counters into this one under the parallel
    /// composition rule (see [`Metrics::par_absorb`]): max for round-like
    /// counters, sum for traffic, max for congestion. The phase name of
    /// `self` is kept.
    pub fn par_absorb(&mut self, other: &PhaseSnapshot) {
        self.rounds = self.rounds.max(other.rounds);
        self.supersteps = self.supersteps.max(other.supersteps);
        self.messages += other.messages;
        self.words += other.words;
        self.charged_rounds = self.charged_rounds.max(other.charged_rounds);
        self.max_edge_words_in_superstep = self
            .max_edge_words_in_superstep
            .max(other.max_edge_words_in_superstep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charged(rounds: u64, supersteps: u64, messages: u64, words: u64, max_slot: u64) -> Metrics {
        let mut m = Metrics::default();
        m.note_superstep(rounds, messages, words, max_slot);
        m.supersteps = supersteps;
        m
    }

    #[test]
    fn since_subtracts() {
        let a = charged(10, 3, 100, 150, 4);
        let b = charged(25, 5, 180, 260, 6);
        let d = b.since(&a);
        assert_eq!(d.rounds, 15);
        assert_eq!(d.supersteps, 2);
        assert_eq!(d.messages, 80);
        assert_eq!(d.words, 110);
        assert_eq!(d.max_edge_words_in_superstep, 6);
    }

    #[test]
    fn snapshot_reports_phase_deltas_and_resets() {
        let mut m = Metrics::default();
        m.note_superstep(5, 10, 20, 7);
        m.note_charged(3);
        let p1 = m.snapshot("decompose");
        assert_eq!(p1.phase, "decompose");
        assert_eq!(p1.rounds, 8);
        assert_eq!(p1.supersteps, 1);
        assert_eq!(p1.messages, 10);
        assert_eq!(p1.words, 20);
        assert_eq!(p1.charged_rounds, 3);
        assert_eq!(p1.max_edge_words_in_superstep, 7);

        // A later, lighter phase: its congestion must be phase-local (2),
        // not the global running max (7).
        m.note_superstep(2, 4, 4, 2);
        let p2 = m.snapshot("label");
        assert_eq!(p2.rounds, 2);
        assert_eq!(p2.supersteps, 1);
        assert_eq!(p2.max_edge_words_in_superstep, 2);
        assert_eq!(m.max_edge_words_in_superstep, 7);
    }

    #[test]
    fn par_absorb_maxes_rounds_and_sums_traffic() {
        let mut a = charged(10, 3, 100, 150, 4);
        let b = charged(25, 5, 80, 90, 6);
        a.par_absorb(&b);
        assert_eq!(a.rounds, 25);
        assert_eq!(a.messages, 180);
        assert_eq!(a.words, 240);
        assert_eq!(a.max_edge_words_in_superstep, 6);

        let mut p = a.as_phase("left");
        let q = b.as_phase("right");
        p.par_absorb(&q);
        assert_eq!(p.phase, "left");
        assert_eq!(p.rounds, 25);
        assert_eq!(p.messages, 260);
    }

    #[test]
    fn as_phase_views_totals_without_advancing() {
        let mut m = Metrics::default();
        m.note_superstep(5, 10, 20, 3);
        let p = m.as_phase("total");
        assert_eq!(p.rounds, 5);
        // The mark did not move: a snapshot still sees everything.
        assert_eq!(m.snapshot("all").rounds, 5);
    }
}
