//! # girth — weighted girth via distance labeling (paper §7, Theorem 5)
//!
//! **Directed** graphs reduce directly: the shortest cycle through an arc
//! `(u, v)` is `c(u,v) + d(v → u)`, and `d(v → u)` is decodable once `u`
//! holds both labels — one label exchange per edge, then a global min.
//!
//! **Undirected** graphs must not confuse the walk `u–v–u` (an edge used
//! twice) with a cycle. The paper's fix: randomly mark edges with
//! probability `1/(3ĉ)` and measure, at every vertex, the shortest *exact
//! count-1* closed walk — any such walk contains a simple cycle (Lemma 6),
//! and when exactly one marked edge lies on some shortest cycle the bound
//! is tight. Doubling over ĉ plus O(log n) trials per value makes this
//! succeed whp.

pub mod directed;
pub mod undirected;

pub use directed::{girth_directed_distributed, girth_directed_from_labels};
pub use undirected::{girth_undirected, GirthConfig, GirthRun};
