//! Scenario: a warehouse sensor grid wants local routing tables.
//!
//! A `rows × cols` grid mesh (treewidth = min dimension) with link
//! latencies as weights. Every node receives a distance *label*; any pair
//! of nodes can then compute their exact latency from the two labels alone
//! — the distance-labeling use case the paper's Theorem 2 targets.
//!
//! ```sh
//! cargo run --release --example sensor_grid_routing
//! ```

use lowtw::prelude::*;
use lowtw::twgraph;

fn main() {
    let (rows, cols) = (6usize, 48usize);
    let g = twgraph::gen::grid(rows, cols);
    // Latencies: uniform 1..=20 ms per link.
    let inst = twgraph::gen::with_random_weights(&g, 20, 7);
    println!(
        "sensor mesh {rows}×{cols}: n = {}, τ ≤ {rows}, D = {}",
        g.n(),
        rows + cols - 2
    );

    let session = Session::decompose(&g, rows as u64 + 1, 7).unwrap();
    let (labels, rounds) = session.labels_distributed(&inst).unwrap();
    println!(
        "labeling built in {rounds} CONGEST rounds; width = {}, depth = {}",
        session.width(),
        session.depth()
    );

    // Label budget per node (what each sensor stores).
    let avg: f64 = labels.iter().map(|l| l.words() as f64).sum::<f64>() / labels.len() as f64;
    let max = labels.iter().map(|l| l.words()).max().unwrap();
    println!(
        "routing-table size: avg {avg:.1} words, max {max} words (n = {})",
        g.n()
    );

    // A few latency queries, answered pairwise-locally.
    let corners = [0u32, (cols - 1) as u32, ((rows - 1) * cols) as u32];
    for &a in &corners {
        for &b in &corners {
            if a < b {
                let d = decode(&labels[a as usize], &labels[b as usize]);
                let truth = twgraph::alg::dijkstra(&inst, a).dist[b as usize];
                assert_eq!(d, truth);
                println!("latency({a} ↔ {b}) = {d} ms");
            }
        }
    }
    println!("all queries exact ✓");
}
