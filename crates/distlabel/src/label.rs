//! The label data type and the decoder (paper Definition 1, Lemma 2).

use twgraph::{dist_add, Dist, INF};

/// Distance label of one vertex: exact distances to/from its ancestor-bag
/// vertices `B↑(u)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Label {
    /// The label's owner.
    pub owner: u32,
    /// Sorted by target: `(target s, d(owner → s), d(s → owner))`.
    pub entries: Vec<(u32, Dist, Dist)>,
}

impl Label {
    /// New empty label.
    pub fn new(owner: u32) -> Self {
        Label {
            owner,
            entries: Vec::new(),
        }
    }

    /// Min-merge an entry (distances only ever shrink as the recursion
    /// climbs — `G_x ⊆ G_{p(x)}`).
    pub fn merge(&mut self, target: u32, to: Dist, from: Dist) {
        match self.entries.binary_search_by_key(&target, |e| e.0) {
            Ok(i) => {
                self.entries[i].1 = self.entries[i].1.min(to);
                self.entries[i].2 = self.entries[i].2.min(from);
            }
            Err(i) => self.entries.insert(i, (target, to, from)),
        }
    }

    /// `d(owner → s)` if `s` is a target.
    pub fn to(&self, s: u32) -> Option<Dist> {
        self.entries
            .binary_search_by_key(&s, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// `d(s → owner)` if `s` is a target.
    pub fn from(&self, s: u32) -> Option<Dist> {
        self.entries
            .binary_search_by_key(&s, |e| e.0)
            .ok()
            .map(|i| self.entries[i].2)
    }

    /// Label size in O(log n)-bit words (3 per entry) — the quantity
    /// Theorem 2 bounds by O(τ² log² n) bits.
    pub fn words(&self) -> usize {
        3 * self.entries.len()
    }
}

/// The decoder: `dec(la(u), la(v)) = min_{s ∈ B↑(u) ∩ B↑(v)} d(u,s) + d(s,v)`.
/// Linear merge-join over the sorted entry lists.
pub fn decode(la_u: &Label, la_v: &Label) -> Dist {
    let mut best = INF;
    let (mut i, mut j) = (0usize, 0usize);
    let (a, b) = (&la_u.entries, &la_v.entries);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                best = best.min(dist_add(a[i].1, b[j].2));
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Decode both directions at once: `(d(u → v), d(v → u))`.
pub fn decode_pair(la_u: &Label, la_v: &Label) -> (Dist, Dist) {
    (decode(la_u, la_v), decode(la_v, la_u))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_minimum() {
        let mut l = Label::new(0);
        l.merge(5, 10, 20);
        l.merge(5, 12, 8);
        assert_eq!(l.to(5), Some(10));
        assert_eq!(l.from(5), Some(8));
        l.merge(3, 1, 1);
        assert_eq!(l.entries.len(), 2);
        assert_eq!(l.entries[0].0, 3); // sorted
    }

    #[test]
    fn decode_min_over_common() {
        let mut u = Label::new(0);
        u.merge(2, 4, 9);
        u.merge(7, 1, 9);
        let mut v = Label::new(1);
        v.merge(2, 9, 3); // via 2: 4 + 3 = 7
        v.merge(7, 9, 5); // via 7: 1 + 5 = 6
        v.merge(9, 9, 0);
        assert_eq!(decode(&u, &v), 6);
    }

    #[test]
    fn decode_no_common_is_inf() {
        let mut u = Label::new(0);
        u.merge(1, 1, 1);
        let mut v = Label::new(1);
        v.merge(2, 1, 1);
        assert_eq!(decode(&u, &v), INF);
    }

    #[test]
    fn decode_self_via_own_bag() {
        let mut u = Label::new(4);
        u.merge(4, 0, 0);
        assert_eq!(decode(&u, &u), 0);
    }

    #[test]
    fn words_counts_entries() {
        let mut u = Label::new(0);
        u.merge(1, 1, 1);
        u.merge(2, 1, 1);
        assert_eq!(u.words(), 6);
    }
}
